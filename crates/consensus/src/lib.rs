//! # oar-consensus — rotating-coordinator consensus with Maj-validity
//!
//! The conservative phase of the OAR protocol reduces `Cnsv-order` to a
//! consensus whose **decision is a sequence of initial values** (the paper's
//! `Dk ≡ {(dlv1, notdlv1); (dlv2, notdlv2); …}`), specified by the
//! **Maj-validity** property (§5.5):
//!
//! > If a process executes `decide(V)`, then `V` is a sequence of values such
//! > that, for a majority of processes `pi`, if `pi` has executed
//! > `propose(vi)`, then `vi ∈ V`.
//!
//! This crate implements that oracle as a Chandra–Toueg style ♦S consensus with
//! a rotating coordinator (\[CT96\], modified per \[Fel98\]):
//!
//! * each process sends its estimate to the coordinator of the current round;
//! * the coordinator waits until it has an estimate from every process it does
//!   not suspect **and** from at least a majority (the majority requirement can
//!   be relaxed with [`ConsensusConfig::require_majority_estimates`] to mimic
//!   the weaker collection rule described in the paper's footnote 5, at the
//!   cost of uniform agreement — see `DESIGN.md`);
//! * if no collected estimate is locked, the coordinator's proposal is the
//!   **aggregate** of the collected initial values (one `(ProcessId, V)` pair
//!   per contributor) — this is what gives Maj-validity; otherwise it re-uses
//!   the locked aggregate with the highest timestamp (standard CT locking);
//! * processes ack the proposal (locking it) or nack when they suspect the
//!   coordinator, and move to the next round;
//! * a coordinator that gathers a majority of acks decides and disseminates the
//!   decision with a relay-on-first-reception broadcast.
//!
//! The component is a pure state machine in the style of `oar-channels`: the
//! host feeds it wire messages and suspect-set updates and forwards the
//! [`ConsensusSend`]s it produces, so it can be unit-tested without a
//! simulator and embedded into any runtime.
//!
//! # Shared-relay sends
//!
//! Group-wide messages (the coordinator's `Propose`, the `Decide`
//! dissemination) are emitted as **one wire value plus the list of
//! destinations** ([`ConsensusSend`]) instead of one pre-cloned message per
//! destination — the same one-wire-plus-targets discipline as
//! `ReliableCaster::*_shared`. A host pairing this with `Context::send_all`
//! allocates each consensus message exactly once regardless of the group
//! size; test drivers that want the flat per-destination form can expand a
//! send with [`ConsensusSend::into_outgoing`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use oar_channels::Outgoing;
use oar_simnet::ProcessId;

/// A consensus decision: the aggregate of the initial values of the processes
/// the deciding coordinator collected (the paper's `Dk`).
pub type Decision<V> = Vec<(ProcessId, V)>;

/// One consensus message to transmit: the wire value **once** plus every
/// destination it must reach. Unicast messages (estimates and acks to the
/// round coordinator) carry a single target; group-wide messages (`Propose`,
/// `Decide`) carry the whole group minus the sender, so the host can share a
/// single allocation across recipients (`Context::send_all`).
#[derive(Clone, Debug, PartialEq)]
pub struct ConsensusSend<V> {
    /// The wire message, allocated once.
    pub wire: ConsensusWire<V>,
    /// Every process the wire must be sent to.
    pub targets: Vec<ProcessId>,
}

impl<V: Clone> ConsensusSend<V> {
    /// A send with a single destination.
    pub fn unicast(to: ProcessId, wire: ConsensusWire<V>) -> Self {
        ConsensusSend {
            wire,
            targets: vec![to],
        }
    }

    /// Expands into the flat one-[`Outgoing`]-per-destination form (cloning
    /// the wire per target). Meant for test drivers and hosts without a
    /// shared-payload send primitive; hot paths should forward the shared
    /// wire directly.
    pub fn into_outgoing(self) -> Vec<Outgoing<ConsensusWire<V>>> {
        let ConsensusSend { wire, targets } = self;
        targets
            .into_iter()
            .map(|to| Outgoing::new(to, wire.clone()))
            .collect()
    }
}

/// The timestamped estimate carried by each process, in the style of
/// Chandra–Toueg: `ts = 0` means the estimate is still the process's initial
/// value; `ts = r > 0` means the estimate was locked in round `r` and is an
/// aggregate proposal.
#[derive(Clone, Debug, PartialEq)]
pub struct Estimate<V> {
    /// Round in which the estimate was last updated (0 = initial).
    pub ts: u64,
    /// The value.
    pub value: EstimateValue<V>,
}

/// The two shapes an estimate can take.
#[derive(Clone, Debug, PartialEq)]
pub enum EstimateValue<V> {
    /// The process's own initial value (never yet locked).
    Initial(V),
    /// An aggregate proposal adopted (locked) in a previous round.
    Locked(Decision<V>),
}

/// Wire messages of one consensus instance.
#[derive(Clone, Debug, PartialEq)]
pub enum ConsensusWire<V> {
    /// Phase 1: a process sends its estimate to the round coordinator.
    Estimate {
        /// Consensus instance (the OAR epoch number).
        instance: u64,
        /// Round number (starts at 1).
        round: u64,
        /// The sender's current estimate.
        estimate: Estimate<V>,
    },
    /// Phase 2: the coordinator's proposal for the round.
    Propose {
        /// Consensus instance.
        instance: u64,
        /// Round number.
        round: u64,
        /// Proposed aggregate.
        value: Decision<V>,
    },
    /// Phase 3: positive acknowledgement of the round's proposal.
    Ack {
        /// Consensus instance.
        instance: u64,
        /// Round number.
        round: u64,
    },
    /// Phase 3: negative acknowledgement (the coordinator was suspected).
    Nack {
        /// Consensus instance.
        instance: u64,
        /// Round number.
        round: u64,
    },
    /// Phase 4 / dissemination: the decision. Relayed on first reception so
    /// that one correct receiver suffices for everyone to decide.
    Decide {
        /// Consensus instance.
        instance: u64,
        /// The decided aggregate.
        value: Decision<V>,
    },
}

impl<V> ConsensusWire<V> {
    /// The consensus instance this message belongs to.
    pub fn instance(&self) -> u64 {
        match self {
            ConsensusWire::Estimate { instance, .. }
            | ConsensusWire::Propose { instance, .. }
            | ConsensusWire::Ack { instance, .. }
            | ConsensusWire::Nack { instance, .. }
            | ConsensusWire::Decide { instance, .. } => *instance,
        }
    }
}

/// Configuration of the consensus component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConsensusConfig {
    /// When `true` (default, recommended) the coordinator waits for estimates
    /// from at least a majority of processes before proposing, which yields
    /// uniform agreement exactly as in \[CT96\].
    ///
    /// When `false`, the coordinator only waits for the estimates of the
    /// processes it does not suspect, mirroring the collection rule that the
    /// OAR paper's footnote 5 attributes to \[Fel98\]. This lets a suspected
    /// minority's values be excluded from the decision with any group size
    /// (reproducing Figure 4 of the paper at `n = 4`), but a very adversarial
    /// combination of wrong suspicions and crashes can then violate uniform
    /// agreement; see `DESIGN.md` §2.
    pub require_majority_estimates: bool,
}

impl Default for ConsensusConfig {
    fn default() -> Self {
        ConsensusConfig {
            require_majority_estimates: true,
        }
    }
}

/// One instance of rotating-coordinator consensus with Maj-validity.
#[derive(Clone, Debug)]
pub struct MajConsensus<V> {
    instance: u64,
    self_id: ProcessId,
    group: Vec<ProcessId>,
    first_coord_index: usize,
    config: ConsensusConfig,

    started: bool,
    round: u64,
    estimate: Option<Estimate<V>>,
    waiting_proposal: bool,
    decided: Option<Decision<V>>,
    decision_reported: bool,
    decide_sent: bool,
    suspects: BTreeSet<ProcessId>,

    estimates: BTreeMap<u64, BTreeMap<ProcessId, Estimate<V>>>,
    proposals: BTreeMap<u64, Decision<V>>,
    acks: BTreeMap<u64, BTreeSet<ProcessId>>,
    nacks: BTreeMap<u64, BTreeSet<ProcessId>>,
    proposed_rounds: BTreeSet<u64>,
}

impl<V: Clone + fmt::Debug> MajConsensus<V> {
    /// Creates instance `instance` for process `self_id` in `group`. The
    /// coordinator of round 1 is `first_coordinator` (subsequent rounds rotate
    /// through the group); the OAR server passes the successor of the failed
    /// sequencer here so that fail-over does not stall on the crashed process.
    ///
    /// # Panics
    ///
    /// Panics if `self_id` or `first_coordinator` is not a member of `group`.
    pub fn new(
        instance: u64,
        self_id: ProcessId,
        group: Vec<ProcessId>,
        first_coordinator: ProcessId,
        config: ConsensusConfig,
    ) -> Self {
        assert!(group.contains(&self_id), "self must be a group member");
        let first_coord_index = group
            .iter()
            .position(|&p| p == first_coordinator)
            .expect("first coordinator must be a group member");
        MajConsensus {
            instance,
            self_id,
            group,
            first_coord_index,
            config,
            started: false,
            round: 0,
            estimate: None,
            waiting_proposal: false,
            decided: None,
            decision_reported: false,
            decide_sent: false,
            suspects: BTreeSet::new(),
            estimates: BTreeMap::new(),
            proposals: BTreeMap::new(),
            acks: BTreeMap::new(),
            nacks: BTreeMap::new(),
            proposed_rounds: BTreeSet::new(),
        }
    }

    /// The consensus instance number.
    pub fn instance(&self) -> u64 {
        self.instance
    }

    /// Whether `propose` has been called.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<&Decision<V>> {
        self.decided.as_ref()
    }

    /// Whether a decision has been reached.
    pub fn has_decided(&self) -> bool {
        self.decided.is_some()
    }

    /// The coordinator of round `round` (1-based).
    pub fn coordinator_of(&self, round: u64) -> ProcessId {
        let idx = (self.first_coord_index + (round as usize - 1)) % self.group.len();
        self.group[idx]
    }

    fn majority(&self) -> usize {
        self.group.len() / 2 + 1
    }

    /// Starts the instance with initial value `value`.
    ///
    /// Returns the wire messages to send. If the instance already received
    /// enough messages from faster processes (or a decision), progress is made
    /// immediately and reflected in the output / decision.
    pub fn propose(&mut self, value: V) -> ProgressOutput<V> {
        if self.started {
            return ProgressOutput::default();
        }
        self.started = true;
        self.round = 1;
        self.estimate = Some(Estimate {
            ts: 0,
            value: EstimateValue::Initial(value),
        });
        self.waiting_proposal = true;
        let mut out = Vec::new();
        self.send_estimate(self.round, &mut out);
        self.try_progress(&mut out);
        self.progress_output(out)
    }

    /// Handles an incoming consensus wire message.
    pub fn on_wire(&mut self, from: ProcessId, wire: ConsensusWire<V>) -> ProgressOutput<V> {
        debug_assert_eq!(wire.instance(), self.instance, "instance mismatch");
        let mut out = Vec::new();
        match wire {
            ConsensusWire::Estimate {
                round, estimate, ..
            } => {
                self.estimates
                    .entry(round)
                    .or_default()
                    .insert(from, estimate);
            }
            ConsensusWire::Propose { round, value, .. } => {
                self.proposals.entry(round).or_insert(value);
            }
            ConsensusWire::Ack { round, .. } => {
                self.acks.entry(round).or_default().insert(from);
            }
            ConsensusWire::Nack { round, .. } => {
                self.nacks.entry(round).or_default().insert(from);
            }
            ConsensusWire::Decide { value, .. } => {
                self.adopt_decision(value, &mut out);
            }
        }
        self.try_progress(&mut out);
        self.progress_output(out)
    }

    /// Updates the failure-detector view (the paper's `D_p`). Suspicions may
    /// unblock the coordinator wait or cause a nack.
    pub fn update_suspects(&mut self, suspects: &BTreeSet<ProcessId>) -> ProgressOutput<V> {
        self.suspects = suspects
            .iter()
            .copied()
            .filter(|p| self.group.contains(p) && *p != self.self_id)
            .collect();
        let mut out = Vec::new();
        self.try_progress(&mut out);
        self.progress_output(out)
    }

    // ------------------------------------------------------------------

    fn progress_output(&mut self, out: Vec<ConsensusSend<V>>) -> ProgressOutput<V> {
        let decision = if self.decided.is_some() && !self.decision_reported {
            self.decision_reported = true;
            self.decided.clone()
        } else {
            None
        };
        ProgressOutput {
            messages: out,
            decision,
        }
    }

    /// Every group member except this process: the destination list of the
    /// group-wide (`Propose`, `Decide`) sends.
    fn peers(&self) -> Vec<ProcessId> {
        self.group
            .iter()
            .copied()
            .filter(|&p| p != self.self_id)
            .collect()
    }

    fn adopt_decision(&mut self, value: Decision<V>, out: &mut Vec<ConsensusSend<V>>) {
        if self.decided.is_some() {
            return;
        }
        self.decided = Some(value.clone());
        if !self.decide_sent {
            self.decide_sent = true;
            // One wire for the whole group: the host shares the allocation.
            out.push(ConsensusSend {
                wire: ConsensusWire::Decide {
                    instance: self.instance,
                    value,
                },
                targets: self.peers(),
            });
        }
    }

    fn send_estimate(&mut self, round: u64, out: &mut Vec<ConsensusSend<V>>) {
        let estimate = self.estimate.clone().expect("estimate set after propose");
        let coord = self.coordinator_of(round);
        if coord == self.self_id {
            self.estimates
                .entry(round)
                .or_default()
                .insert(self.self_id, estimate);
        } else {
            out.push(ConsensusSend::unicast(
                coord,
                ConsensusWire::Estimate {
                    instance: self.instance,
                    round,
                    estimate,
                },
            ));
        }
    }

    fn send_ack(&mut self, round: u64, positive: bool, out: &mut Vec<ConsensusSend<V>>) {
        let coord = self.coordinator_of(round);
        if coord == self.self_id {
            if positive {
                self.acks.entry(round).or_default().insert(self.self_id);
            } else {
                self.nacks.entry(round).or_default().insert(self.self_id);
            }
        } else {
            let wire = if positive {
                ConsensusWire::Ack {
                    instance: self.instance,
                    round,
                }
            } else {
                ConsensusWire::Nack {
                    instance: self.instance,
                    round,
                }
            };
            out.push(ConsensusSend::unicast(coord, wire));
        }
    }

    fn try_progress(&mut self, out: &mut Vec<ConsensusSend<V>>) {
        if !self.started {
            return;
        }
        loop {
            if self.decided.is_some() {
                return;
            }
            let mut progressed = false;
            progressed |= self.coordinator_phase2(out);
            progressed |= self.phase3(out);
            progressed |= self.coordinator_phase4(out);
            if !progressed {
                return;
            }
        }
    }

    /// Coordinator: propose once the estimate-collection condition is met.
    fn coordinator_phase2(&mut self, out: &mut Vec<ConsensusSend<V>>) -> bool {
        let mut progressed = false;
        for round in 1..=self.round {
            if self.coordinator_of(round) != self.self_id || self.proposed_rounds.contains(&round) {
                continue;
            }
            let received = self.estimates.entry(round).or_default();
            let received_count = received.len();
            let missing_all_suspected = self
                .group
                .iter()
                .all(|p| received.contains_key(p) || self.suspects.contains(p));
            let enough = if self.config.require_majority_estimates {
                received_count > self.group.len() / 2
            } else {
                received_count >= 1
            };
            if !(missing_all_suspected && enough) {
                continue;
            }
            // Pick the locked estimate with the highest timestamp, if any;
            // otherwise aggregate the collected initial values.
            let mut best_locked: Option<(u64, Decision<V>)> = None;
            for est in received.values() {
                if let EstimateValue::Locked(v) = &est.value {
                    if best_locked.as_ref().is_none_or(|(ts, _)| est.ts > *ts) {
                        best_locked = Some((est.ts, v.clone()));
                    }
                }
            }
            let proposal: Decision<V> = match best_locked {
                Some((_, locked)) => locked,
                None => received
                    .iter()
                    .filter_map(|(p, est)| match &est.value {
                        EstimateValue::Initial(v) => Some((*p, v.clone())),
                        EstimateValue::Locked(_) => None,
                    })
                    .collect(),
            };
            self.proposed_rounds.insert(round);
            self.proposals.entry(round).or_insert(proposal.clone());
            // One Propose wire shared by every other group member, instead of
            // one pre-cloned aggregate per destination.
            out.push(ConsensusSend {
                wire: ConsensusWire::Propose {
                    instance: self.instance,
                    round,
                    value: proposal,
                },
                targets: self.peers(),
            });
            progressed = true;
        }
        progressed
    }

    /// Every process: react to the current round's proposal or to suspicion of
    /// the current coordinator, then move to the next round.
    fn phase3(&mut self, out: &mut Vec<ConsensusSend<V>>) -> bool {
        if !self.waiting_proposal {
            return false;
        }
        let round = self.round;
        if let Some(value) = self.proposals.get(&round).cloned() {
            self.estimate = Some(Estimate {
                ts: round,
                value: EstimateValue::Locked(value),
            });
            self.waiting_proposal = false;
            self.send_ack(round, true, out);
            self.advance_round(out);
            return true;
        }
        let coord = self.coordinator_of(round);
        if coord != self.self_id && self.suspects.contains(&coord) {
            self.waiting_proposal = false;
            self.send_ack(round, false, out);
            self.advance_round(out);
            return true;
        }
        false
    }

    fn advance_round(&mut self, out: &mut Vec<ConsensusSend<V>>) {
        self.round += 1;
        self.waiting_proposal = true;
        self.send_estimate(self.round, out);
    }

    /// Re-sends the wire messages this process's current state calls for: its
    /// estimate for the round it is in, the proposals of rounds it
    /// coordinated, and the decision if one was reached. Every one of them is
    /// idempotent at the receiver (estimates and proposals are keyed inserts,
    /// the decision is adopted once), so re-sending is always safe.
    ///
    /// Consensus assumes quasi-reliable channels between correct processes —
    /// but a process that crashes and restarts loses every message sent to it
    /// while it was down, *including* estimates sent to it as the round's
    /// coordinator, and nothing in the protocol re-sends them. Hosts call
    /// this from a coarse timer when an instance has been stuck for a while
    /// to restore the channel assumption.
    pub fn retransmit(&mut self) -> ProgressOutput<V> {
        if !self.started {
            return ProgressOutput::default();
        }
        let mut out = Vec::new();
        if let Some(decision) = self.decided.clone() {
            out.push(ConsensusSend {
                wire: ConsensusWire::Decide {
                    instance: self.instance,
                    value: decision,
                },
                targets: self.peers(),
            });
            return self.progress_output(out);
        }
        self.send_estimate(self.round, &mut out);
        for &round in &self.proposed_rounds {
            if self.coordinator_of(round) != self.self_id {
                continue;
            }
            let value = self
                .proposals
                .get(&round)
                .cloned()
                .expect("proposed value stored");
            out.push(ConsensusSend {
                wire: ConsensusWire::Propose {
                    instance: self.instance,
                    round,
                    value,
                },
                targets: self.peers(),
            });
        }
        self.try_progress(&mut out);
        self.progress_output(out)
    }

    /// Coordinator: decide once a majority acked the proposal of a round it
    /// coordinated.
    fn coordinator_phase4(&mut self, out: &mut Vec<ConsensusSend<V>>) -> bool {
        let rounds: Vec<u64> = self.proposed_rounds.iter().copied().collect();
        for round in rounds {
            if self.coordinator_of(round) != self.self_id {
                continue;
            }
            let ack_count = self.acks.get(&round).map_or(0, BTreeSet::len);
            if ack_count >= self.majority() {
                let value = self
                    .proposals
                    .get(&round)
                    .cloned()
                    .expect("proposed value stored");
                self.adopt_decision(value, out);
                return true;
            }
        }
        false
    }
}

/// The result of driving a [`MajConsensus`] one step: messages to send plus the
/// decision if it was just reached (reported exactly once).
///
/// Each entry of `messages` is one wire allocation; multi-target entries are
/// meant to be forwarded through a shared-payload multicast primitive.
#[derive(Debug)]
pub struct ProgressOutput<V> {
    /// Wire messages to transmit, one [`ConsensusSend`] per distinct wire.
    pub messages: Vec<ConsensusSend<V>>,
    /// The decision, the first time it becomes available.
    pub decision: Option<Decision<V>>,
}

impl<V> Default for ProgressOutput<V> {
    fn default() -> Self {
        ProgressOutput {
            messages: Vec::new(),
            decision: None,
        }
    }
}

#[cfg(test)]
mod tests;
