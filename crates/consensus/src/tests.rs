//! Unit and property tests for the Maj-validity consensus.
//!
//! The tests drive several [`MajConsensus`] instances directly through a tiny
//! in-memory message router (no simulator), which makes crash and suspicion
//! scenarios explicit and fully deterministic.

use super::*;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{RngCore, SeedableRng};
use std::collections::VecDeque;

type Val = u32;

/// Minimal in-memory router for consensus instances.
struct Harness {
    nodes: Vec<Option<MajConsensus<Val>>>,
    queue: VecDeque<(ProcessId, Outgoing<ConsensusWire<Val>>)>,
    decisions: Vec<Option<Decision<Val>>>,
}

impl Harness {
    fn new(n: usize, first_coord: usize, config: ConsensusConfig) -> Self {
        let group: Vec<ProcessId> = (0..n).map(ProcessId::new).collect();
        let nodes = (0..n)
            .map(|i| {
                Some(MajConsensus::new(
                    0,
                    ProcessId::new(i),
                    group.clone(),
                    ProcessId::new(first_coord),
                    config,
                ))
            })
            .collect();
        Harness {
            nodes,
            queue: VecDeque::new(),
            decisions: vec![None; n],
        }
    }

    fn absorb(&mut self, from: ProcessId, output: ProgressOutput<Val>) {
        for send in output.messages {
            // The router works per destination: expand the shared sends.
            for m in send.into_outgoing() {
                self.queue.push_back((from, m));
            }
        }
        if let Some(d) = output.decision {
            self.decisions[from.index()] = Some(d);
        }
    }

    fn propose(&mut self, p: usize, v: Val) {
        if let Some(node) = self.nodes[p].as_mut() {
            let out = node.propose(v);
            self.absorb(ProcessId::new(p), out);
        }
    }

    fn propose_all(&mut self) {
        for p in 0..self.nodes.len() {
            self.propose(p, 100 + p as Val);
        }
    }

    fn crash(&mut self, p: usize) {
        self.nodes[p] = None;
    }

    fn set_suspects(&mut self, p: usize, suspects: &[usize]) {
        if let Some(node) = self.nodes[p].as_mut() {
            let set: BTreeSet<ProcessId> = suspects.iter().map(|&s| ProcessId::new(s)).collect();
            let out = node.update_suspects(&set);
            self.absorb(ProcessId::new(p), out);
        }
    }

    /// Delivers queued messages until quiescence (FIFO order).
    fn run(&mut self) {
        self.run_with_order(|queue| queue.pop_front());
    }

    /// Delivers queued messages until quiescence, choosing each next message
    /// with `pick` (used for randomised orderings).
    fn run_with_order(
        &mut self,
        pick: impl FnMut(
            &mut VecDeque<(ProcessId, Outgoing<ConsensusWire<Val>>)>,
        ) -> Option<(ProcessId, Outgoing<ConsensusWire<Val>>)>,
    ) {
        let delivered = self.run_bounded(20_000, pick);
        assert!(delivered < 20_000, "consensus harness did not quiesce");
    }

    /// Delivers at most `max_steps` messages chosen by `pick`; returns the
    /// number delivered. Used for scenarios (e.g. minority partitions under
    /// the relaxed collection rule) where the protocol legitimately keeps
    /// cycling through rounds and never quiesces on its own.
    fn run_bounded(
        &mut self,
        max_steps: usize,
        mut pick: impl FnMut(
            &mut VecDeque<(ProcessId, Outgoing<ConsensusWire<Val>>)>,
        ) -> Option<(ProcessId, Outgoing<ConsensusWire<Val>>)>,
    ) -> usize {
        let mut steps = 0usize;
        while steps < max_steps {
            let Some((from, outgoing)) = pick(&mut self.queue) else {
                break;
            };
            steps += 1;
            let to = outgoing.to;
            if let Some(node) = self.nodes[to.index()].as_mut() {
                let out = node.on_wire(from, outgoing.wire);
                self.absorb(to, out);
            }
        }
        steps
    }

    fn alive_decisions(&self) -> Vec<&Decision<Val>> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_some())
            .filter_map(|(i, _)| self.decisions[i].as_ref())
            .collect()
    }
}

#[test]
fn coordinator_rotation_is_deterministic() {
    let group: Vec<ProcessId> = (0..4).map(ProcessId::new).collect();
    let c = MajConsensus::<u32>::new(
        7,
        ProcessId::new(0),
        group,
        ProcessId::new(2),
        ConsensusConfig::default(),
    );
    assert_eq!(c.coordinator_of(1), ProcessId::new(2));
    assert_eq!(c.coordinator_of(2), ProcessId::new(3));
    assert_eq!(c.coordinator_of(3), ProcessId::new(0));
    assert_eq!(c.coordinator_of(4), ProcessId::new(1));
    assert_eq!(c.coordinator_of(5), ProcessId::new(2));
    assert_eq!(c.instance(), 7);
}

#[test]
#[should_panic(expected = "group member")]
fn foreign_coordinator_is_rejected() {
    let group: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
    let _ = MajConsensus::<u32>::new(
        0,
        ProcessId::new(0),
        group,
        ProcessId::new(9),
        ConsensusConfig::default(),
    );
}

#[test]
fn failure_free_run_decides_with_all_values() {
    let mut h = Harness::new(3, 0, ConsensusConfig::default());
    h.propose_all();
    h.run();
    let decisions = h.alive_decisions();
    assert_eq!(decisions.len(), 3, "all processes decide");
    for d in &decisions {
        assert_eq!(*d, decisions[0], "agreement");
    }
    // The coordinator was never suspected, so it waited for everyone: the
    // decision aggregates all three initial values.
    let d = decisions[0];
    assert_eq!(d.len(), 3);
    for (p, v) in d {
        assert_eq!(
            *v,
            100 + p.index() as Val,
            "maj-validity: value matches proposer"
        );
    }
}

#[test]
fn second_propose_is_ignored() {
    let group: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
    let mut c = MajConsensus::<u32>::new(
        0,
        ProcessId::new(1),
        group,
        ProcessId::new(0),
        ConsensusConfig::default(),
    );
    let first = c.propose(5);
    assert_eq!(first.messages.len(), 1);
    let second = c.propose(6);
    assert!(second.messages.is_empty());
    assert!(second.decision.is_none());
}

#[test]
fn coordinator_crash_before_proposing_is_tolerated() {
    let mut h = Harness::new(3, 0, ConsensusConfig::default());
    // p0 (the coordinator) crashes before proposing anything.
    h.crash(0);
    h.propose(1, 11);
    h.propose(2, 12);
    h.run();
    // Not decided yet: p1 and p2 wait for the round-1 proposal.
    assert!(h.alive_decisions().is_empty());
    // The failure detector eventually suspects p0 everywhere.
    h.set_suspects(1, &[0]);
    h.set_suspects(2, &[0]);
    h.run();
    let decisions = h.alive_decisions();
    assert_eq!(decisions.len(), 2);
    assert_eq!(decisions[0], decisions[1]);
    // The decision aggregates the two surviving initial values.
    let mut pairs = decisions[0].clone();
    pairs.sort_by_key(|(p, _)| *p);
    assert_eq!(
        pairs,
        vec![(ProcessId::new(1), 11), (ProcessId::new(2), 12)]
    );
}

#[test]
fn coordinator_crash_after_partial_propose_still_agrees() {
    // p0 proposes, collects estimates and sends its proposal, but we crash it
    // before the proposal reaches anyone except p1; p1 locks it. The round-2
    // coordinator must preserve the locked value (CT locking).
    let mut h = Harness::new(3, 0, ConsensusConfig::default());
    h.propose_all();
    // deliver only the estimate messages to p0 so it proposes
    h.run_with_order(|queue| {
        let idx = queue.iter().position(|(_, o)| {
            matches!(o.wire, ConsensusWire::Estimate { .. }) && o.to == ProcessId::new(0)
        });
        idx.and_then(|i| queue.remove(i))
    });
    // now the queue holds p0's Propose messages (and leftover acks); deliver the
    // proposal only to p1, drop the copy to p2 by crashing p0 and filtering.
    let mut to_p1 = Vec::new();
    while let Some((from, o)) = h.queue.pop_front() {
        if o.to == ProcessId::new(1) {
            to_p1.push((from, o));
        }
        // everything else (to p0 or p2) is lost with the crash
    }
    h.crash(0);
    for (from, o) in to_p1 {
        let out = h.nodes[1].as_mut().unwrap().on_wire(from, o.wire);
        h.absorb(ProcessId::new(1), out);
    }
    h.set_suspects(1, &[0]);
    h.set_suspects(2, &[0]);
    h.run();
    let decisions = h.alive_decisions();
    assert_eq!(decisions.len(), 2);
    assert_eq!(decisions[0], decisions[1]);
    // p1 locked the round-1 proposal, which aggregated all three values; the
    // locked aggregate must survive into the final decision.
    assert_eq!(decisions[0].len(), 3);
}

#[test]
fn wrong_suspicion_delays_but_does_not_break_agreement() {
    let mut h = Harness::new(3, 0, ConsensusConfig::default());
    h.propose_all();
    // p1 and p2 wrongly suspect the (perfectly healthy) coordinator p0 and
    // nack round 1; p0 is slow but alive.
    h.set_suspects(1, &[0]);
    h.set_suspects(2, &[0]);
    h.run();
    let decisions = h.alive_decisions();
    assert_eq!(decisions.len(), 3);
    for d in &decisions {
        assert_eq!(*d, decisions[0]);
    }
    for (p, v) in decisions[0] {
        assert_eq!(*v, 100 + p.index() as Val);
    }
}

#[test]
fn five_processes_excluded_minority_values_absent() {
    // n = 5: p0 (sequencer-like) crashes, p1 is suspected by everyone (e.g.
    // partitioned minority); the remaining majority decides without p1's value.
    let mut h = Harness::new(5, 1, ConsensusConfig::default());
    h.crash(0);
    for p in 1..5 {
        h.propose(p, 100 + p as Val);
    }
    // p2..p4 suspect both p0 and p1; p1 suspects p0 only.
    h.set_suspects(1, &[0]);
    for p in 2..5 {
        h.set_suspects(p, &[0, 1]);
    }
    h.run();
    let decisions: Vec<_> = (2..5).filter_map(|p| h.decisions[p].clone()).collect();
    assert_eq!(decisions.len(), 3);
    for d in &decisions {
        assert_eq!(*d, decisions[0]);
    }
    let contributors: Vec<ProcessId> = decisions[0].iter().map(|(p, _)| *p).collect();
    assert!(!contributors.contains(&ProcessId::new(0)));
    assert!(
        !contributors.contains(&ProcessId::new(1)),
        "suspected minority excluded"
    );
    assert_eq!(contributors.len(), 3);
}

#[test]
fn relaxed_collection_rule_can_exclude_minority_at_n4() {
    // With require_majority_estimates = false (the footnote-5 rule), a decision
    // can be built from fewer than a majority of values: this is what enables
    // the paper's Figure 4 narrative at n = 4.
    let cfg = ConsensusConfig {
        require_majority_estimates: false,
    };
    let mut h = Harness::new(4, 1, cfg);
    h.crash(0);
    for p in 1..4 {
        h.propose(p, 100 + p as Val);
    }
    h.set_suspects(2, &[0, 1]);
    h.set_suspects(3, &[0, 1]);
    h.set_suspects(1, &[0]);
    // Deliver only messages among p2 and p3 first (p1 is "partitioned"). Under
    // the relaxed rule the pair keeps cycling through rounds (it can propose
    // but never gather a majority of acks), so bound the delivery instead of
    // waiting for quiescence.
    h.run_bounded(500, |queue| {
        let idx = queue
            .iter()
            .position(|(from, o)| from.index() >= 2 && o.to.index() >= 2);
        idx.and_then(|i| queue.remove(i))
    });
    // p2 and p3 alone cannot gather a majority of acks (need 3 of 4), so no
    // decision yet even under the relaxed rule.
    assert!(h.decisions[2].is_none() && h.decisions[3].is_none());
    // Partition heals: p2 and p3 stop suspecting p1 and everything is
    // delivered.
    h.set_suspects(2, &[0]);
    h.set_suspects(3, &[0]);
    h.run();
    let decisions: Vec<_> = (1..4).filter_map(|p| h.decisions[p].clone()).collect();
    assert_eq!(decisions.len(), 3);
    for d in &decisions {
        assert_eq!(*d, decisions[0]);
    }
    let contributors: Vec<ProcessId> = decisions[0].iter().map(|(p, _)| *p).collect();
    assert!(
        !contributors.contains(&ProcessId::new(1)),
        "p1's value excluded: {contributors:?}"
    );
}

#[test]
fn decide_message_is_relayed() {
    let group: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
    let mut c = MajConsensus::<u32>::new(
        0,
        ProcessId::new(2),
        group,
        ProcessId::new(0),
        ConsensusConfig::default(),
    );
    let _ = c.propose(9);
    let out = c.on_wire(
        ProcessId::new(0),
        ConsensusWire::Decide {
            instance: 0,
            value: vec![(ProcessId::new(0), 7)],
        },
    );
    assert!(out.decision.is_some());
    // relayed to the two other members through ONE shared wire
    let decide_relays: Vec<_> = out
        .messages
        .iter()
        .filter(|m| matches!(m.wire, ConsensusWire::Decide { .. }))
        .collect();
    assert_eq!(decide_relays.len(), 1, "one wire allocation");
    assert_eq!(decide_relays[0].targets.len(), 2, "both peers targeted");
    // a second Decide is not re-reported or re-relayed
    let again = c.on_wire(
        ProcessId::new(1),
        ConsensusWire::Decide {
            instance: 0,
            value: vec![(ProcessId::new(0), 7)],
        },
    );
    assert!(again.decision.is_none());
    assert!(again
        .messages
        .iter()
        .all(|m| !matches!(m.wire, ConsensusWire::Decide { .. })));
}

#[test]
fn wire_instance_accessor() {
    let w: ConsensusWire<u32> = ConsensusWire::Ack {
        instance: 4,
        round: 1,
    };
    assert_eq!(w.instance(), 4);
    let w: ConsensusWire<u32> = ConsensusWire::Decide {
        instance: 9,
        value: vec![],
    };
    assert_eq!(w.instance(), 9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Agreement, validity and termination over random group sizes, a random
    /// crashed minority, random wrong suspicions and a random delivery order.
    #[test]
    fn consensus_agreement_validity_random_runs(
        n in 3usize..=6,
        seed in any::<u64>(),
        crashed_pick in any::<u64>(),
        first_coord_pick in any::<u64>(),
    ) {
        let first_coord = (first_coord_pick as usize) % n;
        let mut h = Harness::new(n, first_coord, ConsensusConfig::default());
        let max_crashes = (n - 1) / 2;
        let crash_count = (crashed_pick as usize) % (max_crashes + 1);
        let crashed: Vec<usize> = (0..crash_count).map(|i| (crashed_pick as usize + i * 7) % n).collect();
        let mut crashed_set: Vec<usize> = crashed.clone();
        crashed_set.sort_unstable();
        crashed_set.dedup();

        for p in &crashed_set {
            h.crash(*p);
        }
        for p in 0..n {
            h.propose(p, 100 + p as Val);
        }

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // transient wrong suspicions: everyone briefly suspects a random process
        let wrong: usize = (seed as usize) % n;
        for p in 0..n {
            if !crashed_set.contains(&p) && p != wrong {
                h.set_suspects(p, &[wrong]);
            }
        }
        // random partial delivery
        for _ in 0..50 {
            if h.queue.is_empty() {
                break;
            }
            let idx = (rng.next_u64() as usize) % h.queue.len();
            if let Some((from, o)) = h.queue.remove(idx) {
                let to = o.to;
                if let Some(node) = h.nodes[to.index()].as_mut() {
                    let out = node.on_wire(from, o.wire);
                    h.absorb(to, out);
                }
            }
        }
        // stabilise: suspicions converge to exactly the crashed set
        let crashed_now: Vec<usize> = crashed_set.clone();
        for p in 0..n {
            if !crashed_set.contains(&p) {
                h.set_suspects(p, &crashed_now);
            }
        }
        // deliver everything, in random order
        let mut shuffled_rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(1));
        h.run_with_order(move |queue| {
            if queue.is_empty() {
                return None;
            }
            let mut indices: Vec<usize> = (0..queue.len()).collect();
            indices.shuffle(&mut shuffled_rng);
            queue.remove(indices[0])
        });

        // Termination: every alive process decided.
        let alive: Vec<usize> = (0..n).filter(|p| !crashed_set.contains(p)).collect();
        for &p in &alive {
            prop_assert!(h.decisions[p].is_some(), "process {p} did not decide");
        }
        // Agreement: all alive decisions identical.
        let first = h.decisions[alive[0]].clone().unwrap();
        for &p in &alive {
            prop_assert_eq!(h.decisions[p].as_ref().unwrap(), &first);
        }
        // Validity / Maj-validity shape: every pair in the decision carries the
        // value actually proposed by that process, and contributors are distinct.
        let mut seen = BTreeSet::new();
        for (pid, v) in &first {
            prop_assert_eq!(*v, 100 + pid.index() as Val);
            prop_assert!(seen.insert(*pid), "duplicate contributor {pid:?}");
        }
        // With the default (majority) collection rule the decision aggregates
        // at least a majority of values unless some estimate was locked early;
        // it always aggregates at least one.
        prop_assert!(!first.is_empty());
    }
}
