//! Reliable multicast and reliable broadcast.
//!
//! The OAR paper (§3) assumes a primitive `R-multicast(m, Π)` with three
//! properties:
//!
//! * **Validity** — if a correct process executes `R-multicast(m, Π)`, then
//!   every correct process in `Π` eventually R-delivers `m`;
//! * **Agreement** — if a correct process R-delivers `m`, then all correct
//!   processes of `Π` eventually R-deliver `m`;
//! * **Integrity** — every process R-delivers `m` at most once, and only if it
//!   was previously R-multicast.
//!
//! The classic crash-stop construction over reliable channels is used: the
//! sender sends `m` to every member of `Π`; when a member receives `m` for the
//! first time it *relays* `m` to every member of `Π` and then delivers it.
//! Relaying guarantees Agreement even if the sender crashes in the middle of
//! its send loop. Duplicates are suppressed with a per-message identifier.
//!
//! The sender does not need to belong to `Π` (the OAR clients multicast their
//! requests to the server group without being members); when it does belong to
//! the group ([`ReliableCaster::broadcast`]), it also delivers its own message,
//! which gives the `R-broadcast` primitive used for `PhaseII` notifications.

use std::collections::HashSet;

use oar_simnet::ProcessId;

use crate::component::{MsgId, Outgoing};

/// Wire format of the reliable multicast: the payload plus the identifier used
/// for duplicate suppression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CastWire<M> {
    /// Unique identifier of this multicast (origin process + local counter).
    pub id: MsgId,
    /// The process that invoked `R-multicast` (the OAR "sender(m)", used by
    /// servers to know where to send the reply).
    pub origin: ProcessId,
    /// The payload.
    pub payload: M,
}

/// The sender-side and receiver-side state of reliable multicast for one
/// process.
#[derive(Clone, Debug)]
pub struct ReliableCaster<M> {
    self_id: ProcessId,
    group: Vec<ProcessId>,
    next_seq: u64,
    seen: HashSet<MsgId>,
    _marker: std::marker::PhantomData<M>,
}

impl<M: Clone> ReliableCaster<M> {
    /// Creates the multicast endpoint of process `self_id` for destination
    /// group `group` (which may or may not contain `self_id`).
    pub fn new(self_id: ProcessId, group: Vec<ProcessId>) -> Self {
        ReliableCaster {
            self_id,
            group,
            next_seq: 0,
            seen: HashSet::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// The destination group `Π`.
    pub fn group(&self) -> &[ProcessId] {
        &self.group
    }

    /// `R-multicast(m, Π)` for a sender that is *not* a member of `Π` (or that
    /// does not want to deliver its own message), without cloning the payload
    /// per destination: returns the wire message **once** plus the list of
    /// destinations. Pair with `Context::send_all`, which shares a single
    /// allocation of the wire across all recipients.
    pub fn multicast_shared(&mut self, payload: M) -> (MsgId, CastWire<M>, Vec<ProcessId>) {
        let id = MsgId::new(self.self_id, self.next_seq);
        self.next_seq += 1;
        let wire = CastWire {
            id,
            origin: self.self_id,
            payload,
        };
        let targets = self
            .group
            .iter()
            .copied()
            .filter(|&p| p != self.self_id)
            .collect();
        (id, wire, targets)
    }

    /// `R-multicast(m, Π)` returning one pre-cloned wire message per group
    /// member. Prefer [`ReliableCaster::multicast_shared`] on hot paths.
    pub fn multicast(&mut self, payload: M) -> (MsgId, Vec<Outgoing<CastWire<M>>>) {
        let (id, wire, targets) = self.multicast_shared(payload);
        let out = targets
            .into_iter()
            .map(|p| Outgoing::new(p, wire.clone()))
            .collect();
        (id, out)
    }

    /// `R-broadcast(m)` for a sender that *is* a member of `Π`, without
    /// cloning the payload per destination: returns the wire message once,
    /// the destinations, and the local delivery of the sender's own message.
    pub fn broadcast_shared(&mut self, payload: M) -> (CastWire<M>, Vec<ProcessId>, Delivery<M>) {
        let (id, wire, targets) = self.multicast_shared(payload);
        // Mark as seen so that relayed copies are not re-delivered.
        self.seen.insert(id);
        let local = Delivery {
            id,
            origin: self.self_id,
            payload: wire.payload.clone(),
        };
        (wire, targets, local)
    }

    /// `R-broadcast(m)` returning one pre-cloned wire message per other group
    /// member plus the local delivery. Prefer
    /// [`ReliableCaster::broadcast_shared`] on hot paths.
    pub fn broadcast(&mut self, payload: M) -> (Vec<Outgoing<CastWire<M>>>, Delivery<M>) {
        let (wire, targets, local) = self.broadcast_shared(payload);
        let out = targets
            .into_iter()
            .map(|p| Outgoing::new(p, wire.clone()))
            .collect();
        (out, local)
    }

    /// Handles an incoming multicast wire message, without cloning the relay
    /// payload per destination.
    ///
    /// Returns the delivery (if this is the first copy received) and — when a
    /// relay is required — the wire to forward plus its destinations (every
    /// member except this process and the origin).
    pub fn on_wire_shared(
        &mut self,
        wire: CastWire<M>,
    ) -> (Option<Delivery<M>>, Option<SharedRelay<M>>) {
        if !self.seen.insert(wire.id) {
            return (None, None);
        }
        let targets: Vec<ProcessId> = self
            .group
            .iter()
            .copied()
            .filter(|&p| p != self.self_id && p != wire.origin)
            .collect();
        if targets.is_empty() {
            let delivery = Delivery {
                id: wire.id,
                origin: wire.origin,
                payload: wire.payload,
            };
            return (Some(delivery), None);
        }
        let delivery = Delivery {
            id: wire.id,
            origin: wire.origin,
            payload: wire.payload.clone(),
        };
        (Some(delivery), Some((wire, targets)))
    }

    /// Handles an incoming multicast wire message, returning one pre-cloned
    /// relay per destination. Prefer [`ReliableCaster::on_wire_shared`] on hot
    /// paths.
    pub fn on_wire(
        &mut self,
        wire: CastWire<M>,
    ) -> (Option<Delivery<M>>, Vec<Outgoing<CastWire<M>>>) {
        let (delivery, relay) = self.on_wire_shared(wire);
        let relays = match relay {
            None => Vec::new(),
            Some((wire, targets)) => targets
                .into_iter()
                .map(|p| Outgoing::new(p, wire.clone()))
                .collect(),
        };
        (delivery, relays)
    }

    /// Number of distinct multicasts seen so far (delivered or self-sent).
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }

    /// The duplicate-suppression set in sorted order plus the local multicast
    /// counter — a canonical view of the caster's state, used by the model
    /// checker's state digests (`HashSet` iteration order is not stable).
    pub fn digest_view(&self) -> (u64, Vec<MsgId>) {
        let mut seen: Vec<MsgId> = self.seen.iter().copied().collect();
        seen.sort();
        (self.next_seq, seen)
    }

    /// Replaces group member `old` by `new` in place, keeping the slot order
    /// (the OAR sequencer rotation indexes into `Π` by position, so a
    /// membership change must not permute the survivors). Returns whether
    /// `old` was a member. The duplicate-suppression set is untouched: ids
    /// already seen stay suppressed regardless of who relays them.
    pub fn replace_member(&mut self, old: ProcessId, new: ProcessId) -> bool {
        match self.group.iter().position(|&p| p == old) {
            Some(slot) => {
                self.group[slot] = new;
                true
            }
            None => false,
        }
    }

    /// Ages `id` out of the duplicate-suppression set, returning whether it
    /// was present.
    ///
    /// The `seen` set otherwise grows with the lifetime of the process; the
    /// OAR servers bound it by forgetting a multicast's id once the request
    /// it carried is *settled* under the epoch-watermark rule — the same
    /// condition that lets them prune the payload. Forgetting is safe-but-
    /// noisy rather than unsafe: should a stale relay of a forgotten
    /// multicast still arrive, it is re-delivered (and re-relayed) once, and
    /// the layer above discards it by its own settled-request check —
    /// Integrity moves from this set to the caller's, which is why only ids
    /// the caller can recognise as settled may be forgotten.
    pub fn forget(&mut self, id: &MsgId) -> bool {
        self.seen.remove(id)
    }
}

/// A relay produced by [`ReliableCaster::on_wire_shared`]: the wire message
/// to forward (once) and the destinations to forward it to.
pub type SharedRelay<M> = (CastWire<M>, Vec<ProcessId>);

/// A message R-delivered to the upper layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Identifier of the multicast.
    pub id: MsgId,
    /// The process that R-multicast the message.
    pub origin: ProcessId,
    /// The payload.
    pub payload: M,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group3() -> Vec<ProcessId> {
        vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]
    }

    #[test]
    fn multicast_from_external_sender_reaches_all_members() {
        let mut client: ReliableCaster<&str> = ReliableCaster::new(ProcessId::new(9), group3());
        let (id, out) = client.multicast("req");
        assert_eq!(out.len(), 3);
        assert_eq!(id.origin, ProcessId::new(9));
        let targets: Vec<ProcessId> = out.iter().map(|o| o.to).collect();
        assert_eq!(targets, group3());
        assert!(out.iter().all(|o| o.wire.origin == ProcessId::new(9)));
    }

    #[test]
    fn first_reception_delivers_and_relays() {
        let mut client: ReliableCaster<&str> = ReliableCaster::new(ProcessId::new(9), group3());
        let mut server0: ReliableCaster<&str> = ReliableCaster::new(ProcessId::new(0), group3());
        let (_, out) = client.multicast("req");
        let to_p0 = out.into_iter().find(|o| o.to == ProcessId::new(0)).unwrap();
        let (delivery, relays) = server0.on_wire(to_p0.wire);
        let delivery = delivery.expect("first copy must be delivered");
        assert_eq!(delivery.payload, "req");
        assert_eq!(delivery.origin, ProcessId::new(9));
        // relays go to the other group members, not back to the origin
        let relay_targets: Vec<ProcessId> = relays.iter().map(|o| o.to).collect();
        assert_eq!(relay_targets, vec![ProcessId::new(1), ProcessId::new(2)]);
    }

    #[test]
    fn duplicates_are_not_redelivered() {
        let mut client: ReliableCaster<&str> = ReliableCaster::new(ProcessId::new(9), group3());
        let mut server0: ReliableCaster<&str> = ReliableCaster::new(ProcessId::new(0), group3());
        let (_, out) = client.multicast("req");
        let wire = out[0].wire.clone();
        let (d1, _) = server0.on_wire(wire.clone());
        let (d2, relays2) = server0.on_wire(wire);
        assert!(d1.is_some());
        assert!(d2.is_none());
        assert!(relays2.is_empty());
        assert_eq!(server0.seen_count(), 1);
    }

    #[test]
    fn forget_ages_out_and_permits_one_redelivery() {
        let mut client: ReliableCaster<&str> = ReliableCaster::new(ProcessId::new(9), group3());
        let mut server0: ReliableCaster<&str> = ReliableCaster::new(ProcessId::new(0), group3());
        let (_, out) = client.multicast("req");
        let wire = out[0].wire.clone();
        let (d1, _) = server0.on_wire(wire.clone());
        assert!(d1.is_some());
        assert_eq!(server0.seen_count(), 1);
        assert!(server0.forget(&wire.id));
        assert!(!server0.forget(&wire.id), "already forgotten");
        assert_eq!(server0.seen_count(), 0);
        // A stale duplicate after forgetting is re-delivered once (the layer
        // above suppresses it by its settled-request check) and re-tracked.
        let (d2, _) = server0.on_wire(wire);
        assert!(d2.is_some());
        assert_eq!(server0.seen_count(), 1);
    }

    #[test]
    fn broadcast_delivers_locally_and_ignores_own_relay() {
        let mut p0: ReliableCaster<u32> = ReliableCaster::new(ProcessId::new(0), group3());
        let (out, local) = p0.broadcast(42);
        assert_eq!(local.payload, 42);
        assert_eq!(local.origin, ProcessId::new(0));
        assert_eq!(out.len(), 2);
        // if a relayed copy of our own broadcast comes back, it is ignored
        let echo = CastWire {
            id: local.id,
            origin: ProcessId::new(0),
            payload: 42,
        };
        let (d, _) = p0.on_wire(echo);
        assert!(d.is_none());
    }

    #[test]
    fn replace_member_retargets_relays_in_place() {
        let mut p0: ReliableCaster<&str> = ReliableCaster::new(ProcessId::new(0), group3());
        assert!(p0.replace_member(ProcessId::new(2), ProcessId::new(3)));
        assert!(!p0.replace_member(ProcessId::new(2), ProcessId::new(4)));
        // Slot order preserved: [0, 1, 3].
        assert_eq!(
            p0.group(),
            &[ProcessId::new(0), ProcessId::new(1), ProcessId::new(3)]
        );
        let mut client: ReliableCaster<&str> = ReliableCaster::new(ProcessId::new(9), group3());
        let (_, out) = client.multicast("req");
        let (d, relays) = p0.on_wire(out[0].wire.clone());
        assert!(d.is_some());
        // The relay reaches the newcomer instead of the fenced-out member.
        let relay_targets: Vec<ProcessId> = relays.iter().map(|o| o.to).collect();
        assert_eq!(relay_targets, vec![ProcessId::new(1), ProcessId::new(3)]);
    }

    #[test]
    fn distinct_multicasts_get_distinct_ids() {
        let mut client: ReliableCaster<u32> = ReliableCaster::new(ProcessId::new(9), group3());
        let (id1, _) = client.multicast(1);
        let (id2, _) = client.multicast(2);
        assert_ne!(id1, id2);
    }

    /// Agreement under sender crash: if the sender's sends reach only one
    /// member, the relay from that member still lets every member deliver.
    #[test]
    fn relay_provides_agreement_when_sender_crashes_mid_send() {
        let group = group3();
        let mut client: ReliableCaster<&str> =
            ReliableCaster::new(ProcessId::new(9), group.clone());
        let mut servers: Vec<ReliableCaster<&str>> = group
            .iter()
            .map(|&p| ReliableCaster::new(p, group.clone()))
            .collect();
        let (_, out) = client.multicast("req");
        // Sender crashes after only the copy to p1 made it out.
        let only = out.into_iter().find(|o| o.to == ProcessId::new(1)).unwrap();
        let (d1, relays) = servers[1].on_wire(only.wire);
        assert!(d1.is_some());
        let mut delivered = vec![false, true, false];
        for relay in relays {
            let idx = relay.to.index();
            let (d, more) = servers[idx].on_wire(relay.wire);
            if d.is_some() {
                delivered[idx] = true;
            }
            // second-level relays are harmless duplicates
            for r in more {
                let (d, _) = servers[r.to.index()].on_wire(r.wire);
                if d.is_some() {
                    delivered[r.to.index()] = true;
                }
            }
        }
        assert_eq!(delivered, vec![true, true, true]);
    }
}
