//! Shared plumbing for protocol components.
//!
//! Protocol components (reliable channels, failure detector, consensus, the OAR
//! server itself) are written as *pure state machines*: they are driven by a
//! host process and describe the messages they want to send as [`Outgoing`]
//! values. The host wraps the component wire type into the node's top-level
//! message enum and hands it to the network. This keeps every component
//! independently unit-testable, without a simulator.

use oar_simnet::ProcessId;

/// A message a component wants the host to send.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outgoing<W> {
    /// Destination process.
    pub to: ProcessId,
    /// Component-level wire message.
    pub wire: W,
}

impl<W> Outgoing<W> {
    /// Creates an outgoing message.
    pub fn new(to: ProcessId, wire: W) -> Self {
        Outgoing { to, wire }
    }

    /// Maps the wire payload, keeping the destination. Hosts use this to wrap
    /// component messages into their own envelope type.
    pub fn map<U>(self, f: impl FnOnce(W) -> U) -> Outgoing<U> {
        Outgoing {
            to: self.to,
            wire: f(self.wire),
        }
    }
}

/// Maps a whole batch of outgoing messages into the host's envelope type.
pub fn map_outgoing<W, U>(batch: Vec<Outgoing<W>>, mut f: impl FnMut(W) -> U) -> Vec<Outgoing<U>> {
    batch.into_iter().map(|o| o.map(&mut f)).collect()
}

/// A globally unique message identifier: the originating process plus a local
/// sequence number. Used for duplicate suppression by the reliable multicast
/// and as the request identifier of the OAR protocol.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId {
    /// The process that created the message.
    pub origin: ProcessId,
    /// Sequence number local to the origin.
    pub seq: u64,
}

impl MsgId {
    /// Creates a message identifier.
    pub fn new(origin: ProcessId, seq: u64) -> Self {
        MsgId { origin, seq }
    }
}

impl std::fmt::Debug for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}.{}", self.origin.index(), self.seq)
    }
}

impl std::fmt::Display for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}.{}", self.origin.index(), self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outgoing_map_preserves_destination() {
        let o = Outgoing::new(ProcessId::new(3), 7u32);
        let mapped = o.map(|v| format!("v{v}"));
        assert_eq!(mapped.to, ProcessId::new(3));
        assert_eq!(mapped.wire, "v7");
    }

    #[test]
    fn map_outgoing_batch() {
        let batch = vec![
            Outgoing::new(ProcessId::new(0), 1u32),
            Outgoing::new(ProcessId::new(1), 2u32),
        ];
        let mapped = map_outgoing(batch, |v| v * 10);
        assert_eq!(mapped[0].wire, 10);
        assert_eq!(mapped[1].wire, 20);
    }

    #[test]
    fn msgid_display() {
        let id = MsgId::new(ProcessId::new(2), 5);
        assert_eq!(format!("{id}"), "m2.5");
        assert_eq!(format!("{id:?}"), "m2.5");
    }

    #[test]
    fn msgid_ordering_by_origin_then_seq() {
        let a = MsgId::new(ProcessId::new(0), 9);
        let b = MsgId::new(ProcessId::new(1), 0);
        assert!(a < b);
        assert!(MsgId::new(ProcessId::new(0), 1) < MsgId::new(ProcessId::new(0), 2));
    }
}
