//! # oar-channels — group-communication toolkit for the OAR protocol
//!
//! The building blocks below the replication protocol:
//!
//! * [`FifoLink`] — reliable FIFO point-to-point channels over lossy,
//!   reordering links (sequence numbers, cumulative acks, retransmission);
//! * [`ReliableCaster`] — the paper's `R-multicast(m, Π)` / `R-broadcast`
//!   primitives (Validity, Agreement, Integrity) built on relaying;
//! * [`Outgoing`] / [`MsgId`] — shared plumbing for writing protocol
//!   components as pure, host-driven state machines.
//!
//! Every component in this crate is a plain state machine with no dependency on
//! the simulator's event loop: the host process feeds it incoming wire messages
//! and periodic ticks, and forwards the [`Outgoing`] messages it produces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod component;
pub mod fifo;
pub mod rmulticast;

pub use component::{map_outgoing, MsgId, Outgoing};
pub use fifo::{FifoLink, FifoWire};
pub use rmulticast::{CastWire, Delivery, ReliableCaster};
