//! Reliable FIFO point-to-point channels over lossy, reordering links.
//!
//! The OAR system model (§3 of the paper) assumes reliable FIFO channels. When
//! the simulated network is configured to be perfect this layer is not needed,
//! but the repository also evaluates the protocol over lossy links; this module
//! provides the classic sequence-number / cumulative-ack / retransmission
//! construction of reliable FIFO channels on top of fair-lossy links.

use std::collections::{BTreeMap, HashMap};

use oar_simnet::ProcessId;

use crate::component::Outgoing;

/// Wire messages of the reliable FIFO channel layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FifoWire<M> {
    /// A data message with its per-link sequence number.
    Data {
        /// Sequence number, starting at 0, per ordered (sender → receiver) link.
        seq: u64,
        /// The payload.
        msg: M,
    },
    /// A cumulative acknowledgement: all sequence numbers `< next` have been
    /// received in order.
    Ack {
        /// The next sequence number expected by the receiver.
        next: u64,
    },
}

/// One endpoint of the reliable FIFO channel layer, managing the links from
/// this process to every peer and from every peer to this process.
///
/// Retransmission is driven by the host calling [`FifoLink::on_tick`]
/// periodically (e.g. every few milliseconds of simulated time).
#[derive(Debug)]
pub struct FifoLink<M> {
    send_next: HashMap<ProcessId, u64>,
    unacked: HashMap<ProcessId, BTreeMap<u64, M>>,
    recv_next: HashMap<ProcessId, u64>,
    recv_buffer: HashMap<ProcessId, BTreeMap<u64, M>>,
}

impl<M> Default for FifoLink<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> FifoLink<M> {
    /// Creates an endpoint with no history.
    pub fn new() -> Self {
        FifoLink {
            send_next: HashMap::new(),
            unacked: HashMap::new(),
            recv_next: HashMap::new(),
            recv_buffer: HashMap::new(),
        }
    }
}

impl<M: Clone> FifoLink<M> {
    /// Queues `msg` for reliable FIFO delivery to `to` and returns the wire
    /// message to transmit now. The message is kept for retransmission until
    /// acknowledged.
    pub fn send(&mut self, to: ProcessId, msg: M) -> Outgoing<FifoWire<M>> {
        let seq = self.send_next.entry(to).or_insert(0);
        let this_seq = *seq;
        *seq += 1;
        self.unacked
            .entry(to)
            .or_default()
            .insert(this_seq, msg.clone());
        Outgoing::new(to, FifoWire::Data { seq: this_seq, msg })
    }

    /// Handles an incoming wire message from `from`.
    ///
    /// Returns the payloads now deliverable to the upper layer (in FIFO order)
    /// and any wire messages (acks) to transmit.
    pub fn on_wire(
        &mut self,
        from: ProcessId,
        wire: FifoWire<M>,
    ) -> (Vec<M>, Vec<Outgoing<FifoWire<M>>>) {
        match wire {
            FifoWire::Data { seq, msg } => {
                let next = self.recv_next.entry(from).or_insert(0);
                let mut delivered = Vec::new();
                if seq >= *next {
                    self.recv_buffer.entry(from).or_default().insert(seq, msg);
                    // drain contiguous prefix
                    let buffer = self.recv_buffer.entry(from).or_default();
                    while let Some(m) = buffer.remove(next) {
                        delivered.push(m);
                        *next += 1;
                    }
                }
                let ack = Outgoing::new(from, FifoWire::Ack { next: *next });
                (delivered, vec![ack])
            }
            FifoWire::Ack { next } => {
                if let Some(pending) = self.unacked.get_mut(&from) {
                    let keep = pending.split_off(&next);
                    *pending = keep;
                }
                (Vec::new(), Vec::new())
            }
        }
    }

    /// Retransmits every unacknowledged message. The host calls this
    /// periodically; the retransmission period is the host's choice.
    pub fn on_tick(&mut self) -> Vec<Outgoing<FifoWire<M>>> {
        let mut out = Vec::new();
        let mut peers: Vec<ProcessId> = self.unacked.keys().copied().collect();
        peers.sort();
        for to in peers {
            if let Some(pending) = self.unacked.get(&to) {
                for (&seq, msg) in pending {
                    out.push(Outgoing::new(
                        to,
                        FifoWire::Data {
                            seq,
                            msg: msg.clone(),
                        },
                    ));
                }
            }
        }
        out
    }

    /// Number of messages not yet acknowledged by `to`.
    pub fn unacked_to(&self, to: ProcessId) -> usize {
        self.unacked.get(&to).map_or(0, BTreeMap::len)
    }

    /// Total number of unacknowledged messages across all peers.
    pub fn unacked_total(&self) -> usize {
        self.unacked.values().map(BTreeMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ProcessId = ProcessId::new(0);
    const B: ProcessId = ProcessId::new(1);

    #[test]
    fn in_order_delivery() {
        let mut a: FifoLink<&str> = FifoLink::new();
        let mut b: FifoLink<&str> = FifoLink::new();
        let w1 = a.send(B, "one");
        let w2 = a.send(B, "two");
        let (d1, acks1) = b.on_wire(A, w1.wire);
        let (d2, _acks2) = b.on_wire(A, w2.wire);
        assert_eq!(d1, vec!["one"]);
        assert_eq!(d2, vec!["two"]);
        assert_eq!(acks1[0].to, A);
        // feeding the ack back clears the retransmission buffer
        assert_eq!(a.unacked_to(B), 2);
        a.on_wire(B, acks1[0].wire.clone());
        assert_eq!(a.unacked_to(B), 1);
    }

    #[test]
    fn out_of_order_messages_are_buffered() {
        let mut a: FifoLink<u32> = FifoLink::new();
        let mut b: FifoLink<u32> = FifoLink::new();
        let w0 = a.send(B, 0);
        let w1 = a.send(B, 1);
        let w2 = a.send(B, 2);
        // deliver 2 first: nothing deliverable yet
        let (d, _) = b.on_wire(A, w2.wire);
        assert!(d.is_empty());
        // deliver 0: only 0 deliverable
        let (d, _) = b.on_wire(A, w0.wire);
        assert_eq!(d, vec![0]);
        // deliver 1: 1 and the buffered 2 become deliverable, in order
        let (d, acks) = b.on_wire(A, w1.wire);
        assert_eq!(d, vec![1, 2]);
        assert_eq!(acks[0].wire, FifoWire::Ack { next: 3 });
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut a: FifoLink<u32> = FifoLink::new();
        let mut b: FifoLink<u32> = FifoLink::new();
        let w0 = a.send(B, 7);
        let (d, _) = b.on_wire(A, w0.wire.clone());
        assert_eq!(d, vec![7]);
        let (d, acks) = b.on_wire(A, w0.wire);
        assert!(d.is_empty());
        // the ack is still re-sent so the sender can stop retransmitting
        assert_eq!(acks.len(), 1);
    }

    #[test]
    fn retransmission_until_acked() {
        let mut a: FifoLink<u32> = FifoLink::new();
        let mut b: FifoLink<u32> = FifoLink::new();
        let _lost = a.send(B, 1); // pretend this wire message is lost
        let retries = a.on_tick();
        assert_eq!(retries.len(), 1);
        let (d, acks) = b.on_wire(A, retries[0].wire.clone());
        assert_eq!(d, vec![1]);
        a.on_wire(B, acks[0].wire.clone());
        assert!(a.on_tick().is_empty());
        assert_eq!(a.unacked_total(), 0);
    }

    #[test]
    fn cumulative_ack_clears_prefix() {
        let mut a: FifoLink<u32> = FifoLink::new();
        for i in 0..5 {
            a.send(B, i);
        }
        assert_eq!(a.unacked_to(B), 5);
        a.on_wire(B, FifoWire::Ack { next: 3 });
        assert_eq!(a.unacked_to(B), 2);
        a.on_wire(B, FifoWire::Ack { next: 5 });
        assert_eq!(a.unacked_to(B), 0);
    }

    #[test]
    fn independent_links_per_peer() {
        let mut a: FifoLink<u32> = FifoLink::new();
        let w_b = a.send(B, 1);
        let w_c = a.send(ProcessId::new(2), 2);
        assert!(matches!(w_b.wire, FifoWire::Data { seq: 0, .. }));
        assert!(matches!(w_c.wire, FifoWire::Data { seq: 0, .. }));
        assert_eq!(a.unacked_to(B), 1);
        assert_eq!(a.unacked_to(ProcessId::new(2)), 1);
    }

    /// Model check: under arbitrary loss and duplication of Data messages, the
    /// receiver delivers exactly the sent prefix, in order, as long as enough
    /// retransmission rounds happen.
    #[test]
    fn lossy_link_eventually_delivers_everything_in_order() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let mut a: FifoLink<u32> = FifoLink::new();
            let mut b: FifoLink<u32> = FifoLink::new();
            let total = 30u32;
            let mut delivered: Vec<u32> = Vec::new();
            let mut initial: Vec<_> = (0..total).map(|i| a.send(B, i)).collect();
            // lose ~half of the initial transmissions
            initial.retain(|_| rng.gen_bool(0.5));
            for w in initial {
                let (d, acks) = b.on_wire(A, w.wire);
                delivered.extend(d);
                for ack in acks {
                    if rng.gen_bool(0.7) {
                        a.on_wire(B, ack.wire);
                    }
                }
            }
            // retransmission rounds
            for _ in 0..10 {
                for w in a.on_tick() {
                    if rng.gen_bool(0.7) {
                        let (d, acks) = b.on_wire(A, w.wire);
                        delivered.extend(d);
                        for ack in acks {
                            if rng.gen_bool(0.7) {
                                a.on_wire(B, ack.wire);
                            }
                        }
                    }
                }
            }
            assert_eq!(delivered, (0..total).collect::<Vec<_>>());
        }
    }
}
