//! OAR-specific model-checking scenarios.
//!
//! This module instantiates the generic [`Checker`] for the OAR protocol:
//! small clusters ([`Cluster`]) on a **checker-friendly configuration** —
//! constant-latency loss-free FIFO network, protocol timers pushed beyond
//! the exploration horizon (no heartbeats, no flush deadlines, no catch-up
//! retries fire *inside* the model), eager unbatched sequencing, closed-loop
//! clients with zero think time. On such a configuration the system never
//! reads the clock or the RNG, so key-directed exploration with abstract
//! time covers every behaviour — the preconditions spelled out in the crate
//! docs.
//!
//! The **invariant** checked at every state is the conjunction of the
//! paper's safety propositions, evaluated by the production checkers
//! ([`check_server_consistency`], [`check_external_consistency`]): total
//! order / prefix compatibility of the committed sequences (Proposition 5),
//! at-most-once delivery (Propositions 2–3), digest equality at equal
//! delivery counts, and external consistency of adopted replies
//! (Proposition 7). The **goal** predicate is termination: every client
//! finished its workload and no in-horizon event remains. A terminal state
//! that is not a goal state is a deadlock — the liveness failure mode the
//! historical sequencer-handoff bug produced.
//!
//! Faults are modelled as [`McChoice`]s, so the checker explores their
//! placement against every message interleaving: [`crash_choice`] kills a
//! replica, [`restart_choice`] brings it back with blank state through the
//! catch-up protocol, and [`force_suspect_choice`] injects a failure-detector
//! suspicion (wrong or justified) at one observer. The pre-packaged
//! [`OarScenario`]s tie these together:
//!
//! * [`OarScenario::clean`] — no faults; exhaustive interleaving coverage of
//!   the optimistic path.
//! * [`OarScenario::sequencer_handoff`] — crash of the *next* sequencer plus
//!   a wrong suspicion of the current one. With
//!   [`OarConfig::bug_skip_handoff_recheck`] enabled this re-finds the
//!   historical stall: consensus hands the epoch to an already-suspected
//!   dead sequencer and no one re-triggers phase 2.
//! * [`OarScenario::mid_epoch_rejoin`] — crash + catch-up rejoin while
//!   epochs cut every two requests. With
//!   [`OarConfig::bug_skip_opt_freeze`] enabled this re-finds the Lemma-2
//!   violation: the rejoiner Opt-delivers a mid-epoch suffix whose prefix it
//!   never observed, and the replicas' committed sequences diverge.
//! * [`OarScenario::membership_change`] — crash of one replica plus its
//!   online **replacement** through a `Reconfig::Replace` fence
//!   ([`replace_choice`]): the fence settles conservatively, the spare joins
//!   through the event-driven held-catch-up path, and every interleaving
//!   must keep total order, at-most-once and external consistency and
//!   terminate.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use oar::message::OarWire;
use oar::state_machine::{CounterCommand, CounterMachine};
use oar::{
    check_external_consistency, check_server_consistency, spawn_replacement, Cluster,
    ClusterConfig, CompletedRequest, OarClient, OarConfig, OarConfigBuilder, OarServer,
};
use oar_simnet::{ForkError, NetConfig, PendingEventInfo, ProcessId, SimDuration, SimTime, World};

use crate::{Checker, McChoice, McConfig, McReport};

/// The wire type of a `CounterMachine` OAR cluster.
pub type Wire = OarWire<CounterCommand, i64>;

/// The exploration horizon of the packaged scenarios: far beyond the
/// microseconds the protocol needs on a 100µs-latency network, far below
/// the [`FAR`] timer period.
pub const HORIZON: SimTime = SimTime::from_secs(60);

/// "Never, within the model": the period of every protocol timer in a
/// checker-friendly configuration. Events at `now + FAR` exist in the queue
/// but lie beyond [`HORIZON`], so the checker neither fires nor hashes them.
pub const FAR: SimDuration = SimDuration::from_secs(3600);

/// Content hash of a wire message, for event signatures and state
/// fingerprints. Hashes the `Debug` rendering: every OAR wire derives
/// `Debug` over fully deterministic fields (ids, epochs, sequences), and the
/// rendering is stable across forks and rebuilds of the same world.
pub fn wire_digest(m: &Wire) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{m:?}").hash(&mut h);
    h.finish()
}

/// A checker-friendly protocol configuration: every timer-driven behaviour
/// (maintenance tick, catch-up retry) pushed beyond the horizon, eager
/// unbatched sequencing. `tweak` customises the rest (epoch cuts, fault
/// toggles).
pub fn timer_free_oar(tweak: impl FnOnce(OarConfigBuilder) -> OarConfigBuilder) -> OarConfig {
    tweak(OarConfig::builder().tick_interval(FAR).catch_up_retry(FAR)).build()
}

/// A checker-friendly cluster configuration over `oar`: constant-latency
/// FIFO network, zero think time, static pipeline of 1, and — crucially —
/// zero client start delays (the default stagger would be a time-dependent
/// behaviour the abstract-time exploration must not rely on).
pub fn mc_cluster_config(num_servers: usize, num_clients: usize, oar: OarConfig) -> ClusterConfig {
    ClusterConfig {
        num_servers,
        num_clients,
        net: NetConfig::constant(SimDuration::from_micros(100)),
        oar,
        seed: 1,
        think_time: SimDuration::ZERO,
        client_pipeline: 1,
        adaptive_pipeline: false,
        client_start_delays: vec![SimDuration::ZERO; num_clients],
    }
}

/// A fault choice killing `target` (consumes one unit of the fault budget).
pub fn crash_choice(target: ProcessId) -> McChoice<Wire> {
    McChoice {
        id: format!("crash({target})"),
        affects: Some(target),
        fault: true,
        enabled: Rc::new(move |world: &World<Wire>| !world.is_crashed(target)),
        apply: Rc::new(move |world: &mut World<Wire>| world.crash_now(target)),
    }
}

/// A choice restarting the crashed `target` with blank state: the
/// replacement is built with [`OarServer::recovering`], so it rejoins
/// through the snapshot + settled-delta catch-up protocol.
pub fn restart_choice(target: ProcessId, num_servers: usize, oar: OarConfig) -> McChoice<Wire> {
    let group: Vec<ProcessId> = (0..num_servers).map(ProcessId::new).collect();
    McChoice {
        id: format!("restart({target})"),
        affects: Some(target),
        fault: false,
        enabled: Rc::new(move |world: &World<Wire>| world.is_crashed(target)),
        apply: Rc::new(move |world: &mut World<Wire>| {
            world.restart_now(
                target,
                OarServer::recovering(target, group.clone(), oar, CounterMachine::default()),
            );
        }),
    }
}

/// A choice **replacing** the crashed `old_index`-th replica through the
/// online membership-reconfiguration path: spawns the replacement replica
/// over the post-replacement roster and injects the `Replace` fence request
/// into the survivors, which settle it through the conservative order
/// ([`spawn_replacement`] — the exact operation [`Cluster::inject_replace`]
/// performs). The replacement joins through the held-catch-up path: donors
/// that have not yet applied the fence *hold* its `CatchUpRequest` and serve
/// it the moment the fence applies, so the join is event-driven and needs no
/// retry timer — explorable timer-free.
///
/// Gated on `old` being actually crashed (replacing a live replica is legal
/// for the protocol but not what this scenario models). The gate is monotone
/// — the scenario repertoire offers no restart of `old`, so a crashed `old`
/// stays crashed — which keeps it sound under sleep-set reduction.
/// `affects: None`: the choice spawns a process and sends wires to every
/// survivor, so it is dependent with every other transition.
pub fn replace_choice(old_index: usize, num_servers: usize, oar: OarConfig) -> McChoice<Wire> {
    let servers: Vec<ProcessId> = (0..num_servers).map(ProcessId::new).collect();
    let old = servers[old_index];
    McChoice {
        id: format!("replace({old})"),
        affects: None,
        fault: false,
        enabled: Rc::new(move |world: &World<Wire>| world.is_crashed(old)),
        apply: Rc::new(move |world: &mut World<Wire>| {
            spawn_replacement(
                world,
                &servers,
                old_index,
                oar,
                CounterCommand::Add(0),
                CounterMachine::default(),
            );
            // Boot the replacement immediately so its first `CatchUpRequest`
            // is in the pending set before the next scheduling decision.
            world.start();
        }),
    }
}

/// A choice making server `at`'s failure detector suspect `target`
/// ([`OarServer::force_suspect`]: triggers Task 1c when `target` is the
/// current sequencer and feeds any running consensus, exactly like a real
/// suspicion event). With `only_when_down` the choice is gated on `target`
/// being actually crashed or mid-recovery (a *justified* suspicion — the
/// accuracy the eventually-perfect detector converges to); without it the
/// choice models a **wrong** suspicion of a healthy process.
///
/// The justified variant is additionally gated on the target having **no
/// in-flight messages**: the failure detector revokes suspicion on any
/// traffic from the suspect (`observe_traffic`), so a suspicion raised
/// while stale pre-crash messages are still in flight would be revoked on
/// their arrival and — with heartbeat timers pushed beyond the horizon —
/// never re-raised, losing the re-suspect transition a real timeout
/// provides. Firing only after the pipe drains models the detector's
/// eventual *completeness*: the final, permanent suspicion that follows
/// the last message from a crashed process. The gate is monotone (a
/// crashed process sends nothing, so a drained pipe stays drained), which
/// keeps it sound under sleep-set reduction for the same reason as the
/// epoch-gated crash in [`OarScenario::mid_epoch_rejoin`].
pub fn force_suspect_choice(
    at: ProcessId,
    target: ProcessId,
    only_when_down: bool,
) -> McChoice<Wire> {
    McChoice {
        id: format!("suspect({target})@{at}"),
        affects: Some(at),
        fault: false,
        enabled: Rc::new(move |world: &World<Wire>| {
            if world.is_crashed(at) {
                return false;
            }
            if !only_when_down {
                return true;
            }
            let down = world.is_crashed(target)
                || world
                    .process_ref::<OarServer<CounterMachine>>(target)
                    .is_recovering();
            down && !world.pending_events().iter().any(|e| {
                !e.noop
                    && matches!(e.info, PendingEventInfo::Deliver { from, .. } if from == target)
            })
        }),
        apply: Rc::new(move |world: &mut World<Wire>| {
            world.invoke_now(at, |proc, ctx| {
                if let Some(server) = proc
                    .as_any_mut()
                    .downcast_mut::<OarServer<CounterMachine>>()
                {
                    server.force_suspect(target, ctx);
                }
            });
        }),
    }
}

/// The safety invariant of every OAR scenario: the paper's propositions over
/// the alive, fully-caught-up replicas (a crashed replica holds no state; a
/// replica mid-catch-up deliberately holds blank state — same population
/// rule as [`Cluster::check_replica_consistency`]). `servers` may list
/// replicas that do not exist yet — a [`replace_choice`] spare is only
/// spawned when the choice fires, so ids at or beyond the world's process
/// count are skipped.
pub fn oar_invariant(
    servers: Vec<ProcessId>,
    clients: Vec<ProcessId>,
) -> impl Fn(&World<Wire>) -> Result<(), String> {
    move |world: &World<Wire>| {
        let alive: Vec<&OarServer<CounterMachine>> = servers
            .iter()
            .copied()
            .filter(|&s| s.index() < world.num_processes() && !world.is_crashed(s))
            .map(|s| world.process_ref::<OarServer<CounterMachine>>(s))
            .filter(|server| !server.is_recovering())
            .collect();
        check_server_consistency(&alive)?;
        let completed: Vec<&[CompletedRequest<i64>]> = clients
            .iter()
            .map(|&c| {
                world
                    .process_ref::<OarClient<CounterMachine>>(c)
                    .completed()
            })
            .collect();
        check_external_consistency(&alive, &completed)
    }
}

/// The termination goal of every OAR scenario: all clients finished their
/// workloads **and** the in-horizon event queue drained. Requiring the
/// drain makes terminal states directly comparable with a plain
/// [`World::run_until`] execution (differential tests) and keeps the
/// deadlock check honest — a state with work still in flight is neither
/// done nor stuck.
pub fn oar_goal(clients: Vec<ProcessId>, horizon: SimTime) -> impl Fn(&World<Wire>) -> bool {
    move |world: &World<Wire>| {
        clients
            .iter()
            .all(|&c| world.process_ref::<OarClient<CounterMachine>>(c).is_done())
            && world
                .pending_events()
                .into_iter()
                .all(|e| e.noop || e.time > horizon)
    }
}

/// A packaged model-checking scenario: a cluster shape, a workload, a fault
/// repertoire and exploration bounds. [`OarScenario::world`] and
/// [`OarScenario::checker`] rebuild identical instances on every call, so a
/// trace found by one run replays on a world built by the next.
pub struct OarScenario {
    /// Scenario name (report labelling).
    pub name: &'static str,
    /// The cluster deployment.
    pub cluster: ClusterConfig,
    /// Commands per client (distinct across clients).
    pub requests_per_client: usize,
    /// Number of spare replicas a [`replace_choice`] in `choices` may spawn
    /// beyond the initial deployment. Their ids follow the clients'
    /// (simnet assigns dense pids in spawn order); [`OarScenario::servers`]
    /// includes them so the invariant covers a replacement once it exists.
    pub spare_servers: usize,
    /// The fault/control choices available to the checker.
    pub choices: Vec<McChoice<Wire>>,
    /// Exploration bounds.
    pub mc: McConfig,
}

impl OarScenario {
    /// Failure-free scenario: 3 replicas, `num_clients` closed-loop clients
    /// with `requests_per_client` commands each, no fault choices. Every
    /// interleaving of the optimistic path must satisfy all four predicates
    /// and terminate.
    pub fn clean(num_clients: usize, requests_per_client: usize) -> Self {
        OarScenario {
            name: "clean",
            cluster: mc_cluster_config(3, num_clients, timer_free_oar(|b| b)),
            requests_per_client,
            spare_servers: 0,
            choices: Vec::new(),
            mc: McConfig {
                horizon: HORIZON,
                max_faults: 0,
                ..McConfig::default()
            },
        }
    }

    /// Sequencer-handoff scenario (the historical "suspected-sequencer
    /// phase-2 stall"): 3 replicas, 1 client, 2 requests. The checker may
    /// crash `s1` (the epoch-1 sequencer), let `s0`/`s2` justifiedly suspect
    /// it, and let `s2` *wrongly* suspect `s0` (the epoch-0 sequencer) —
    /// which starts phase 2 and hands epoch 1 to the dead, already-suspected
    /// `s1`. With `bug` the servers skip the Task 1c re-check at the
    /// handoff, the second request is never ordered, and the checker finds
    /// the stall as a deadlock; without it every path terminates.
    pub fn sequencer_handoff(bug: bool) -> Self {
        let oar = timer_free_oar(|b| if bug { b.bug_skip_handoff_recheck() } else { b });
        let s0 = ProcessId::new(0);
        let s1 = ProcessId::new(1);
        let s2 = ProcessId::new(2);
        OarScenario {
            name: if bug {
                "sequencer-handoff(bug)"
            } else {
                "sequencer-handoff"
            },
            cluster: mc_cluster_config(3, 1, oar),
            requests_per_client: 2,
            spare_servers: 0,
            choices: vec![
                crash_choice(s1),
                force_suspect_choice(s0, s1, true),
                force_suspect_choice(s2, s1, true),
                force_suspect_choice(s2, s0, false),
            ],
            mc: McConfig {
                horizon: HORIZON,
                max_faults: 1,
                ..McConfig::default()
            },
        }
    }

    /// Mid-epoch rejoin scenario (the historical Lemma-2 violation): 3
    /// replicas, 1 client, 4 requests, epochs cut every 2 optimistic
    /// deliveries — so a rejoin can land *between* two `OrderMsg` batches of
    /// one epoch. The checker may crash `s2` — gated on the group having
    /// entered epoch 1, the window where a rejoin lands mid-epoch (crashes
    /// in epoch 0 only exercise rejoin-at-epoch-start, which the freeze is
    /// not about) — restart it through catch-up, and let the survivors
    /// suspect it while it is down (unwedging the epoch-close consensus
    /// whose round coordinator it is). With `bug` the rejoiner skips the
    /// Lemma-2 freeze and Opt-delivers a mid-epoch suffix, violating prefix
    /// compatibility; without it every path stays safe.
    pub fn mid_epoch_rejoin(bug: bool) -> Self {
        let oar = timer_free_oar(|b| {
            let b = b.epoch_cut_after(2);
            if bug {
                b.bug_skip_opt_freeze()
            } else {
                b
            }
        });
        let s0 = ProcessId::new(0);
        let s1 = ProcessId::new(1);
        let s2 = ProcessId::new(2);
        OarScenario {
            name: if bug {
                "mid-epoch-rejoin(bug)"
            } else {
                "mid-epoch-rejoin"
            },
            cluster: mc_cluster_config(3, 1, oar),
            requests_per_client: 4,
            spare_servers: 0,
            choices: vec![
                {
                    let mut crash = crash_choice(s2);
                    let base = crash.enabled;
                    crash.id = "crash(p2)@epoch1".to_owned();
                    crash.enabled = Rc::new(move |world: &World<Wire>| {
                        base(world)
                            && world.process_ref::<OarServer<CounterMachine>>(s0).epoch() >= 1
                    });
                    crash
                },
                restart_choice(s2, 3, oar),
                force_suspect_choice(s0, s2, true),
                force_suspect_choice(s1, s2, true),
            ],
            mc: McConfig {
                horizon: HORIZON,
                max_faults: 1,
                ..McConfig::default()
            },
        }
    }

    /// Membership-change scenario (the tentpole's replica replacement,
    /// exhaustively): 3 replicas, 1 client, 2 requests. The checker may
    /// crash `s2` at any point and then **replace** it online: the
    /// [`replace_choice`] spawns a spare replica over the post-replacement
    /// roster and injects the `Replace` fence, which the survivors settle
    /// through the conservative order. The spare joins through the
    /// held-catch-up path — a donor that has not applied the fence holds the
    /// spare's `CatchUpRequest` and serves it when the fence applies — so
    /// the whole join is event-driven and the scenario stays timer-free.
    /// Justified-suspicion choices of the crashed `s2` exercise the
    /// fence-close consensus under failure detection. Every path must
    /// satisfy total order, at-most-once and external consistency (with the
    /// caught-up spare included in the checked population) and terminate:
    /// the fence must neither wedge the epoch close nor strand the spare.
    pub fn membership_change() -> Self {
        let oar = timer_free_oar(|b| b);
        let s0 = ProcessId::new(0);
        let s1 = ProcessId::new(1);
        let s2 = ProcessId::new(2);
        OarScenario {
            name: "membership-change",
            cluster: mc_cluster_config(3, 1, oar),
            requests_per_client: 2,
            spare_servers: 1,
            choices: vec![
                crash_choice(s2),
                replace_choice(2, 3, oar),
                force_suspect_choice(s0, s2, true),
                force_suspect_choice(s1, s2, true),
            ],
            mc: McConfig {
                horizon: HORIZON,
                max_faults: 1,
                ..McConfig::default()
            },
        }
    }

    /// The server process ids of this scenario: the initial deployment plus
    /// any [`replace_choice`] spares (spawned after the clients, so their
    /// ids follow the clients'; [`oar_invariant`] skips the not-yet-spawned).
    pub fn servers(&self) -> Vec<ProcessId> {
        let base = self.cluster.num_servers + self.cluster.num_clients;
        (0..self.cluster.num_servers)
            .map(ProcessId::new)
            .chain((base..base + self.spare_servers).map(ProcessId::new))
            .collect()
    }

    /// The client process ids of this scenario.
    pub fn clients(&self) -> Vec<ProcessId> {
        (self.cluster.num_servers..self.cluster.num_servers + self.cluster.num_clients)
            .map(ProcessId::new)
            .collect()
    }

    /// Builds the cluster instance. Deterministic: every call returns an
    /// identical deployment (same ids, same event numbering).
    pub fn build_cluster(&self) -> Cluster<CounterMachine> {
        let requests = self.requests_per_client;
        Cluster::build(&self.cluster, CounterMachine::default, |client| {
            (0..requests)
                .map(|i| CounterCommand::Add((100 * client + i + 1) as i64))
                .collect()
        })
    }

    /// Builds the world to explore.
    pub fn world(&self) -> World<Wire> {
        self.build_cluster().world
    }

    /// Builds the checker (invariant = safety propositions, goal =
    /// termination).
    pub fn checker(&self) -> Checker<Wire> {
        Checker::new(
            self.mc.clone(),
            self.choices.clone(),
            oar_invariant(self.servers(), self.clients()),
            oar_goal(self.clients(), self.mc.horizon),
            wire_digest,
        )
    }

    /// Explores the scenario.
    pub fn run(&self) -> Result<McReport, ForkError> {
        self.checker().run(self.world())
    }

    /// Same exploration with POR and/or deduplication switched.
    pub fn run_with(&self, por: bool, dedup: bool) -> Result<McReport, ForkError> {
        let mut scenario = OarScenario {
            name: self.name,
            cluster: self.cluster.clone(),
            requests_per_client: self.requests_per_client,
            spare_servers: self.spare_servers,
            choices: self.choices.clone(),
            mc: self.mc.clone(),
        };
        scenario.mc.por = por;
        scenario.mc.dedup = dedup;
        scenario.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{replay_trace, TraceStep};

    /// Tentpole gate: the failure-free configuration explores exhaustively
    /// (no truncation) and every path satisfies all four predicates — total
    /// order and at-most-once (server consistency), external consistency,
    /// and termination (every terminal state is a goal state). The debug
    /// profile runs the 1-request instance (~8k states); the release-mode
    /// smoke harness runs the 2-request instance (~500k states).
    #[test]
    fn clean_exploration_is_exhaustive_and_safe() {
        let report = OarScenario::clean(1, 1).run().expect("forkable");
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert!(!report.truncated, "exploration must finish: {report:?}");
        assert_eq!(report.deadlocks, 0);
        assert!(report.goal_states > 0);
        assert!(report.states_explored > 0);
    }

    /// Acceptance gate: partial-order reduction prunes at least half of the
    /// **raw** interleavings. The reduced arm runs sleep sets alone (no
    /// state deduplication, so the comparison isolates POR); the raw arm
    /// runs with no reduction at all, bounded at twice the reduced state
    /// count plus one — it must hit that bound, proving the raw space is
    /// more than twice the reduced one. (The actual margin is ~300×:
    /// release-mode measurement puts the raw 1-request space above 2·10⁷
    /// states against 69 485 reduced.)
    #[test]
    fn por_prunes_at_least_half_the_states() {
        let scenario = OarScenario::clean(1, 1);
        let reduced = scenario.run_with(true, false).expect("forkable");
        assert!(reduced.ok(), "violations: {:?}", reduced.violations);
        assert!(!reduced.truncated, "reduced run must finish: {reduced:?}");
        assert!(reduced.pruned_sleep > 0);

        let mut raw = OarScenario::clean(1, 1);
        raw.mc.max_states = 2 * reduced.states_explored + 1;
        let raw = raw.run_with(false, false).expect("forkable");
        assert!(raw.ok(), "violations: {:?}", raw.violations);
        assert!(
            raw.truncated,
            "raw exploration must exceed twice the reduced state count: \
             {} (por) vs {} (raw, not truncated)",
            reduced.states_explored, raw.states_explored
        );
    }

    /// Historical-bug gate #1: with the Task 1c handoff re-check disabled,
    /// the checker finds the suspected-sequencer stall as a deadlock and the
    /// counterexample trace replays on a plain world, reproducing the stall
    /// outside the checker.
    #[test]
    fn handoff_stall_is_refound_and_replays() {
        let scenario = OarScenario::sequencer_handoff(true);
        let report = scenario.run().expect("forkable");
        let violation = report.violations.first().expect("the stall must be found");
        assert_eq!(violation.kind, "deadlock", "{violation:?}");
        assert!(
            violation
                .trace
                .iter()
                .any(|s| matches!(s, TraceStep::Choice { id, .. } if id.starts_with("crash"))),
            "the stall needs the crash: {:?}",
            violation.trace
        );

        // Replay on a fresh, checker-free world: drive the exact trace, then
        // let the plain simulator run — the workload must still be stuck.
        let mut world = scenario.world();
        assert!(
            replay_trace(
                &mut world,
                scenario.choices.as_slice(),
                &violation.trace,
                HORIZON
            ),
            "the trace must replay on an identically-built world"
        );
        world.run_until(HORIZON);
        let done = scenario
            .clients()
            .iter()
            .all(|&c| world.process_ref::<OarClient<CounterMachine>>(c).is_done());
        assert!(!done, "replayed stall: the client must still be waiting");
        // And the stall is a liveness failure, not a safety one.
        oar_invariant(scenario.servers(), scenario.clients())(&world).expect("safety holds");
    }

    /// Historical-bug gate #1, control arm: with the fix in place the same
    /// fault repertoire finds nothing within a generous bound.
    #[test]
    fn handoff_with_fix_has_no_violations() {
        let mut scenario = OarScenario::sequencer_handoff(false);
        // Bounded sweep: the full fault-choice product is large in debug
        // builds; the release-mode smoke harness runs it exhaustively.
        scenario.mc.max_states = 40_000;
        let report = scenario.run().expect("forkable");
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.deadlocks, 0);
        assert!(report.goal_states > 0);
    }

    /// Historical-bug gate #2: with the Lemma-2 freeze disabled, a rejoin
    /// landing between two `OrderMsg` batches of one epoch produces
    /// divergent committed sequences, caught by the server-consistency
    /// invariant.
    #[test]
    fn mid_epoch_rejoin_divergence_is_refound() {
        let report = OarScenario::mid_epoch_rejoin(true).run().expect("forkable");
        let violation = report
            .violations
            .first()
            .expect("the divergence must be found");
        assert_eq!(violation.kind, "invariant", "{violation:?}");
        assert!(
            violation
                .trace
                .iter()
                .any(|s| matches!(s, TraceStep::Choice { id, .. } if id.starts_with("restart"))),
            "the divergence needs the rejoin: {:?}",
            violation.trace
        );
    }

    /// Historical-bug gate #2, control arm: with the freeze active the same
    /// fault repertoire finds nothing within a generous bound.
    #[test]
    fn mid_epoch_rejoin_with_freeze_has_no_violations() {
        let mut scenario = OarScenario::mid_epoch_rejoin(false);
        scenario.mc.max_states = 40_000;
        let report = scenario.run().expect("forkable");
        assert!(report.ok(), "violations: {:?}", report.violations);
    }

    /// Membership-change gate (directed path): on a plain, checker-free
    /// world, crash `s2` and fire the replace choice immediately — the
    /// fence settles conservatively, the spare joins through the
    /// held-catch-up path (no catch-up retry timer fires inside the
    /// horizon), the workload terminates, and the caught-up spare is part
    /// of the consistent population.
    #[test]
    fn replace_path_joins_the_spare_without_timers() {
        let scenario = OarScenario::membership_change();
        let mut world = scenario.world();
        world.start();
        (scenario.choices[0].apply)(&mut world); // crash(s2)
        (scenario.choices[1].apply)(&mut world); // replace(s2)
                                                 // The fence's epoch close aggregates an estimate from every
                                                 // unsuspected member (Cnsv-order), so the survivors must suspect
                                                 // the crashed s2 for the consensus to propose — the justified
                                                 // suspicions a real failure detector's timeout would raise.
        (scenario.choices[2].apply)(&mut world); // suspect(s2)@s0
        (scenario.choices[3].apply)(&mut world); // suspect(s2)@s1
        world.run_until(HORIZON);
        assert!(
            oar_goal(scenario.clients(), HORIZON)(&world),
            "the replaced group must finish the workload and drain"
        );
        let spare = ProcessId::new(4);
        assert!(
            !world
                .process_ref::<OarServer<CounterMachine>>(spare)
                .is_recovering(),
            "the spare must have caught up through the held-catch-up path"
        );
        assert_eq!(
            world
                .process_ref::<OarServer<CounterMachine>>(spare)
                .members(),
            vec![ProcessId::new(0), ProcessId::new(1), spare],
            "the spare must carry the post-replacement roster"
        );
        oar_invariant(scenario.servers(), scenario.clients())(&world).expect("safety holds");
    }

    /// Membership-change gate (exploration): every explored interleaving of
    /// crash placement, fence settlement, suspicion and catch-up satisfies
    /// the safety propositions and reaches termination — no deadlock on any
    /// path. The debug profile sweeps a bounded prefix of the space; the
    /// release-mode smoke harness runs the exhaustive instance.
    #[test]
    fn membership_change_paths_are_safe_and_terminate() {
        let mut scenario = OarScenario::membership_change();
        scenario.mc.max_states = 40_000;
        let report = scenario.run().expect("forkable");
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(report.deadlocks, 0);
        assert!(report.goal_states > 0);
    }

    /// Differential gate (stepwise): a plain timed execution only ever
    /// dispatches events the checker considers enabled — the normal
    /// scheduler's path is one of the checker's paths. Checked on the
    /// *random-latency* LAN profile across several seeds: timing noise
    /// permutes the schedule, membership must hold for all of them.
    #[test]
    fn plain_execution_follows_checker_enabled_events() {
        for seed in [1, 7, 42, 1234, 98765] {
            let mut config = mc_cluster_config(3, 1, OarConfig::default());
            config.net = NetConfig::lan();
            config.seed = seed;
            let mut cluster: Cluster<CounterMachine> =
                Cluster::build(&config, CounterMachine::default, |_| {
                    vec![
                        CounterCommand::Add(1),
                        CounterCommand::Add(2),
                        CounterCommand::Add(3),
                    ]
                });
            let world = &mut cluster.world;
            world.start();
            let mut steps = 0u64;
            while let Some(next) = world
                .pending_events()
                .into_iter()
                .min_by_key(|e| (e.time, e.seq))
            {
                if !next.noop {
                    let enabled = world.enabled_events(SimTime::MAX);
                    assert!(
                        enabled.iter().any(|e| e.seq == next.seq),
                        "seed {seed}: the scheduler's next event #{} ({:?}) \
                         is not checker-enabled",
                        next.seq,
                        next.info
                    );
                }
                assert!(world.step(), "queue cannot be empty here");
                steps += 1;
                assert!(steps < 200_000, "seed {seed}: runaway execution");
                let done = (3..4).all(|c| {
                    world
                        .process_ref::<OarClient<CounterMachine>>(ProcessId::new(c))
                        .is_done()
                });
                if done {
                    break;
                }
            }
        }
    }

    /// Differential gate (terminal state): on the checker-friendly
    /// configuration, a plain timed execution must land on a terminal state
    /// the exhaustive exploration visited — its fingerprint is a member of
    /// the checker's goal-state fingerprints.
    #[test]
    fn plain_execution_lands_on_a_checker_goal_state() {
        let scenario = OarScenario::clean(1, 1);
        let report = scenario.run().expect("forkable");
        assert!(report.ok() && !report.truncated);
        assert!(!report.goal_fingerprints.is_empty());

        let mut world = scenario.world();
        world.run_until(HORIZON);
        let fp = world
            .fingerprint(HORIZON, &wire_digest)
            .expect("all OAR processes provide digests");
        assert!(
            report.goal_fingerprints.contains(&fp),
            "the plain run's terminal state must be one the checker visited"
        );
    }
}
