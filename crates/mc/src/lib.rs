//! # oar-mc — bounded model checker for processes on the simulator
//!
//! The simulator ([`World`]) is deterministic: one `(configuration, seed)`
//! pair produces one schedule. This crate turns it into a *branching*
//! execution engine: at every state it asks the world for the set of
//! **enabled events** ([`World::enabled_events`] — pending deliveries and
//! timers whose dispatch order is not already forced by the FIFO system
//! model), adds the scenario's injected **choices** (crashes, wrong
//! suspicions, restarts — [`McChoice`]), and explores every alternative by
//! forking the world ([`World::fork`]) at each decision point.
//!
//! Exploration is bounded (event-time horizon, depth, state count) and
//! pruned two ways:
//!
//! * **state deduplication** — [`World::fingerprint`] hashes the global
//!   state (process digests + in-horizon pending-event content, times
//!   excluded); a state already visited with the same fired choices and
//!   fault budget is not re-expanded, provided the earlier visit's sleep
//!   set was a subset of the current one (the earlier visit explored at
//!   least as much — Godefroid's condition for combining sleep sets with
//!   state caching);
//! * **partial-order reduction** — sleep sets over an independence relation:
//!   two transitions are independent when they target different processes
//!   (a delivery to `p` and a delivery to `q` commute — each callback only
//!   touches its own process, and message emission is order-insensitive at
//!   the fingerprint level). After exploring transition `t` from a state,
//!   `t` enters the sleep set of its later siblings, and every child prunes
//!   sleeping transitions that are independent of the one just taken —
//!   cutting the factorial interleavings of commuting events to one
//!   representative per equivalence class.
//!
//! At every visited state the checker evaluates the scenario's **invariant**
//! (e.g. the OAR safety propositions, see [`oar`](mod@crate::oar)) and records a
//! [`Violation`] with the full [`TraceStep`] path when it fails; a state
//! with no enabled transitions that does not satisfy the **goal** predicate
//! is reported as a deadlock. Traces replay on a plain world with
//! [`replay_trace`] — event sequence numbers are deterministic, so a trace
//! recorded in one branch re-drives a fresh identical world to the same
//! state.
//!
//! ## Soundness boundary
//!
//! Key-directed dispatch treats time as *abstract* (`now` only ratchets
//! forward), and the fingerprint deliberately excludes event times and the
//! RNG state. The exploration is therefore exhaustive-and-sound only for
//! configurations whose behaviour never reads the clock or the RNG:
//! constant-latency, loss-free, FIFO networks and protocol settings whose
//! timers lie beyond the horizon. The [`oar`](mod@crate::oar) module builds
//! exactly such configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oar;

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use oar_simnet::{ForkError, PendingEvent, PendingEventInfo, ProcessId, SimTime, World};

/// Exploration strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Depth-first search with sleep-set partial-order reduction (when
    /// [`McConfig::por`] is on). Memory is O(depth); the default.
    #[default]
    Dfs,
    /// Breadth-first search (no sleep sets — POR is ignored). Finds a
    /// shortest-depth violation first; memory is O(frontier).
    Bfs,
}

/// Bounds and feature switches of one exploration.
#[derive(Clone, Debug)]
pub struct McConfig {
    /// Events scheduled after this time are outside the model: they are
    /// neither dispatched nor hashed. Protocol timers meant to stay out of
    /// the exploration (maintenance ticks, retry clocks) must lie beyond it.
    pub horizon: SimTime,
    /// Maximum transitions along one path; paths that reach it are counted
    /// in [`McReport::depth_limit_hits`] and abandoned.
    pub max_depth: usize,
    /// Maximum states to visit before the exploration is cut short
    /// ([`McReport::truncated`]).
    pub max_states: u64,
    /// Deduplicate visited states via [`World::fingerprint`].
    pub dedup: bool,
    /// Sleep-set partial-order reduction (DFS only).
    pub por: bool,
    /// Maximum number of `fault = true` choices fired along one path.
    pub max_faults: usize,
    /// Stop exploring after this many violations (1: first counterexample).
    pub max_violations: usize,
    /// Exploration strategy.
    pub strategy: Strategy,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            horizon: SimTime::from_secs(60),
            max_depth: 600,
            max_states: 1_000_000,
            dedup: true,
            por: true,
            max_faults: 0,
            max_violations: 1,
            strategy: Strategy::Dfs,
        }
    }
}

/// An injected scheduling choice: a fault or control action the checker may
/// fire at any decision point where `enabled` holds, at most once per path.
///
/// Choices must act *immediately* on the world ([`World::crash_now`],
/// [`World::restart_now`], [`World::invoke_now`], …) — scheduling a closure
/// event would make the world unforkable ([`ForkError::UnforkableEvent`]).
pub struct McChoice<M> {
    /// Human-readable identity, used in traces.
    pub id: String,
    /// The process this choice affects, for the independence relation.
    /// `None` makes it dependent with every other transition (global
    /// actions such as partitions).
    pub affects: Option<ProcessId>,
    /// Whether this choice consumes one unit of [`McConfig::max_faults`].
    pub fault: bool,
    /// Whether the choice may fire in the given state.
    pub enabled: McPredicate<M>,
    /// Fires the choice.
    pub apply: McAction<M>,
}

/// A shared read-only predicate over a world state (choice guards, goal
/// predicates).
pub type McPredicate<M> = Rc<dyn Fn(&World<M>) -> bool>;

/// A shared action mutating a world (the body of an [`McChoice`]).
pub type McAction<M> = Rc<dyn Fn(&mut World<M>)>;

/// A shared invariant over a world state: `Err(reason)` records a
/// violation with its trace.
pub type McInvariant<M> = Rc<dyn Fn(&World<M>) -> Result<(), String>>;

impl<M> Clone for McChoice<M> {
    fn clone(&self) -> Self {
        McChoice {
            id: self.id.clone(),
            affects: self.affects,
            fault: self.fault,
            enabled: Rc::clone(&self.enabled),
            apply: Rc::clone(&self.apply),
        }
    }
}

impl<M> std::fmt::Debug for McChoice<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("McChoice")
            .field("id", &self.id)
            .field("affects", &self.affects)
            .field("fault", &self.fault)
            .finish_non_exhaustive()
    }
}

/// One transition of a counterexample trace. Event sequence numbers are
/// deterministic (assigned in event-creation order, which replays
/// identically), so a trace re-drives a fresh identical world to the same
/// state — see [`replay_trace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceStep {
    /// Dispatch the pending event with this sequence number.
    Event {
        /// The [`PendingEvent::seq`] key ([`World::dispatch_key`]).
        seq: u64,
        /// Display label (`Deliver p0→p2`, `Timer@p1`, …).
        label: String,
    },
    /// Fire the scenario choice with this index.
    Choice {
        /// Index into the checker's choice list.
        index: usize,
        /// The choice's [`McChoice::id`].
        id: String,
    },
}

impl std::fmt::Display for TraceStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceStep::Event { seq, label } => write!(f, "event#{seq} {label}"),
            TraceStep::Choice { index, id } => write!(f, "choice#{index} {id}"),
        }
    }
}

/// A property failure found during exploration, with the path that reaches
/// it from the initial state.
#[derive(Clone, Debug)]
pub struct Violation {
    /// `"invariant"` or `"deadlock"`.
    pub kind: String,
    /// The invariant's error message, or a description of the deadlock.
    pub message: String,
    /// The transition path from the initial state to the violating state.
    pub trace: Vec<TraceStep>,
}

/// Counters and findings of one exploration.
#[derive(Clone, Debug, Default)]
pub struct McReport {
    /// Distinct states visited (after no-op draining).
    pub states_explored: u64,
    /// Transitions taken (forked branches).
    pub transitions: u64,
    /// Transitions skipped because they were in a sleep set (POR).
    pub pruned_sleep: u64,
    /// States skipped because an identical state was already visited.
    pub pruned_dedup: u64,
    /// Terminal states satisfying the goal predicate.
    pub goal_states: u64,
    /// Terminal states *not* satisfying the goal predicate (each is also a
    /// violation).
    pub deadlocks: u64,
    /// Paths abandoned at [`McConfig::max_depth`].
    pub depth_limit_hits: u64,
    /// Whether the exploration hit [`McConfig::max_states`] and stopped
    /// early.
    pub truncated: bool,
    /// The fingerprints of goal states (deduplicated), when fingerprinting
    /// is available — used by differential tests to check that a plain
    /// simulator run lands on a state the checker visited.
    pub goal_fingerprints: Vec<u64>,
    /// Property failures, each with its counterexample trace.
    pub violations: Vec<Violation>,
}

impl McReport {
    /// Total states pruned (sleep sets + deduplication).
    pub fn pruned(&self) -> u64 {
        self.pruned_sleep + self.pruned_dedup
    }

    /// Whether the exploration finished with no violation.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// What the checker may do next from a given state.
#[derive(Clone, Debug)]
enum Candidate {
    Event(PendingEvent),
    Choice(usize),
}

/// A transition remembered in a sleep set. Within one subtree the event
/// `seq` keys are stable (forks preserve them), so sleeping events are
/// matched by `seq`; the content `sig` makes sleep sets comparable across
/// branches when mixed into the deduplication key.
#[derive(Clone, Debug)]
struct SleepEntry {
    key: SleepKey,
    sig: u64,
    target: Option<ProcessId>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SleepKey {
    Event(u64),
    Choice(usize),
}

/// The bounded model checker: explores every schedule of a [`World`] within
/// the configured bounds, checking `invariant` at every state.
pub struct Checker<M> {
    /// Bounds and switches.
    pub config: McConfig,
    choices: Vec<McChoice<M>>,
    invariant: McInvariant<M>,
    goal: McPredicate<M>,
    msg_digest: Rc<dyn Fn(&M) -> u64>,
}

impl<M: Clone + 'static> Checker<M> {
    /// Creates a checker.
    ///
    /// * `invariant` is evaluated at every visited state; an `Err` is
    ///   recorded as a violation with its trace.
    /// * `goal` marks accepting terminal states (e.g. "every client finished
    ///   its workload"); a state with no transitions that is not a goal is a
    ///   deadlock.
    /// * `msg_digest` hashes a wire message's content (used by state
    ///   fingerprints and event signatures).
    pub fn new(
        config: McConfig,
        choices: Vec<McChoice<M>>,
        invariant: impl Fn(&World<M>) -> Result<(), String> + 'static,
        goal: impl Fn(&World<M>) -> bool + 'static,
        msg_digest: impl Fn(&M) -> u64 + 'static,
    ) -> Self {
        Checker {
            config,
            choices,
            invariant: Rc::new(invariant),
            goal: Rc::new(goal),
            msg_digest: Rc::new(msg_digest),
        }
    }

    /// The scenario's choices (for replaying traces).
    pub fn choices(&self) -> &[McChoice<M>] {
        &self.choices
    }

    /// Explores every schedule of `world` within the bounds.
    ///
    /// # Errors
    ///
    /// [`ForkError`] when a process does not implement [`oar_simnet::Process::fork`]
    /// or a pending scheduled closure makes the world uncopyable.
    pub fn run(&self, mut world: World<M>) -> Result<McReport, ForkError> {
        world.start();
        let mut report = McReport::default();
        let mut seen: HashMap<u64, Vec<Vec<u64>>> = HashMap::new();
        let mut trace: Vec<TraceStep> = Vec::new();
        match self.config.strategy {
            Strategy::Dfs => {
                self.explore_dfs(
                    world,
                    0,
                    0,
                    0,
                    Vec::new(),
                    &mut trace,
                    &mut seen,
                    &mut report,
                )?;
            }
            Strategy::Bfs => self.explore_bfs(world, &mut seen, &mut report)?,
        }
        report.goal_fingerprints.sort_unstable();
        report.goal_fingerprints.dedup();
        Ok(report)
    }

    /// Dispatches every in-horizon no-op event (delivery to a crashed or
    /// restarted destination, cancelled timer, …): they cannot affect any
    /// state, so they are drained without branching.
    fn drain_noops(&self, world: &mut World<M>) {
        loop {
            let noops: Vec<u64> = world
                .pending_events()
                .into_iter()
                .filter(|e| e.noop && e.time <= self.config.horizon)
                .map(|e| e.seq)
                .collect();
            if noops.is_empty() {
                return;
            }
            for seq in noops {
                world.dispatch_key(seq);
            }
        }
    }

    /// The transitions available in `world` given the fired-choice mask and
    /// the fault budget already spent.
    fn candidates(&self, world: &World<M>, fired: u64, faults: usize) -> Vec<Candidate> {
        // Choices first: DFS then dives into the fault branches early, which
        // finds fault-dependent counterexamples long before it exhausts the
        // fault-free interleavings.
        let mut out: Vec<Candidate> = Vec::new();
        for (i, choice) in self.choices.iter().enumerate() {
            if fired & (1 << i) != 0 {
                continue;
            }
            if choice.fault && faults >= self.config.max_faults {
                continue;
            }
            if (choice.enabled)(world) {
                out.push(Candidate::Choice(i));
            }
        }
        out.extend(
            world
                .enabled_events(self.config.horizon)
                .into_iter()
                .map(Candidate::Event),
        );
        out
    }

    /// The process a candidate transition targets (independence relation:
    /// two transitions commute iff both target a process and the targets
    /// differ).
    fn target(&self, candidate: &Candidate) -> Option<ProcessId> {
        match candidate {
            Candidate::Event(e) => match e.info {
                PendingEventInfo::Deliver { to, .. } => Some(to),
                PendingEventInfo::Timer { at, .. } => Some(at),
                PendingEventInfo::Crash { at }
                | PendingEventInfo::Restart { at }
                | PendingEventInfo::Call { at } => Some(at),
                PendingEventInfo::Partition | PendingEventInfo::Heal => None,
            },
            Candidate::Choice(i) => self.choices[*i].affects,
        }
    }

    fn independent(a: Option<ProcessId>, b: Option<ProcessId>) -> bool {
        matches!((a, b), (Some(p), Some(q)) if p != q)
    }

    /// The deduplication key of a state: world fingerprint + fired-choice
    /// mask + fault budget. `None` disables deduplication for this state
    /// (some process has no digest). The sleep set is *not* part of the
    /// key — see [`Checker::dedup_hit`] for how it is compared instead.
    fn dedup_key(&self, world: &World<M>, fired: u64, faults: usize) -> Option<u64> {
        let fp = world.fingerprint(self.config.horizon, &*self.msg_digest)?;
        let mut h = DefaultHasher::new();
        fp.hash(&mut h);
        fired.hash(&mut h);
        faults.hash(&mut h);
        Some(h.finish())
    }

    /// Sleep-set-aware dedup (Godefroid's state-caching condition): a
    /// revisit of a state may be pruned only when some earlier visit
    /// arrived with a **subset** sleep set — that visit slept less, so it
    /// explored a superset of the transitions this visit would explore.
    /// Hashing the sleep set into the key instead (exact-match dedup) is
    /// also sound but splits states that differ only in sleep sets; the
    /// subset rule dominates it. On a miss the visit's own sleep-sig set
    /// is recorded, and stored sets it dominates are dropped. With POR off
    /// every set is empty and this degenerates to plain fingerprint dedup.
    fn dedup_hit(seen: &mut HashMap<u64, Vec<Vec<u64>>>, key: u64, sleep: &[SleepEntry]) -> bool {
        let mut sigs: Vec<u64> = sleep.iter().map(|s| s.sig).collect();
        sigs.sort_unstable();
        sigs.dedup();
        let is_subset = |a: &[u64], b: &[u64]| a.iter().all(|x| b.binary_search(x).is_ok());
        let stored = seen.entry(key).or_default();
        if stored.iter().any(|s| is_subset(s, &sigs)) {
            return true;
        }
        stored.retain(|s| !is_subset(&sigs, s));
        stored.push(sigs);
        false
    }

    fn sleep_entry(&self, world: &World<M>, candidate: &Candidate) -> SleepEntry {
        match candidate {
            Candidate::Event(e) => SleepEntry {
                key: SleepKey::Event(e.seq),
                sig: world
                    .event_signature(e.seq, &*self.msg_digest)
                    .unwrap_or(e.seq),
                target: self.target(candidate),
            },
            Candidate::Choice(i) => {
                let mut h = DefaultHasher::new();
                0xC401u16.hash(&mut h);
                self.choices[*i].id.hash(&mut h);
                SleepEntry {
                    key: SleepKey::Choice(*i),
                    sig: h.finish(),
                    target: self.choices[*i].affects,
                }
            }
        }
    }

    fn trace_step(&self, candidate: &Candidate) -> TraceStep {
        match candidate {
            Candidate::Event(e) => TraceStep::Event {
                seq: e.seq,
                label: match e.info {
                    PendingEventInfo::Deliver { from, to } => format!("Deliver {from}→{to}"),
                    PendingEventInfo::Timer { at, tag } => format!("Timer@{at} {tag:?}"),
                    PendingEventInfo::Crash { at } => format!("Crash@{at}"),
                    PendingEventInfo::Restart { at } => format!("Restart@{at}"),
                    PendingEventInfo::Partition => "Partition".to_owned(),
                    PendingEventInfo::Heal => "Heal".to_owned(),
                    PendingEventInfo::Call { at } => format!("Call@{at}"),
                },
            },
            Candidate::Choice(i) => TraceStep::Choice {
                index: *i,
                id: self.choices[*i].id.clone(),
            },
        }
    }

    /// Applies one candidate to `world`, returning the updated
    /// (fired, faults) bookkeeping.
    fn apply(
        &self,
        world: &mut World<M>,
        candidate: &Candidate,
        fired: u64,
        faults: usize,
    ) -> (u64, usize) {
        match candidate {
            Candidate::Event(e) => {
                let dispatched = world.dispatch_key(e.seq);
                debug_assert!(dispatched, "enabled event must be dispatchable");
                (fired, faults)
            }
            Candidate::Choice(i) => {
                (self.choices[*i].apply)(world);
                (
                    fired | (1 << i),
                    faults + usize::from(self.choices[*i].fault),
                )
            }
        }
    }

    fn stop(&self, report: &McReport) -> bool {
        report.truncated || report.violations.len() >= self.config.max_violations
    }

    /// Visits one state: drains no-ops, counts it, deduplicates, checks the
    /// invariant and the goal. Returns the candidate list when the state
    /// must be expanded further, `None` when this path ends here.
    #[allow(clippy::too_many_arguments)]
    fn visit(
        &self,
        world: &mut World<M>,
        sleep: &[SleepEntry],
        fired: u64,
        faults: usize,
        trace: &[TraceStep],
        seen: &mut HashMap<u64, Vec<Vec<u64>>>,
        report: &mut McReport,
    ) -> Option<Vec<Candidate>> {
        self.drain_noops(world);
        if report.states_explored >= self.config.max_states {
            report.truncated = true;
            return None;
        }
        report.states_explored += 1;
        if self.config.dedup {
            if let Some(key) = self.dedup_key(world, fired, faults) {
                if Self::dedup_hit(seen, key, sleep) {
                    report.pruned_dedup += 1;
                    return None;
                }
            }
        }
        if let Err(message) = (self.invariant)(world) {
            report.violations.push(Violation {
                kind: "invariant".to_owned(),
                message,
                trace: trace.to_vec(),
            });
            return None;
        }
        if (self.goal)(world) {
            report.goal_states += 1;
            if let Some(fp) = world.fingerprint(self.config.horizon, &*self.msg_digest) {
                report.goal_fingerprints.push(fp);
            }
            return None;
        }
        let candidates = self.candidates(world, fired, faults);
        if candidates.is_empty() {
            report.deadlocks += 1;
            report.violations.push(Violation {
                kind: "deadlock".to_owned(),
                message: "no enabled transition and the goal does not hold \
                          (the system is stuck before completing the workload)"
                    .to_owned(),
                trace: trace.to_vec(),
            });
            return None;
        }
        Some(candidates)
    }

    #[allow(clippy::too_many_arguments)]
    fn explore_dfs(
        &self,
        mut world: World<M>,
        depth: usize,
        faults: usize,
        fired: u64,
        sleep: Vec<SleepEntry>,
        trace: &mut Vec<TraceStep>,
        seen: &mut HashMap<u64, Vec<Vec<u64>>>,
        report: &mut McReport,
    ) -> Result<(), ForkError> {
        let Some(candidates) = self.visit(&mut world, &sleep, fired, faults, trace, seen, report)
        else {
            return Ok(());
        };
        if depth >= self.config.max_depth {
            report.depth_limit_hits += 1;
            return Ok(());
        }
        let mut sleep = sleep;
        for candidate in candidates {
            if self.stop(report) {
                return Ok(());
            }
            if self.config.por {
                let key = match &candidate {
                    Candidate::Event(e) => SleepKey::Event(e.seq),
                    Candidate::Choice(i) => SleepKey::Choice(*i),
                };
                if sleep.iter().any(|s| s.key == key) {
                    report.pruned_sleep += 1;
                    continue;
                }
            }
            let mut child = world.fork()?;
            let taken_target = self.target(&candidate);
            let (child_fired, child_faults) = self.apply(&mut child, &candidate, fired, faults);
            report.transitions += 1;
            trace.push(self.trace_step(&candidate));
            let child_sleep: Vec<SleepEntry> = if self.config.por {
                // Sleeping transitions stay asleep only while independent of
                // the transition just taken (Godefroid's sleep sets).
                sleep
                    .iter()
                    .filter(|s| Self::independent(s.target, taken_target))
                    .cloned()
                    .collect()
            } else {
                Vec::new()
            };
            self.explore_dfs(
                child,
                depth + 1,
                child_faults,
                child_fired,
                child_sleep,
                trace,
                seen,
                report,
            )?;
            trace.pop();
            if self.config.por {
                sleep.push(self.sleep_entry(&world, &candidate));
            }
        }
        Ok(())
    }

    fn explore_bfs(
        &self,
        world: World<M>,
        seen: &mut HashMap<u64, Vec<Vec<u64>>>,
        report: &mut McReport,
    ) -> Result<(), ForkError> {
        struct Node<M> {
            world: World<M>,
            fired: u64,
            faults: usize,
            trace: Vec<TraceStep>,
        }
        let mut frontier = vec![Node {
            world,
            fired: 0,
            faults: 0,
            trace: Vec::new(),
        }];
        let mut depth = 0;
        while !frontier.is_empty() && !self.stop(report) {
            if depth >= self.config.max_depth {
                report.depth_limit_hits += frontier.len() as u64;
                break;
            }
            let mut next = Vec::new();
            for mut node in frontier {
                if self.stop(report) {
                    break;
                }
                let Some(candidates) = self.visit(
                    &mut node.world,
                    &[],
                    node.fired,
                    node.faults,
                    &node.trace,
                    seen,
                    report,
                ) else {
                    continue;
                };
                for candidate in candidates {
                    let mut child = node.world.fork()?;
                    let (fired, faults) =
                        self.apply(&mut child, &candidate, node.fired, node.faults);
                    report.transitions += 1;
                    let mut trace = node.trace.clone();
                    trace.push(self.trace_step(&candidate));
                    next.push(Node {
                        world: child,
                        fired,
                        faults,
                        trace,
                    });
                }
            }
            frontier = next;
            depth += 1;
        }
        Ok(())
    }
}

/// Re-drives a fresh world along a recorded trace: starts the processes,
/// drains no-ops exactly as the checker does, and applies every step
/// (key-directed event dispatch or scenario choice). Returns `false` if a
/// step does not apply — the world was not built identically to the one the
/// trace was recorded on.
///
/// The world is left *at* the final state of the trace; the caller typically
/// follows up with [`World::run_until_quiescent`] to demonstrate what the
/// system does from there (e.g. that a stall reproduces outside the
/// checker).
pub fn replay_trace<M: Clone + 'static>(
    world: &mut World<M>,
    choices: &[McChoice<M>],
    trace: &[TraceStep],
    horizon: SimTime,
) -> bool {
    world.start();
    drain_noops(world, horizon);
    for step in trace {
        let applied = match step {
            TraceStep::Event { seq, .. } => world.dispatch_key(*seq),
            TraceStep::Choice { index, .. } => match choices.get(*index) {
                Some(choice) => {
                    (choice.apply)(world);
                    true
                }
                None => false,
            },
        };
        if !applied {
            return false;
        }
        drain_noops(world, horizon);
    }
    true
}

/// Free-function twin of `Checker::drain_noops` for [`replay_trace`].
fn drain_noops<M: Clone + 'static>(world: &mut World<M>, horizon: SimTime) {
    loop {
        let noops: Vec<u64> = world
            .pending_events()
            .into_iter()
            .filter(|e| e.noop && e.time <= horizon)
            .map(|e| e.seq)
            .collect();
        if noops.is_empty() {
            return;
        }
        for seq in noops {
            world.dispatch_key(seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oar_simnet::{NetConfig, Process, Runtime, SimDuration};

    /// A process that counts greetings and replies once.
    #[derive(Clone)]
    struct Greeter {
        seen: Vec<(ProcessId, u8)>,
        replied: bool,
    }

    impl Process<u8> for Greeter {
        fn on_message(&mut self, rt: &mut dyn Runtime<u8>, from: ProcessId, msg: u8) {
            self.seen.push((from, msg));
            if !self.replied && msg < 10 {
                self.replied = true;
                rt.send(from, msg + 10);
            }
        }
        fn fork(&self) -> Option<Box<dyn Process<u8>>> {
            Some(Box::new(self.clone()))
        }
        fn state_digest(&self) -> Option<u64> {
            let mut h = DefaultHasher::new();
            self.replied.hash(&mut h);
            for (from, msg) in &self.seen {
                (from.index(), *msg).hash(&mut h);
            }
            Some(h.finish())
        }
    }

    fn two_greeters() -> World<u8> {
        let mut world: World<u8> =
            World::new(NetConfig::constant(SimDuration::from_micros(100)), 7);
        let a = world.add_process(Greeter {
            seen: Vec::new(),
            replied: false,
        });
        let b = world.add_process(Greeter {
            seen: Vec::new(),
            replied: false,
        });
        let c = world.add_process(Greeter {
            seen: Vec::new(),
            replied: false,
        });
        world.send_external(a, b, 1);
        world.send_external(a, c, 2);
        world
    }

    fn checker(config: McConfig) -> Checker<u8> {
        Checker::new(
            config,
            Vec::new(),
            |_| Ok(()),
            |world| world.is_quiescent(),
            |m| u64::from(*m),
        )
    }

    #[test]
    fn dfs_explores_all_interleavings_to_the_goal() {
        let report = checker(McConfig {
            por: false,
            dedup: false,
            ..McConfig::default()
        })
        .run(two_greeters())
        .expect("forkable");
        assert!(report.ok(), "{:?}", report.violations);
        // Two independent deliveries + two replies: more than one path, all
        // reaching quiescence.
        assert!(report.goal_states >= 2, "{report:?}");
        assert_eq!(report.deadlocks, 0);
    }

    #[test]
    fn por_prunes_commuting_interleavings() {
        let full = checker(McConfig {
            por: false,
            dedup: false,
            ..McConfig::default()
        })
        .run(two_greeters())
        .expect("forkable");
        let reduced = checker(McConfig {
            por: true,
            dedup: false,
            ..McConfig::default()
        })
        .run(two_greeters())
        .expect("forkable");
        assert!(reduced.ok());
        // The deliveries to b and c commute: POR must visit strictly fewer
        // states and prune at least one sibling.
        assert!(
            reduced.states_explored < full.states_explored,
            "reduced {} vs full {}",
            reduced.states_explored,
            full.states_explored
        );
        assert!(reduced.pruned_sleep > 0);
        // Every interleaving still reaches the same terminal states.
        assert_eq!(reduced.goal_fingerprints, full.goal_fingerprints);
    }

    #[test]
    fn dedup_collapses_converging_branches() {
        let plain = checker(McConfig {
            por: false,
            dedup: false,
            ..McConfig::default()
        })
        .run(two_greeters())
        .expect("forkable");
        let deduped = checker(McConfig {
            por: false,
            dedup: true,
            ..McConfig::default()
        })
        .run(two_greeters())
        .expect("forkable");
        assert!(deduped.pruned_dedup > 0, "{deduped:?}");
        assert!(deduped.states_explored < plain.states_explored);
    }

    #[test]
    fn bfs_agrees_with_dfs_on_goal_states() {
        let dfs = checker(McConfig::default()).run(two_greeters()).unwrap();
        let bfs = checker(McConfig {
            strategy: Strategy::Bfs,
            ..McConfig::default()
        })
        .run(two_greeters())
        .unwrap();
        assert!(dfs.ok() && bfs.ok());
        assert_eq!(dfs.goal_fingerprints, bfs.goal_fingerprints);
    }

    #[test]
    fn invariant_violations_carry_a_replayable_trace() {
        // "No process may ever have seen two messages" — violated at some
        // depth on every path.
        let check = Checker::new(
            McConfig {
                por: false,
                dedup: false,
                ..McConfig::default()
            },
            Vec::new(),
            |world: &World<u8>| {
                for p in world.process_ids() {
                    if world.process_ref::<Greeter>(p).seen.len() >= 2 {
                        return Err(format!("{p} saw two messages"));
                    }
                }
                Ok(())
            },
            |world| world.is_quiescent(),
            |m| u64::from(*m),
        );
        let report = check.run(two_greeters()).expect("forkable");
        assert_eq!(report.violations.len(), 1);
        let violation = &report.violations[0];
        assert_eq!(violation.kind, "invariant");
        assert!(!violation.trace.is_empty());

        // The trace replays on a fresh identical world and reproduces the
        // violating state.
        let mut world = two_greeters();
        assert!(replay_trace(
            &mut world,
            &[],
            &violation.trace,
            McConfig::default().horizon
        ));
        let over = world
            .process_ids()
            .iter()
            .any(|&p| world.process_ref::<Greeter>(p).seen.len() >= 2);
        assert!(over, "replay must reach the violating state");
    }

    #[test]
    fn choices_fire_at_most_once_and_respect_the_fault_budget() {
        let crash_b = McChoice {
            id: "crash(p1)".to_owned(),
            affects: Some(ProcessId::new(1)),
            fault: true,
            enabled: Rc::new(|world: &World<u8>| !world.is_crashed(ProcessId::new(1))),
            apply: Rc::new(|world: &mut World<u8>| world.crash_now(ProcessId::new(1))),
        };
        let no_faults = Checker::new(
            McConfig {
                max_faults: 0,
                ..McConfig::default()
            },
            vec![crash_b.clone()],
            |_| Ok(()),
            |world| world.is_quiescent(),
            |m| u64::from(*m),
        )
        .run(two_greeters())
        .unwrap();
        // Budget 0: the crash never fires, exploration is crash-free.
        assert!(no_faults.ok(), "{:?}", no_faults.violations);

        let with_fault = Checker::new(
            McConfig {
                max_faults: 1,
                max_violations: usize::MAX,
                ..McConfig::default()
            },
            vec![crash_b],
            |_| Ok(()),
            |world| world.is_quiescent(),
            |m| u64::from(*m),
        )
        .run(two_greeters())
        .unwrap();
        // The crash branch exists; crashing p1 makes its delivery a no-op,
        // so the run still quiesces — no deadlock, more states than before.
        assert!(with_fault.ok(), "{:?}", with_fault.violations);
        assert!(with_fault.states_explored > no_faults.states_explored);
    }

    #[test]
    fn deadlock_is_reported_when_the_goal_is_unreachable() {
        // Goal that never holds: quiescence is then a deadlock.
        let check = Checker::new(
            McConfig {
                max_violations: usize::MAX,
                ..McConfig::default()
            },
            Vec::new(),
            |_| Ok(()),
            |_| false,
            |m: &u8| u64::from(*m),
        );
        let report = check.run(two_greeters()).unwrap();
        assert!(report.deadlocks > 0);
        assert!(report
            .violations
            .iter()
            .all(|violation| violation.kind == "deadlock"));
    }
}
