//! Developer probe: re-find a scenario's first violation, replay its trace
//! step by step on a fresh world, and dump the servers' protocol state at
//! the end — the tool for understanding *why* a counterexample wedges.
//!
//! ```text
//! cargo run --release -p oar-mc --example mc_trace -- handoff
//! ```

use oar::state_machine::CounterMachine;
use oar::{OarClient, OarServer};
use oar_mc::oar::{OarScenario, HORIZON};
use oar_mc::replay_trace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("handoff");
    let scenario = match name {
        "clean" => OarScenario::clean(1, 2),
        "handoff" => OarScenario::sequencer_handoff(false),
        "handoff-bug" => OarScenario::sequencer_handoff(true),
        "rejoin" => OarScenario::mid_epoch_rejoin(false),
        "rejoin-bug" => OarScenario::mid_epoch_rejoin(true),
        other => {
            eprintln!("unknown scenario {other}");
            std::process::exit(2);
        }
    };
    let report = scenario.run().expect("forkable world");
    let Some(violation) = report.violations.first() else {
        println!("{}: no violation found", scenario.name);
        return;
    };
    println!(
        "{}: {} — {}",
        scenario.name, violation.kind, violation.message
    );
    for step in &violation.trace {
        println!("  {step}");
    }

    let mut world = scenario.world();
    assert!(
        replay_trace(&mut world, &scenario.choices, &violation.trace, HORIZON),
        "trace must replay"
    );
    println!("\n--- state after replay ---");
    for s in scenario.servers() {
        if world.is_crashed(s) {
            println!("{s}: CRASHED");
            continue;
        }
        let server = world.process_ref::<OarServer<CounterMachine>>(s);
        println!(
            "{s}: epoch={} phase={:?} recovering={} suspects={:?}",
            server.epoch(),
            server.phase(),
            server.is_recovering(),
            (0..3)
                .map(oar_simnet::ProcessId::new)
                .filter(|&p| server.is_suspecting(p))
                .collect::<Vec<_>>(),
        );
        println!("    consensus: {}", server.mc_consensus_debug());
    }
    for c in scenario.clients() {
        let client = world.process_ref::<OarClient<CounterMachine>>(c);
        println!(
            "{c}: done={} completed={}",
            client.is_done(),
            client.completed().len()
        );
    }
    println!("\n--- pending events ---");
    for e in world.pending_events() {
        println!("  #{} t={:?} noop={} {:?}", e.seq, e.time, e.noop, e.info);
    }
}
