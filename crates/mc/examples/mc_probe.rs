//! Developer probe: run one packaged OAR scenario and print its report.
//!
//! ```text
//! cargo run --release -p oar-mc --example mc_probe -- clean [CLIENTS [REQUESTS]] [--no-por] [--no-dedup] [--max-states N]
//! cargo run --release -p oar-mc --example mc_probe -- handoff-bug | handoff | rejoin-bug | rejoin
//! ```

use oar_mc::oar::OarScenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("clean");
    let mut scenario = match name {
        "clean" => {
            let clients: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
            let requests: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
            OarScenario::clean(clients, requests)
        }
        "handoff" => OarScenario::sequencer_handoff(false),
        "handoff-bug" => OarScenario::sequencer_handoff(true),
        "rejoin" => OarScenario::mid_epoch_rejoin(false),
        "rejoin-bug" => OarScenario::mid_epoch_rejoin(true),
        other => {
            eprintln!("unknown scenario {other}");
            std::process::exit(2);
        }
    };
    for (i, arg) in args.iter().enumerate() {
        match arg.as_str() {
            "--no-por" => scenario.mc.por = false,
            "--no-dedup" => scenario.mc.dedup = false,
            "--max-states" => {
                scenario.mc.max_states = args[i + 1].parse().expect("--max-states N");
            }
            _ => {}
        }
    }
    let start = std::time::Instant::now();
    let report = scenario.run().expect("forkable world");
    let elapsed = start.elapsed();
    println!(
        "{}: states={} transitions={} pruned_sleep={} pruned_dedup={} goals={} \
         deadlocks={} depth_hits={} truncated={} violations={} in {:.2?}",
        scenario.name,
        report.states_explored,
        report.transitions,
        report.pruned_sleep,
        report.pruned_dedup,
        report.goal_states,
        report.deadlocks,
        report.depth_limit_hits,
        report.truncated,
        report.violations.len(),
        elapsed
    );
    for violation in &report.violations {
        println!("  {}: {}", violation.kind, violation.message);
        for step in &violation.trace {
            println!("    {step}");
        }
    }
}
