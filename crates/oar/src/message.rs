//! Wire messages of the OAR protocol.
//!
//! All processes of a simulation exchange a single top-level message type,
//! [`OarWire`], which wraps the client/server application messages and the
//! messages of the embedded components (reliable multicast, failure detector,
//! consensus).

use std::collections::BTreeSet;
use std::fmt;

use oar_channels::{CastWire, MsgId};
use oar_consensus::ConsensusWire;
use oar_fd::FdWire;
use oar_sequence::Seq;
use oar_simnet::{GroupId, ProcessId};

use crate::shard::MigrationRecord;
use crate::state_machine::StateImage;

/// Identifier of a client request: the client process plus a per-client
/// sequence number (assigned by the reliable multicast layer).
pub type RequestId = MsgId;

/// Identifier of a multi-group transaction: the issuing client plus a
/// per-client transaction counter. Distinct from [`RequestId`] — one
/// transaction fans out into one prepare *request* per participating group,
/// each with its own request id, all stamped with the same `TxnId`.
pub type TxnId = MsgId;

/// The transaction envelope carried by a `TxnPrepare` request (the per-group
/// leg of a multi-group transaction — see [`crate::txn`]).
///
/// Each participating group orders its prepare through its own OAR total
/// order and applies its partition of the transaction atomically (one
/// command, one `apply`). The envelope makes the transaction visible at the
/// protocol layer: servers count prepares ([`crate::ServerStats`]), and the
/// participant list lets tests and tools check cross-group atomicity without
/// peeking into the application command. Single-group transactions take the
/// fast path and carry **no** envelope — their wire traffic is identical to
/// a plain sharded request, which the `txn-smoke` gate counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxnEnvelope {
    /// The transaction this prepare belongs to.
    pub txn: TxnId,
    /// Every group participating in the transaction (sorted, deduplicated).
    pub participants: Vec<GroupId>,
}

/// A membership or shard-ownership change, carried as a *fence command*
/// inside an ordinary [`Request`] and settled through the conservative order
/// — the same no-cross-group-agreement discipline as the transaction
/// prepares of [`crate::txn`]. The optimistic delivery path never interprets
/// it; its effects take hold exactly when the carrying request's epoch
/// closes, so every replica of a group reconfigures at the same point of the
/// total order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReconfigCmd {
    /// Replace group member `old` by `new` in place. `old` is fenced out of
    /// quorum, GC and sequencer-rotation accounting; `new` joins through the
    /// ordinary `CatchUp*` wires and restores the fault budget.
    Replace {
        /// The member being fenced out (typically crashed, not necessarily).
        old: ProcessId,
        /// The replacement replica.
        new: ProcessId,
    },
    /// Move a key range between groups. Ordered as a fence in **both** the
    /// donor and the recipient group; when the donor settles it, the settled
    /// state of the range is handed off to `to_members` and the routing
    /// epoch bumps, door-redirecting stale senders.
    Migrate {
        /// What moves where, and the routing epoch it establishes.
        record: MigrationRecord,
        /// The members of the recipient group (the donor needs addresses,
        /// not just the group id, to hand the range over).
        to_members: Vec<ProcessId>,
    },
}

/// A client request as carried by `R-multicast(m, Π)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Request<C> {
    /// Unique identifier of the request.
    pub id: RequestId,
    /// The client that issued the request (the paper's `sender(m)`).
    pub client: ProcessId,
    /// The replication group this request was routed to. Servers verify it
    /// against their own group id and count (then drop) mismatches as
    /// misroutes — in a sharded deployment a request reaching the wrong
    /// group would be ordered against the wrong key space. Single-group
    /// deployments use [`GroupId::default`] throughout.
    pub group: GroupId,
    /// `Some` when this request is the per-group prepare of a multi-group
    /// transaction; `None` for plain requests and single-group (fast-path)
    /// transactions.
    pub txn: Option<TxnEnvelope>,
    /// `Some` when this request is a reconfiguration fence; the command it
    /// carries is a benign no-op-grade carrier whose reply completes the
    /// admin's submission.
    pub reconfig: Option<ReconfigCmd>,
    /// The routing epoch of the sender's [`crate::shard::ShardRouter`] at
    /// send time. Servers door-drop requests stamped older than their own
    /// routing epoch and answer with [`OarWire::Redirect`] (counted in
    /// `ServerStats::redirected`). Always 0 in unsharded deployments.
    pub route_epoch: u64,
    /// The command to execute on the replicated service.
    pub command: C,
}

/// The weight of a reply: the set of servers known by the sender to deliver
/// the request at the same position (Fig. 5/6 of the paper). Optimistic replies
/// carry `{s}` or `{p, s}`; conservative replies carry the whole group `Π`.
pub type Weight = BTreeSet<ProcessId>;

/// How the replying server delivered the request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryKind {
    /// Delivered during phase 1 by the sequencer order (`Opt-deliver`).
    Optimistic,
    /// Delivered during phase 2 by the conservative order (`A-deliver`).
    Conservative,
}

/// A server's reply to one client request, as seen by the client after
/// unpacking a [`ReplyBatch`]. All fields shared by the batch (epoch, weight,
/// sender, delivery kind) are copied onto each unpacked reply, so the client's
/// weighted-quorum rule of Fig. 5 is unchanged by the batching.
#[derive(Clone, Debug, PartialEq)]
pub struct Reply<R> {
    /// The request being answered.
    pub request: RequestId,
    /// Epoch in which the request was processed.
    pub epoch: u64,
    /// The servers endorsing this reply.
    pub weight: Weight,
    /// Position of the request in the server's delivery order (the integer
    /// reply used throughout the paper's proofs).
    pub position: u64,
    /// The application-level response.
    pub response: R,
    /// The replying server.
    pub from: ProcessId,
    /// Whether the reply came from an optimistic or a conservative delivery.
    pub kind: DeliveryKind,
}

/// The per-request part of a [`ReplyBatch`].
#[derive(Clone, Debug, PartialEq)]
pub struct ReplyItem<R> {
    /// The request being answered.
    pub request: RequestId,
    /// Position of the request in the server's delivery order.
    pub position: u64,
    /// The application-level response.
    pub response: R,
}

/// A server's replies to one client, coalesced into a single wire message.
///
/// When an `OrderMsg` batch (or a `Cnsv-order` decision) delivers several
/// requests of the same client back to back, the per-request fields travel as
/// [`ReplyItem`]s while the fields that are identical across the batch —
/// epoch, weight, replying server, delivery kind — are carried **once**. One
/// allocation and one network event replace the per-request `Reply` wires.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplyBatch<R> {
    /// Epoch in which every request of the batch was processed.
    pub epoch: u64,
    /// The servers endorsing these replies (identical for the whole batch:
    /// `{p, s}` for optimistic deliveries, `Π` for conservative ones).
    pub weight: Weight,
    /// The replying server.
    pub from: ProcessId,
    /// Whether the batch came from optimistic or conservative deliveries.
    pub kind: DeliveryKind,
    /// Total number of requests (across *all* clients) the delivery batch
    /// that produced this wire carried. Clients feed it to their
    /// [`crate::adaptive::PipelineController`]: the group-wide batch size is
    /// the co-adaptation signal that lets a client grow its pipeline window
    /// while the servers are batching — its *own* item count cannot serve,
    /// since a closed-loop client only ever sees one of its requests per
    /// batch.
    pub batch_hint: u64,
    /// The per-request replies, in delivery order.
    pub items: Vec<ReplyItem<R>>,
}

impl<R: Clone> ReplyBatch<R> {
    /// Unpacks the batch into per-request [`Reply`] values (the form the
    /// client's quorum accounting works with).
    pub fn unpack(&self) -> impl Iterator<Item = Reply<R>> + '_ {
        self.items.iter().map(move |item| Reply {
            request: item.request,
            epoch: self.epoch,
            weight: self.weight.clone(),
            position: item.position,
            response: item.response.clone(),
            from: self.from,
            kind: self.kind,
        })
    }
}

/// The sequencer's ordering message (Task 1a, Fig. 6 line 10): the epoch and
/// the sequence of not-yet-delivered requests, identified by id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderMsg {
    /// Epoch of the ordering.
    pub epoch: u64,
    /// Request identifiers in delivery order.
    pub order: Seq<RequestId>,
    /// The sender's settled-epoch watermark (every epoch `< settled` is closed
    /// at the sender), piggybacked for the payload garbage collector.
    pub settled: u64,
}

/// The `(k, PhaseII)` notification R-broadcast by Task 1c.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseIIMsg {
    /// The epoch that must move to the conservative phase.
    pub epoch: u64,
    /// The *origin's* settled-epoch watermark, piggybacked for the payload
    /// garbage collector (relays forward it unchanged; it describes the
    /// process that R-broadcast the notification).
    pub settled: u64,
}

/// The value proposed to the `Cnsv-order` consensus by each server: its
/// sequences of optimistically delivered and received-but-not-delivered
/// requests for the epoch (the paper's `(O_delivered, O_notdelivered)` pair).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CnsvValue {
    /// Requests Opt-delivered by the proposer during the epoch.
    pub o_delivered: Seq<RequestId>,
    /// Requests received but not yet delivered by the proposer.
    pub o_notdelivered: Seq<RequestId>,
}

impl fmt::Display for CnsvValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{};{}}}", self.o_delivered, self.o_notdelivered)
    }
}

/// The top-level wire message exchanged by all processes of an OAR deployment.
#[derive(Clone, Debug, PartialEq)]
pub enum OarWire<C, R> {
    /// A client request travelling through the reliable multicast layer
    /// (initial send from the client or relay between servers).
    Request(CastWire<Request<C>>),
    /// A server's replies to one client, coalesced per delivery batch.
    Replies(ReplyBatch<R>),
    /// The sequencer's ordering message.
    Order(OrderMsg),
    /// A `(k, PhaseII)` notification travelling through the reliable broadcast
    /// layer.
    PhaseII(CastWire<PhaseIIMsg>),
    /// Failure-detector heartbeat, piggybacking the sender's settled-epoch
    /// watermark so the payload garbage collector converges even when no
    /// protocol traffic flows (e.g. after a partition heals).
    Fd {
        /// The failure-detector wire message.
        wire: FdWire,
        /// The sender's settled-epoch watermark.
        settled: u64,
    },
    /// A message of the `Cnsv-order` consensus (instance = epoch).
    Consensus(ConsensusWire<CnsvValue>),
    /// A standalone settled-epoch announcement, broadcast when a server closes
    /// an epoch so peers can promptly garbage-collect payloads decided at or
    /// before the acknowledged watermark.
    Watermark {
        /// The sender's settled-epoch watermark (every epoch `< settled` is
        /// closed at the sender).
        settled: u64,
    },
    /// A restarted replica asking a peer for the state needed to rejoin:
    /// the donor's latest snapshot plus the delta of settled commands since
    /// it (see [`CatchUpReply`]).
    CatchUpRequest {
        /// How many catch-up attempts the requester has made (0-based);
        /// carried so the donor's reply can be matched to the newest attempt
        /// and late replies of abandoned attempts are ignored.
        attempt: u64,
        /// The requester's roster. A donor that still rosters a member the
        /// requester does not (an as-yet-unfenced `Replace` victim) *holds*
        /// the request and serves it when the fence applies, instead of
        /// shipping an image the requester's install gate would reject.
        group: Vec<ProcessId>,
    },
    /// A donor's answer to a [`OarWire::CatchUpRequest`].
    CatchUpReply(Box<CatchUpReply<C>>),
    /// A rejoined replica asking a peer for request payloads it saw ordered
    /// (in an `OrderMsg` or a consensus decision) but whose `R-multicast`
    /// relay was lost while it was down. The multicast layer never re-sends
    /// — every live member already delivered — so without this wire a
    /// rejoiner could stall on a decision forever.
    PayloadFetch {
        /// The request ids whose payloads are missing.
        ids: Vec<RequestId>,
    },
    /// The payloads answering a [`OarWire::PayloadFetch`] (only the ids the
    /// donor still holds; the requester re-asks another peer for the rest).
    PayloadFill {
        /// The full requests, ready to feed the normal delivery path.
        requests: Vec<Request<C>>,
    },
    /// A server telling a client its routing is stale: the listed migrations
    /// have settled and the listed requests were **dropped** (door-dropped at
    /// reception, or pruned from the reception buffer by a migration fence).
    /// The client folds the records into its router
    /// ([`crate::shard::ShardRouter::apply_record`]) and re-sends exactly the
    /// dropped requests to their current owner group.
    Redirect {
        /// Every migration the sender has settled, oldest first.
        records: Vec<MigrationRecord>,
        /// The requests the sender dropped. Only these may be re-sent: an
        /// outstanding request the donor already *ordered* has its effect in
        /// the migrated hand-off (and its replies in flight), so re-sending
        /// it to the recipient would execute it a second time under the same
        /// id — at-most-once across groups holds only because re-sends are
        /// restricted to requests no group will ever order.
        dropped: Vec<RequestId>,
    },
    /// The donor side of an online range migration handing the settled state
    /// of the migrated range to a recipient-group member. Every live donor
    /// member sends one (idempotence comes from the deterministic install
    /// request the recipient derives — duplicate hand-offs dedup in the
    /// recipient's multicast layer).
    MigrateState {
        /// The migration being executed.
        record: MigrationRecord,
        /// The settled key/value pairs of the migrated range, in key order.
        entries: Vec<(String, String)>,
        /// The donor's digest over `entries`
        /// ([`crate::state_machine::StateMachine::range_digest`]), letting
        /// the recipient verify the hand-off end to end.
        digest: u64,
    },
    /// Tick-paced anti-entropy probe: the sender's Merkle root over its
    /// settled state at `settled` A-deliveries. A receiver at the same
    /// position with a different root answers with its root node
    /// ([`OarWire::SyncNodeReply`] for index 1), starting the O(log n)
    /// divergence descent.
    SyncProbe {
        /// Number of settled (A-delivered) commands the tree covers; trees
        /// at different positions are incomparable and the probe is ignored.
        settled: u64,
        /// The sender's Merkle root hash.
        root: u64,
        /// The sender's real (non-padding) leaf count. Heap indices are only
        /// comparable between trees whose leaf rows pad to the same width;
        /// when the padded widths differ the receiver skips the descent and
        /// falls back to a full key-set exchange ([`OarWire::SyncKeys`]).
        leaves: u64,
    },
    /// Request one Merkle node during the divergence descent.
    SyncNodeRequest {
        /// The tree position this descent is pinned to.
        settled: u64,
        /// Heap index of the requested node (1 = root).
        index: u64,
        /// The requester's leaf count (shape check, as in `SyncProbe`).
        leaves: u64,
    },
    /// One Merkle node of the responder's tree.
    SyncNodeReply {
        /// The tree position this descent is pinned to.
        settled: u64,
        /// Heap index of the node.
        index: u64,
        /// The node: child hashes, or the leaf's key and hash.
        node: crate::merkle::SyncNode,
        /// The responder's leaf count (shape check, as in `SyncProbe`).
        leaves: u64,
    },
    /// Fallback when two same-settled trees have **differently padded** leaf
    /// rows (a divergence added or removed a key across a power-of-two
    /// boundary): heap indices are incomparable, so instead of descending the
    /// sender ships its full key set. The receiver starts a leaf vote for
    /// every key of the union of the two sets — O(n) votes instead of
    /// O(log n), but only in this (rare) shape-divergent case, and each vote
    /// still settles by group majority.
    SyncKeys {
        /// The tree position this exchange is pinned to.
        settled: u64,
        /// The sender's full settled key set, in key order.
        keys: Vec<String>,
        /// `true` on the initiating half: the receiver answers with its own
        /// key set (with `reply_requested = false`, so the exchange is one
        /// bounded round trip, never a loop).
        reply_requested: bool,
    },
    /// A divergent leaf was localised: ask a peer for its value of `key` so
    /// the group can vote (the majority value among the members is
    /// authoritative — a corrupted minority heals, a healthy majority is
    /// never polluted by a corrupted prober).
    SyncLeafRequest {
        /// The key whose leaf hash diverged.
        key: String,
    },
    /// A peer's vote in a leaf repair election.
    SyncLeafReply {
        /// The key being voted on.
        key: String,
        /// The peer's settled value (`None` = absent).
        value: Option<String>,
    },
}

/// The state transfer a donor sends a rejoining replica: its latest snapshot
/// plus the delta of settled commands ordered since that snapshot — the
/// snapshot/replay split of Marandi & Pedone's recovery scheme. The rejoiner
/// installs the image, replays the delta, and verifies `digest` before
/// resuming participation.
#[derive(Clone, Debug, PartialEq)]
pub struct CatchUpReply<C> {
    /// Echo of the request's `attempt` counter.
    pub attempt: u64,
    /// The donor's latest state image (state after the first
    /// `snapshot_position` A-deliveries). `None` when the machine is not
    /// snapshottable — the delta then carries the full settled history.
    pub image: Option<StateImage>,
    /// Number of A-delivered commands captured inside `image` (the image's
    /// delivery position; 0 when `image` is `None`).
    pub snapshot_position: u64,
    /// State digest at the snapshot position, for install verification.
    pub snapshot_digest: u64,
    /// Chained order-hash over the first `snapshot_position` A-delivered
    /// request ids (see `OarServer`'s `a_base_hash`): lets two replicas
    /// compare compacted prefixes without retaining them.
    pub snapshot_order_hash: u64,
    /// The settled commands ordered after the snapshot, in delivery order,
    /// with payloads — the replay delta.
    pub delta: Vec<Request<C>>,
    /// The donor's current epoch (the rejoiner resumes at this epoch).
    pub epoch: u64,
    /// Whether the donor's current epoch is already in the conservative
    /// phase. The `(k, PhaseII)` broadcast is only reliable among processes
    /// that were live when it spread — a replica that was down while every
    /// member delivered it will never receive a copy, so the donor's phase
    /// travels explicitly and the rejoiner enters phase 2 on install.
    pub conservative: bool,
    /// The donor's settled-epoch watermark / GC floor, so the rejoiner's
    /// door-drop filters age exactly as far as the donor's.
    pub gc_floor: u64,
    /// Ids of every settled request the donor still tracks, so the rejoiner
    /// drops stale relays of settled requests at the door instead of
    /// re-relaying them (the PR 3 ping-pong class).
    pub settled: Vec<RequestId>,
    /// The donor's state digest after image + delta, which the rejoiner must
    /// reproduce exactly before resuming.
    pub digest: u64,
    /// The donor's *unsettled* payloads (`R_delivered ⊖ A_delivered`), in
    /// request-id order. Reliable multicast only re-sends among processes
    /// that were live when a request spread, so a request multicast while
    /// the rejoiner was down would otherwise never reach it — fatal once
    /// sequencer rotation makes the rejoiner responsible for ordering it.
    pub pending: Vec<Request<C>>,
    /// The donor's group membership at transfer time — a rejoiner that was
    /// down across a settled `Replace` fence must adopt the post-replacement
    /// roster or it would keep heartbeating (and counting quorums against)
    /// the fenced-out replica.
    pub group: Vec<ProcessId>,
    /// The donor's routing-boundary epoch, so a rejoiner that was down
    /// across a settled `Migrate` fence door-drops stale-epoch requests like
    /// everyone else.
    pub route_epoch: u64,
    /// The settled migration records backing `route_epoch` (what
    /// `migrated_away` consults).
    pub migrations: Vec<MigrationRecord>,
}

/// Majority threshold used by both the client quorum rule and the consensus:
/// `⌈(|Π|+1)/2⌉`.
pub fn majority(group_size: usize) -> usize {
    group_size / 2 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_matches_paper_formula() {
        // ⌈(n+1)/2⌉
        assert_eq!(majority(1), 1);
        assert_eq!(majority(2), 2);
        assert_eq!(majority(3), 2);
        assert_eq!(majority(4), 3);
        assert_eq!(majority(5), 3);
        assert_eq!(majority(6), 4);
        assert_eq!(majority(7), 4);
    }

    #[test]
    fn cnsv_value_display_uses_paper_notation() {
        let v = CnsvValue {
            o_delivered: Seq::from(vec![RequestId::new(ProcessId::new(9), 0)]),
            o_notdelivered: Seq::new(),
        };
        assert_eq!(format!("{v}"), "{{m9.0};{}}");
    }

    #[test]
    fn delivery_kind_equality() {
        assert_ne!(DeliveryKind::Optimistic, DeliveryKind::Conservative);
    }
}
