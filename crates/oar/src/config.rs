//! Configuration of the OAR servers and clients.

use oar_consensus::ConsensusConfig;
use oar_fd::FdConfig;
use oar_simnet::{GroupId, SimDuration};

/// Configuration shared by all servers of an OAR group.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OarConfig {
    /// Identity of the replication group these servers form. Single-group
    /// deployments (the paper's setting) keep the default `g0`; sharded
    /// deployments give each group its own id, which servers check against
    /// incoming requests to detect misroutes.
    pub group: GroupId,
    /// Failure-detector parameters (heartbeat interval, suspicion timeout).
    /// The timeout is the main knob of the fail-over experiments.
    pub fd: FdConfig,
    /// Parameters of the `Cnsv-order` consensus.
    pub consensus: ConsensusConfig,
    /// Period of the servers' maintenance timer, which drives heartbeats,
    /// suspicion checks and sequencer batching.
    pub tick_interval: SimDuration,
    /// When `true` (default) the sequencer orders new requests as soon as they
    /// are R-delivered (subject to [`OarConfig::max_batch`]); when `false` it
    /// only orders on its maintenance tick, which batches requests at the cost
    /// of latency (throughput ablation).
    pub eager_sequencing: bool,
    /// Sequencer batching knob (Task 1a). The sequencer accumulates unordered
    /// request ids and emits one `OrderMsg` carrying the whole batch as soon
    /// as the backlog reaches `max_batch`; a smaller backlog is flushed by the
    /// next maintenance tick. `1` (the default) reproduces the paper's
    /// unbatched behaviour — one ordering broadcast per request — while larger
    /// values amortise the reliable-multicast cost across the batch, trading
    /// up to one tick of latency for a large drop in ordering messages.
    pub max_batch: usize,
    /// §5.3 remark: if set, a sequencer that has Opt-delivered this many
    /// requests in the current epoch proactively R-broadcasts `PhaseII` so the
    /// epoch is cut and `O_delivered` garbage-collected.
    pub epoch_cut_after: Option<u64>,
}

impl Default for OarConfig {
    fn default() -> Self {
        OarConfig {
            group: GroupId::default(),
            fd: FdConfig::default(),
            consensus: ConsensusConfig::default(),
            tick_interval: SimDuration::from_millis(1),
            eager_sequencing: true,
            max_batch: 1,
            epoch_cut_after: None,
        }
    }
}

impl OarConfig {
    /// A configuration with the given failure-detector timeout (heartbeats at
    /// one fifth of it), everything else at defaults.
    pub fn with_fd_timeout(timeout: SimDuration) -> Self {
        OarConfig {
            fd: FdConfig::with_timeout(timeout),
            ..OarConfig::default()
        }
    }

    /// A configuration whose sequencer batches up to `max_batch` requests per
    /// `OrderMsg` (flushed early by the maintenance tick), everything else at
    /// defaults.
    pub fn with_batching(max_batch: usize) -> Self {
        OarConfig {
            max_batch: max_batch.max(1),
            ..OarConfig::default()
        }
    }

    /// The same configuration for replication group `group` (used by the
    /// sharded deployment layer, which stamps each group's servers with
    /// their group identity).
    pub fn for_group(self, group: GroupId) -> Self {
        OarConfig { group, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_group_overrides_only_the_group() {
        let cfg = OarConfig::with_batching(4).for_group(GroupId(3));
        assert_eq!(cfg.group, GroupId(3));
        assert_eq!(cfg.max_batch, 4);
    }

    #[test]
    fn default_is_eager_unbatched_and_uncut() {
        let cfg = OarConfig::default();
        assert_eq!(cfg.group, GroupId(0));
        assert!(cfg.eager_sequencing);
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.epoch_cut_after, None);
        assert!(cfg.consensus.require_majority_estimates);
    }

    #[test]
    fn with_batching_clamps_to_at_least_one() {
        assert_eq!(OarConfig::with_batching(8).max_batch, 8);
        assert_eq!(OarConfig::with_batching(0).max_batch, 1);
    }

    #[test]
    fn with_fd_timeout_sets_timeout() {
        let cfg = OarConfig::with_fd_timeout(SimDuration::from_millis(40));
        assert_eq!(cfg.fd.timeout, SimDuration::from_millis(40));
        assert_eq!(cfg.fd.heartbeat_interval, SimDuration::from_millis(8));
    }
}
