//! Configuration of the OAR servers and clients.

use oar_consensus::ConsensusConfig;
use oar_fd::FdConfig;
use oar_simnet::{GroupId, SimDuration};

use crate::adaptive::AdaptiveConfig;

/// Configuration shared by all servers of an OAR group.
///
/// Construct one with [`OarConfig::builder`] — the builder is the single
/// place that validates field combinations (batch sizes, adaptive-mode
/// conflicts). The historical constructors ([`OarConfig::with_batching`],
/// [`OarConfig::with_fd_timeout`], [`OarConfig::adaptive`]) are thin wrappers
/// over it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OarConfig {
    /// Identity of the replication group these servers form. Single-group
    /// deployments (the paper's setting) keep the default `g0`; sharded
    /// deployments give each group its own id, which servers check against
    /// incoming requests to detect misroutes.
    pub group: GroupId,
    /// Failure-detector parameters (heartbeat interval, suspicion timeout).
    /// The timeout is the main knob of the fail-over experiments.
    pub fd: FdConfig,
    /// Parameters of the `Cnsv-order` consensus.
    pub consensus: ConsensusConfig,
    /// Period of the servers' maintenance timer, which drives heartbeats,
    /// suspicion checks and sequencer batching.
    pub tick_interval: SimDuration,
    /// When `true` (default) the sequencer orders new requests as soon as they
    /// are R-delivered (subject to [`OarConfig::max_batch`]); when `false` it
    /// only orders on its maintenance tick, which batches requests at the cost
    /// of latency (throughput ablation).
    pub eager_sequencing: bool,
    /// Sequencer batching knob (Task 1a). The sequencer accumulates unordered
    /// request ids and emits one `OrderMsg` carrying the whole batch as soon
    /// as the backlog reaches `max_batch`; a smaller backlog is flushed by the
    /// flush deadline ([`OarConfig::flush_delay`]) or the next maintenance
    /// tick. `1` (the default) reproduces the paper's unbatched behaviour —
    /// one ordering broadcast per request — while larger values amortise the
    /// reliable-multicast cost across the batch. Ignored when
    /// [`OarConfig::adaptive`] is set: the controller then owns the
    /// threshold.
    pub max_batch: usize,
    /// Explicit flush deadline for partial sequencer batches: a backlog
    /// smaller than the batch threshold is ordered this long after its first
    /// unflushed arrival, bounding the worst-case added ordering latency
    /// independent of [`OarConfig::tick_interval`]. `None` (the default)
    /// preserves the historical behaviour of flushing on the next maintenance
    /// tick. Adaptive mode ignores this field and uses
    /// [`AdaptiveConfig::max_delay`]. Requires [`OarConfig::eager_sequencing`]
    /// (the builder rejects the combination with tick-only ordering, where
    /// the deadline would never arm).
    pub flush_delay: Option<SimDuration>,
    /// Adaptive batching mode: when set, a
    /// [`crate::adaptive::BatchController`] drives the sequencer's effective
    /// batch threshold from the observed arrival rate and backlog instead of
    /// the static [`OarConfig::max_batch`], and partial batches flush after
    /// [`AdaptiveConfig::max_delay`].
    pub adaptive: Option<AdaptiveConfig>,
    /// §5.3 remark: if set, a sequencer that has Opt-delivered this many
    /// requests in the current epoch proactively R-broadcasts `PhaseII` so the
    /// epoch is cut and `O_delivered` garbage-collected.
    pub epoch_cut_after: Option<u64>,
    /// Parallel apply: when `Some(workers)`, each delivery batch (optimistic
    /// drain or conservative decision) is handed to
    /// [`StateMachine::apply_batch`](crate::state_machine::StateMachine::apply_batch)
    /// with this worker count, so machines that override it — e.g. via
    /// [`crate::parallel::wave_apply`] — execute non-conflicting commands
    /// concurrently. Responses and state stay bit-identical to serial apply;
    /// only the replica's apply-stage wall-clock changes
    /// (`ServerStats::apply_ns`, `ServerStats::wave_sizes`). `None` (the
    /// default) keeps the serial per-command path.
    pub parallel_apply: Option<usize>,
    /// Snapshot/compaction period, in closed epochs: when `Some(k)`, every
    /// `k`-th epoch close takes a state snapshot (if the machine supports
    /// [`Snapshottable`](crate::state_machine::Snapshottable)) and compacts
    /// `A_delivered` and the settled-command log below the snapshot position.
    /// Epoch closes are deterministic group-wide (every replica closes each
    /// epoch with the identical decision), so all replicas snapshot at the
    /// same positions. `None` (the default) keeps the historical unbounded
    /// log.
    pub snapshot_every: Option<u64>,
    /// Base delay of a rejoining replica's catch-up retry timer: if the
    /// chosen donor has not answered a `CatchUpRequest` within this time, the
    /// rejoiner rotates to the next donor with exponential backoff (capped at
    /// 8× base). Also paces `PayloadFetch` retries after rejoin.
    pub catch_up_retry: SimDuration,
    /// Enables Merkle anti-entropy: each replica maintains a Merkle tree
    /// over its settled state ([`crate::merkle`]), tick-paces a root probe
    /// to a rotating peer, and repairs divergent keys by group-majority
    /// vote. Off by default — it requires a state machine exposing
    /// `anti_entropy_leaves`, and quiescent groups pay one probe wire per
    /// tick for it.
    pub anti_entropy: bool,
    /// **Test-only fault toggle** for the model checker: when `true`, servers
    /// skip the Task 1c re-check that runs when an epoch decision hands the
    /// new epoch to an already-suspected sequencer (and the matching
    /// maintenance-tick safety net). This reintroduces a historical bug — an
    /// epoch whose sequencer was suspected *before* the epoch started never
    /// enters phase 2 and the group stalls — so `oar-mc` can demonstrate that
    /// it re-finds the counterexample. Never enable outside checker tests.
    pub bug_skip_handoff_recheck: bool,
    /// **Test-only fault toggle** for the model checker: when `true`, a
    /// rejoining replica skips the Lemma-2 optimistic-delivery freeze for the
    /// epoch it caught up into, Opt-delivering mid-epoch orderings whose
    /// prefix it never observed. This reintroduces the historical mid-epoch
    /// rejoin divergence so `oar-mc` can demonstrate the violation. Never
    /// enable outside checker tests.
    pub bug_skip_opt_freeze: bool,
}

impl Default for OarConfig {
    fn default() -> Self {
        OarConfig {
            group: GroupId::default(),
            fd: FdConfig::default(),
            consensus: ConsensusConfig::default(),
            tick_interval: SimDuration::from_millis(1),
            eager_sequencing: true,
            max_batch: 1,
            flush_delay: None,
            adaptive: None,
            epoch_cut_after: None,
            parallel_apply: None,
            snapshot_every: None,
            catch_up_retry: SimDuration::from_millis(10),
            anti_entropy: false,
            bug_skip_handoff_recheck: false,
            bug_skip_opt_freeze: false,
        }
    }
}

impl OarConfig {
    /// Starts the fluent [`OarConfigBuilder`] at the defaults.
    pub fn builder() -> OarConfigBuilder {
        OarConfigBuilder::default()
    }

    /// A configuration with the given failure-detector timeout (heartbeats at
    /// one fifth of it), everything else at defaults.
    pub fn with_fd_timeout(timeout: SimDuration) -> Self {
        OarConfig::builder().fd_timeout(timeout).build()
    }

    /// A configuration whose sequencer batches up to `max_batch` requests per
    /// `OrderMsg` (flushed early by the maintenance tick), everything else at
    /// defaults. `0` is clamped to `1` for backwards compatibility; the
    /// [`OarConfigBuilder`] proper rejects it.
    pub fn with_batching(max_batch: usize) -> Self {
        OarConfig::builder().max_batch(max_batch.max(1)).build()
    }

    /// A configuration whose sequencer batch size and flush deadline are
    /// driven by the default [`AdaptiveConfig`] controller instead of a
    /// static `max_batch`.
    pub fn adaptive() -> Self {
        OarConfig::builder()
            .adaptive(AdaptiveConfig::default())
            .build()
    }

    /// The same configuration for replication group `group` (used by the
    /// sharded deployment layer, which stamps each group's servers with
    /// their group identity).
    pub fn for_group(self, group: GroupId) -> Self {
        OarConfig { group, ..self }
    }
}

/// Fluent builder for [`OarConfig`], consolidating the historical one-shot
/// constructors and validating field combinations in one place.
///
/// ```
/// use oar::OarConfig;
/// use oar_simnet::SimDuration;
///
/// let config = OarConfig::builder()
///     .max_batch(8)
///     .flush_delay(SimDuration::from_micros(300))
///     .fd_timeout(SimDuration::from_millis(25))
///     .build();
/// assert_eq!(config.max_batch, 8);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct OarConfigBuilder {
    group: Option<GroupId>,
    fd: Option<FdConfig>,
    consensus: Option<ConsensusConfig>,
    tick_interval: Option<SimDuration>,
    eager_sequencing: Option<bool>,
    max_batch: Option<usize>,
    flush_delay: Option<SimDuration>,
    adaptive: Option<AdaptiveConfig>,
    epoch_cut_after: Option<u64>,
    parallel_apply: Option<usize>,
    snapshot_every: Option<u64>,
    catch_up_retry: Option<SimDuration>,
    anti_entropy: bool,
    bug_skip_handoff_recheck: bool,
    bug_skip_opt_freeze: bool,
}

impl OarConfigBuilder {
    /// Sets the replication-group identity.
    pub fn group(mut self, group: GroupId) -> Self {
        self.group = Some(group);
        self
    }

    /// Sets the full failure-detector configuration.
    pub fn fd(mut self, fd: FdConfig) -> Self {
        self.fd = Some(fd);
        self
    }

    /// Sets the failure-detector timeout (heartbeats at one fifth of it).
    pub fn fd_timeout(mut self, timeout: SimDuration) -> Self {
        self.fd = Some(FdConfig::with_timeout(timeout));
        self
    }

    /// Sets the `Cnsv-order` consensus parameters.
    pub fn consensus(mut self, consensus: ConsensusConfig) -> Self {
        self.consensus = Some(consensus);
        self
    }

    /// Sets the maintenance-tick period.
    pub fn tick_interval(mut self, tick: SimDuration) -> Self {
        self.tick_interval = Some(tick);
        self
    }

    /// Enables or disables eager sequencing.
    pub fn eager_sequencing(mut self, eager: bool) -> Self {
        self.eager_sequencing = Some(eager);
        self
    }

    /// Sets the static sequencer batch threshold. Conflicts with
    /// [`OarConfigBuilder::adaptive`]; zero is rejected at build time.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = Some(max_batch);
        self
    }

    /// Sets the flush deadline for partial static batches.
    pub fn flush_delay(mut self, delay: SimDuration) -> Self {
        self.flush_delay = Some(delay);
        self
    }

    /// Enables adaptive batching under the given controller configuration.
    /// Conflicts with an explicit [`OarConfigBuilder::max_batch`].
    pub fn adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = Some(adaptive);
        self
    }

    /// Sets the §5.3 proactive epoch-cut threshold.
    pub fn epoch_cut_after(mut self, cut: u64) -> Self {
        self.epoch_cut_after = Some(cut);
        self
    }

    /// Enables periodic snapshots + log compaction every `every` closed
    /// epochs. Zero is rejected at build time.
    pub fn snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = Some(every);
        self
    }

    /// Sets the base delay of the catch-up retry/backoff timer used by
    /// rejoining replicas. Zero is rejected at build time.
    pub fn catch_up_retry(mut self, delay: SimDuration) -> Self {
        self.catch_up_retry = Some(delay);
        self
    }

    /// Enables Merkle anti-entropy ([`OarConfig::anti_entropy`]).
    pub fn anti_entropy(mut self) -> Self {
        self.anti_entropy = true;
        self
    }

    /// Reintroduces the historical suspected-sequencer hand-off stall
    /// ([`OarConfig::bug_skip_handoff_recheck`]). Test-only; used by the
    /// `oar-mc` checker to demonstrate counterexample discovery.
    pub fn bug_skip_handoff_recheck(mut self) -> Self {
        self.bug_skip_handoff_recheck = true;
        self
    }

    /// Reintroduces the historical mid-epoch rejoin divergence
    /// ([`OarConfig::bug_skip_opt_freeze`]). Test-only; used by the `oar-mc`
    /// checker to demonstrate counterexample discovery.
    pub fn bug_skip_opt_freeze(mut self) -> Self {
        self.bug_skip_opt_freeze = true;
        self
    }

    /// Enables parallel apply with the given worker count: delivery batches
    /// are partitioned into waves of pairwise non-conflicting commands
    /// ([`crate::parallel`]) and each wave is applied across `workers`
    /// threads. Zero is rejected at build time; `1` keeps the execution
    /// serial but exercises the scheduler (wave statistics included).
    pub fn with_parallel_apply(mut self, workers: usize) -> Self {
        self.parallel_apply = Some(workers);
        self
    }

    /// Validates the combination and produces the configuration.
    ///
    /// # Errors
    ///
    /// * `max_batch == 0` — a batch threshold of zero can never flush;
    /// * `adaptive` combined with an explicit `max_batch` — the controller
    ///   owns the threshold, a static value would be silently ignored;
    /// * `adaptive` with a zero batch cap or zero flush deadline;
    /// * `eager_sequencing(false)` combined with `flush_delay` or
    ///   `adaptive` — both flush paths hang off eager sequencing, so in
    ///   tick-only mode they would be silently ignored;
    /// * `with_parallel_apply(0)` — a pool of zero workers can never apply;
    /// * a zero `tick_interval` — the maintenance timer would spin.
    pub fn try_build(self) -> Result<OarConfig, String> {
        if let Some(0) = self.parallel_apply {
            return Err("with_parallel_apply needs at least 1 worker (0 can never apply)".into());
        }
        if let Some(0) = self.max_batch {
            return Err("max_batch must be at least 1 (0 can never flush)".into());
        }
        if let Some(0) = self.snapshot_every {
            return Err("snapshot_every must be at least 1 epoch (0 would snapshot \
                 before any epoch ever closes)"
                .into());
        }
        if let Some(delay) = self.catch_up_retry {
            if delay.is_zero() {
                return Err("catch_up_retry must be non-zero (a zero timer would spin \
                     the donor rotation)"
                    .into());
            }
        }
        if let Some(adaptive) = self.adaptive {
            if self.max_batch.is_some() {
                return Err("adaptive batching conflicts with an explicit max_batch: \
                     the controller owns the batch threshold"
                    .into());
            }
            if adaptive.max_batch_cap == 0 {
                return Err("adaptive max_batch_cap must be at least 1".into());
            }
            if adaptive.max_delay.is_zero() {
                return Err("adaptive max_delay must be non-zero".into());
            }
        }
        if self.eager_sequencing == Some(false) {
            // The tick-only ablation orders exclusively on the maintenance
            // timer; a flush deadline or an adaptive controller would never
            // arm, and accepting them would break their latency promises
            // silently.
            if self.flush_delay.is_some() {
                return Err("flush_delay requires eager sequencing: in tick-only mode \
                     partial batches flush on the tick, never on a deadline"
                    .into());
            }
            if self.adaptive.is_some() {
                return Err(
                    "adaptive batching requires eager sequencing: the controller \
                     drives the eager flush threshold"
                        .into(),
                );
            }
        }
        if let Some(tick) = self.tick_interval {
            if tick.is_zero() {
                return Err("tick_interval must be non-zero".into());
            }
        }
        let defaults = OarConfig::default();
        Ok(OarConfig {
            group: self.group.unwrap_or(defaults.group),
            fd: self.fd.unwrap_or(defaults.fd),
            consensus: self.consensus.unwrap_or(defaults.consensus),
            tick_interval: self.tick_interval.unwrap_or(defaults.tick_interval),
            eager_sequencing: self.eager_sequencing.unwrap_or(defaults.eager_sequencing),
            max_batch: self.max_batch.unwrap_or(defaults.max_batch),
            flush_delay: self.flush_delay,
            adaptive: self.adaptive,
            epoch_cut_after: self.epoch_cut_after,
            parallel_apply: self.parallel_apply,
            snapshot_every: self.snapshot_every,
            catch_up_retry: self.catch_up_retry.unwrap_or(defaults.catch_up_retry),
            anti_entropy: self.anti_entropy,
            bug_skip_handoff_recheck: self.bug_skip_handoff_recheck,
            bug_skip_opt_freeze: self.bug_skip_opt_freeze,
        })
    }

    /// Like [`OarConfigBuilder::try_build`], panicking on an invalid
    /// combination.
    ///
    /// # Panics
    ///
    /// Panics with the validation message on any combination
    /// [`OarConfigBuilder::try_build`] rejects.
    pub fn build(self) -> OarConfig {
        match self.try_build() {
            Ok(config) => config,
            Err(e) => panic!("invalid OarConfig: {e}"),
        }
    }
}

/// How a client limits the number of outstanding requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineMode {
    /// A fixed window of `depth` outstanding requests. `Fixed(1)` is the
    /// closed-loop client of Fig. 5.
    Fixed(usize),
    /// A [`crate::adaptive::PipelineController`]-driven window of up to `cap`
    /// outstanding requests: it starts closed-loop and co-adapts with the
    /// servers' delivery-batch hints.
    Adaptive(usize),
}

impl Default for PipelineMode {
    fn default() -> Self {
        PipelineMode::Fixed(1)
    }
}

/// Configuration shared by every client flavour ([`crate::OarClient`],
/// [`crate::sharded::ShardedClient`], [`crate::txn::TxnClient`]).
///
/// Construct one with [`ClientConfig::builder`], the single place where the
/// client knobs are validated — the per-flavour `with_*` constructor zoo this
/// replaces is gone.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClientConfig {
    /// Delay between the adoption of a reply and the next request (the
    /// paper's think time). [`SimDuration::ZERO`] — the default — refills the
    /// pipeline immediately.
    pub think_time: SimDuration,
    /// Delay before the very first request, used to stagger clients.
    pub start_delay: SimDuration,
    /// The outstanding-request window policy.
    pub pipeline: PipelineMode,
    /// The replication group targeted by a single-group client, stamped on
    /// every request so servers can detect misroutes. Ignored by the sharded
    /// and transactional clients, which route per key. Defaults to `g0`.
    pub group: GroupId,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            think_time: SimDuration::ZERO,
            start_delay: SimDuration::ZERO,
            pipeline: PipelineMode::default(),
            group: GroupId::default(),
        }
    }
}

impl ClientConfig {
    /// Starts the fluent [`ClientConfigBuilder`] at the defaults.
    pub fn builder() -> ClientConfigBuilder {
        ClientConfigBuilder::default()
    }

    /// The initial pipeline window implied by [`ClientConfig::pipeline`]
    /// (adaptive windows start closed-loop).
    pub fn initial_window(&self) -> usize {
        match self.pipeline {
            PipelineMode::Fixed(depth) => depth,
            PipelineMode::Adaptive(_) => 1,
        }
    }
}

/// Fluent builder for [`ClientConfig`], mirroring [`OarConfigBuilder`].
///
/// ```
/// use oar::ClientConfig;
/// use oar_simnet::SimDuration;
///
/// let config = ClientConfig::builder()
///     .think_time(SimDuration::from_micros(50))
///     .pipeline(4)
///     .build();
/// assert_eq!(config.initial_window(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientConfigBuilder {
    think_time: Option<SimDuration>,
    start_delay: Option<SimDuration>,
    pipeline: Option<PipelineMode>,
    pipeline_conflict: bool,
    group: Option<GroupId>,
}

impl ClientConfigBuilder {
    /// Sets the think time between the adoption of a reply and the next
    /// request.
    pub fn think_time(mut self, think: SimDuration) -> Self {
        self.think_time = Some(think);
        self
    }

    /// Delays the first request by `delay` (used to stagger clients).
    pub fn start_delay(mut self, delay: SimDuration) -> Self {
        self.start_delay = Some(delay);
        self
    }

    /// Allows up to `depth` outstanding requests. Conflicts with
    /// [`ClientConfigBuilder::adaptive_pipeline`]; zero is rejected at build
    /// time.
    pub fn pipeline(mut self, depth: usize) -> Self {
        self.pipeline_conflict |= matches!(self.pipeline, Some(PipelineMode::Adaptive(_)));
        self.pipeline = Some(PipelineMode::Fixed(depth));
        self
    }

    /// Adapts the outstanding-request window to the servers' reported
    /// delivery-batch sizes, up to `cap` outstanding requests. Conflicts
    /// with an explicit [`ClientConfigBuilder::pipeline`]; a zero cap is
    /// rejected at build time.
    pub fn adaptive_pipeline(mut self, cap: usize) -> Self {
        self.pipeline_conflict |= matches!(self.pipeline, Some(PipelineMode::Fixed(_)));
        self.pipeline = Some(PipelineMode::Adaptive(cap));
        self
    }

    /// Targets the replication group `group` (single-group clients only).
    pub fn group(mut self, group: GroupId) -> Self {
        self.group = Some(group);
        self
    }

    /// Validates the combination and produces the configuration.
    ///
    /// # Errors
    ///
    /// * `pipeline(0)` — a window of zero can never submit;
    /// * `adaptive_pipeline(0)` — likewise for the adaptive cap;
    /// * `pipeline` combined with `adaptive_pipeline` — the controller owns
    ///   the window, a static depth would be silently ignored.
    pub fn try_build(self) -> Result<ClientConfig, String> {
        if self.pipeline_conflict {
            return Err("pipeline conflicts with adaptive_pipeline: the controller \
                 owns the window, a static depth would be silently ignored"
                .into());
        }
        match self.pipeline {
            Some(PipelineMode::Fixed(0)) => {
                return Err("pipeline depth must be at least 1 (0 can never submit)".into());
            }
            Some(PipelineMode::Adaptive(0)) => {
                return Err("adaptive_pipeline cap must be at least 1 (0 can never submit)".into());
            }
            _ => {}
        }
        let defaults = ClientConfig::default();
        Ok(ClientConfig {
            think_time: self.think_time.unwrap_or(defaults.think_time),
            start_delay: self.start_delay.unwrap_or(defaults.start_delay),
            pipeline: self.pipeline.unwrap_or(defaults.pipeline),
            group: self.group.unwrap_or(defaults.group),
        })
    }

    /// Like [`ClientConfigBuilder::try_build`], panicking on an invalid
    /// combination.
    ///
    /// # Panics
    ///
    /// Panics with the validation message on any combination
    /// [`ClientConfigBuilder::try_build`] rejects.
    pub fn build(self) -> ClientConfig {
        match self.try_build() {
            Ok(config) => config,
            Err(e) => panic!("invalid ClientConfig: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_group_overrides_only_the_group() {
        let cfg = OarConfig::with_batching(4).for_group(GroupId::new(3));
        assert_eq!(cfg.group, GroupId::new(3));
        assert_eq!(cfg.max_batch, 4);
    }

    #[test]
    fn default_is_eager_unbatched_and_uncut() {
        let cfg = OarConfig::default();
        assert_eq!(cfg.group, GroupId::new(0));
        assert!(cfg.eager_sequencing);
        assert_eq!(cfg.max_batch, 1);
        assert_eq!(cfg.flush_delay, None);
        assert_eq!(cfg.adaptive, None);
        assert_eq!(cfg.epoch_cut_after, None);
        assert_eq!(cfg.parallel_apply, None);
        assert!(cfg.consensus.require_majority_estimates);
    }

    #[test]
    fn with_batching_clamps_to_at_least_one() {
        assert_eq!(OarConfig::with_batching(8).max_batch, 8);
        assert_eq!(OarConfig::with_batching(0).max_batch, 1);
    }

    #[test]
    fn with_fd_timeout_sets_timeout() {
        let cfg = OarConfig::with_fd_timeout(SimDuration::from_millis(40));
        assert_eq!(cfg.fd.timeout, SimDuration::from_millis(40));
        assert_eq!(cfg.fd.heartbeat_interval, SimDuration::from_millis(8));
    }

    #[test]
    fn builder_composes_fields() {
        let cfg = OarConfig::builder()
            .group(GroupId::new(2))
            .max_batch(16)
            .flush_delay(SimDuration::from_micros(250))
            .tick_interval(SimDuration::from_millis(2))
            .epoch_cut_after(100)
            .build();
        assert_eq!(cfg.group, GroupId::new(2));
        assert_eq!(cfg.max_batch, 16);
        assert_eq!(cfg.flush_delay, Some(SimDuration::from_micros(250)));
        assert_eq!(cfg.tick_interval, SimDuration::from_millis(2));
        assert!(cfg.eager_sequencing);
        assert_eq!(cfg.epoch_cut_after, Some(100));
        let tick_only = OarConfig::builder().eager_sequencing(false).build();
        assert!(!tick_only.eager_sequencing);
    }

    #[test]
    fn builder_accepts_and_validates_parallel_apply() {
        let cfg = OarConfig::builder().with_parallel_apply(4).build();
        assert_eq!(cfg.parallel_apply, Some(4));
        let err = OarConfig::builder()
            .with_parallel_apply(0)
            .try_build()
            .unwrap_err();
        assert!(err.contains("parallel_apply"), "unexpected error: {err}");
    }

    #[test]
    fn builder_rejects_zero_max_batch() {
        let err = OarConfig::builder().max_batch(0).try_build().unwrap_err();
        assert!(err.contains("max_batch"), "unexpected error: {err}");
    }

    #[test]
    fn builder_accepts_and_validates_snapshot_and_catch_up_knobs() {
        let cfg = OarConfig::builder()
            .snapshot_every(4)
            .catch_up_retry(SimDuration::from_millis(5))
            .build();
        assert_eq!(cfg.snapshot_every, Some(4));
        assert_eq!(cfg.catch_up_retry, SimDuration::from_millis(5));
        let err = OarConfig::builder()
            .snapshot_every(0)
            .try_build()
            .unwrap_err();
        assert!(err.contains("snapshot_every"), "unexpected error: {err}");
        let err = OarConfig::builder()
            .catch_up_retry(SimDuration::ZERO)
            .try_build()
            .unwrap_err();
        assert!(err.contains("catch_up_retry"), "unexpected error: {err}");
    }

    #[test]
    fn builder_rejects_adaptive_with_explicit_batch() {
        let err = OarConfig::builder()
            .max_batch(8)
            .adaptive(AdaptiveConfig::default())
            .try_build()
            .unwrap_err();
        assert!(err.contains("adaptive"), "unexpected error: {err}");
    }

    #[test]
    fn builder_rejects_degenerate_adaptive_configs() {
        let zero_cap = AdaptiveConfig {
            max_batch_cap: 0,
            ..AdaptiveConfig::default()
        };
        assert!(OarConfig::builder().adaptive(zero_cap).try_build().is_err());
        let zero_delay = AdaptiveConfig {
            max_delay: SimDuration::ZERO,
            ..AdaptiveConfig::default()
        };
        assert!(OarConfig::builder()
            .adaptive(zero_delay)
            .try_build()
            .is_err());
        assert!(OarConfig::builder()
            .tick_interval(SimDuration::ZERO)
            .try_build()
            .is_err());
    }

    #[test]
    fn builder_rejects_flush_paths_in_tick_only_mode() {
        // Both flush paths hang off eager sequencing; in the tick-only
        // ablation they would be silently ignored, so the builder refuses.
        let err = OarConfig::builder()
            .eager_sequencing(false)
            .flush_delay(SimDuration::from_micros(300))
            .try_build()
            .unwrap_err();
        assert!(err.contains("eager"), "unexpected error: {err}");
        let err = OarConfig::builder()
            .eager_sequencing(false)
            .adaptive(AdaptiveConfig::default())
            .try_build()
            .unwrap_err();
        assert!(err.contains("eager"), "unexpected error: {err}");
        // Tick-only mode by itself (the throughput ablation) stays legal.
        assert!(OarConfig::builder()
            .eager_sequencing(false)
            .max_batch(8)
            .try_build()
            .is_ok());
    }

    #[test]
    fn client_builder_composes_fields() {
        let cfg = ClientConfig::builder()
            .think_time(SimDuration::from_micros(40))
            .start_delay(SimDuration::from_micros(7))
            .pipeline(8)
            .group(GroupId::new(2))
            .build();
        assert_eq!(cfg.think_time, SimDuration::from_micros(40));
        assert_eq!(cfg.start_delay, SimDuration::from_micros(7));
        assert_eq!(cfg.pipeline, PipelineMode::Fixed(8));
        assert_eq!(cfg.initial_window(), 8);
        assert_eq!(cfg.group, GroupId::new(2));
    }

    #[test]
    fn client_default_is_closed_loop() {
        let cfg = ClientConfig::default();
        assert_eq!(cfg.pipeline, PipelineMode::Fixed(1));
        assert_eq!(cfg.initial_window(), 1);
        assert!(cfg.think_time.is_zero());
        assert!(cfg.start_delay.is_zero());
        assert_eq!(cfg.group, GroupId::default());
    }

    #[test]
    fn client_adaptive_window_starts_closed_loop() {
        let cfg = ClientConfig::builder().adaptive_pipeline(16).build();
        assert_eq!(cfg.pipeline, PipelineMode::Adaptive(16));
        assert_eq!(cfg.initial_window(), 1);
    }

    #[test]
    fn client_builder_rejects_degenerate_windows() {
        let err = ClientConfig::builder().pipeline(0).try_build().unwrap_err();
        assert!(err.contains("pipeline depth"), "unexpected error: {err}");
        let err = ClientConfig::builder()
            .adaptive_pipeline(0)
            .try_build()
            .unwrap_err();
        assert!(err.contains("cap"), "unexpected error: {err}");
    }

    #[test]
    fn client_builder_rejects_mixed_pipeline_modes() {
        let err = ClientConfig::builder()
            .pipeline(4)
            .adaptive_pipeline(16)
            .try_build()
            .unwrap_err();
        assert!(err.contains("conflicts"), "unexpected error: {err}");
        let err = ClientConfig::builder()
            .adaptive_pipeline(16)
            .pipeline(4)
            .try_build()
            .unwrap_err();
        assert!(err.contains("conflicts"), "unexpected error: {err}");
    }

    #[test]
    #[should_panic(expected = "invalid ClientConfig")]
    fn client_build_panics_on_zero_depth() {
        let _ = ClientConfig::builder().pipeline(0).build();
    }

    #[test]
    #[should_panic(expected = "invalid OarConfig")]
    fn build_panics_on_conflict() {
        let _ = OarConfig::builder()
            .adaptive(AdaptiveConfig::default())
            .max_batch(4)
            .build();
    }

    #[test]
    fn adaptive_mode_keeps_unbatched_static_fields() {
        let cfg = OarConfig::adaptive();
        assert!(cfg.adaptive.is_some());
        assert_eq!(cfg.max_batch, 1);
        let a = cfg.adaptive.unwrap();
        assert_eq!(a.max_batch_cap, 64);
        assert!(!a.max_delay.is_zero());
    }

    #[test]
    fn legacy_constructors_agree_with_the_builder() {
        assert_eq!(
            OarConfig::with_batching(8),
            OarConfig::builder().max_batch(8).build()
        );
        assert_eq!(
            OarConfig::with_fd_timeout(SimDuration::from_millis(40)),
            OarConfig::builder()
                .fd_timeout(SimDuration::from_millis(40))
                .build()
        );
    }
}
