//! The OAR server (Fig. 6 of the paper).
//!
//! Each server is a single [`Process`] that composes:
//!
//! * a [`ReliableCaster`] receiving (and relaying) client requests — Task 0;
//! * the sequencer logic — Task 1a (ordering) and Task 1b (Opt-delivery);
//! * a [`HeartbeatFd`] whose suspicion of the sequencer triggers Task 1c;
//! * a second [`ReliableCaster`] for the `(k, PhaseII)` broadcast;
//! * one [`MajConsensus`] instance per epoch implementing the reduction of
//!   `Cnsv-order` to consensus — Task 2;
//! * the replicated [`StateMachine`] with its undo stack, so that
//!   `Opt-undeliver` can roll back optimistic deliveries in reverse order.
//!
//! The server progresses through epochs; the sequencer of epoch `k` is
//! `Π[k mod |Π|]` (the rotating-coordinator rule of §5.3).
//!
//! # Hot-path data structures
//!
//! The per-request work of the optimistic phase is O(1) amortised:
//!
//! * `O_delivered` and `A_delivered` are indexed [`Seq`]s, so the membership
//!   tests of Tasks 1a/1b (`delivered_already`) cost O(1) instead of a scan;
//! * the not-yet-deliverable suffix of the sequencer order is a `VecDeque`
//!   plus a membership `HashSet`, so draining it is O(1) per request;
//! * the sequencer keeps a cursor into `R_delivered` (`order_cursor`) marking
//!   the prefix it has already examined, so Task 1a only scans *new* requests
//!   instead of the whole reception buffer on every invocation;
//! * epoch close appends to `A_delivered` in place rather than rebuilding it.
//!
//! # Sequencer batching
//!
//! Task 1a accumulates unordered requests and emits a single `OrderMsg`
//! carrying the whole batch once the backlog reaches
//! [`OarConfig::max_batch`] (the maintenance tick flushes smaller leftovers).
//! With `max_batch = 1` — the default — every request is ordered immediately,
//! exactly like the paper's Fig. 6; larger values amortise the ordering
//! broadcast over many requests, which is what makes the ordering layer keep
//! up at high client counts (`ServerStats::order_messages_sent` drops well
//! below the request count).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use oar_channels::{Delivery, ReliableCaster};
use oar_consensus::{ConsensusWire, Decision, MajConsensus};
use oar_fd::{FdEvent, HeartbeatFd};
use oar_sequence::Seq;
use oar_simnet::{Context, Process, ProcessId, Timer};

use crate::cnsv_order::cnsv_order_outcome;
use crate::config::OarConfig;
use crate::message::{
    CnsvValue, DeliveryKind, OarWire, OrderMsg, PhaseIIMsg, Reply, Request, RequestId, Weight,
};
use crate::state_machine::StateMachine;

/// Timer tag of the periodic maintenance tick.
const TICK: u64 = 1;

/// Which phase of the current epoch the server is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Phase 1: the sequencer orders messages optimistically.
    Optimistic,
    /// Phase 2: the group runs `Cnsv-order` (consensus) to close the epoch.
    Conservative,
}

/// One entry of the server's delivery log, used by tests and experiments to
/// check the paper's propositions (total order, at-most-once, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeliveryRecord {
    /// `Opt-deliver(m)` at the given global position.
    OptDeliver {
        /// Epoch of the delivery.
        epoch: u64,
        /// The request.
        request: RequestId,
        /// 1-based position in the server's delivery order.
        position: u64,
    },
    /// `Opt-undeliver(m)`.
    OptUndeliver {
        /// Epoch of the undelivery.
        epoch: u64,
        /// The request.
        request: RequestId,
    },
    /// `A-deliver(m)` at the given global position.
    ADeliver {
        /// Epoch of the delivery.
        epoch: u64,
        /// The request.
        request: RequestId,
        /// 1-based position in the server's delivery order.
        position: u64,
    },
}

/// Counters maintained by each server, used by the experiment harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests delivered optimistically (phase 1).
    pub opt_delivered: u64,
    /// Optimistic deliveries that were undone.
    pub opt_undelivered: u64,
    /// Requests delivered conservatively (phase 2).
    pub a_delivered: u64,
    /// Number of times the server entered phase 2.
    pub phase2_entered: u64,
    /// Number of epochs completed (phase 2 finished).
    pub epochs_completed: u64,
    /// Ordering messages sent while acting as the sequencer.
    pub order_messages_sent: u64,
}

/// The OAR server process, generic over the replicated [`StateMachine`].
#[derive(Debug)]
pub struct OarServer<S: StateMachine> {
    id: ProcessId,
    group: Vec<ProcessId>,
    config: OarConfig,

    // --- protocol state (Fig. 6, Initialization) ---
    epoch: u64,
    phase: Phase,
    /// Reception order of client requests (the paper's `R_delivered`).
    r_delivered: Seq<RequestId>,
    /// Requests delivered in previous epochs (the paper's `A_delivered`).
    a_delivered: Seq<RequestId>,
    /// Requests Opt-delivered in the current epoch (the paper's `O_delivered`).
    o_delivered: Seq<RequestId>,
    /// Fast membership test for `a_delivered` plus kept optimistic deliveries.
    settled: HashSet<RequestId>,
    /// Request payloads, keyed by id.
    payloads: HashMap<RequestId, Request<S::Command>>,
    /// Undo tokens of the current epoch's optimistic deliveries (LIFO).
    undo_stack: Vec<(RequestId, S::Undo)>,
    /// Number of requests delivered and not undone (the proofs' reply counter).
    position: u64,
    /// Ordered requests not yet Opt-delivered because their payload has not
    /// arrived yet (delivery must follow the sequencer order).
    order_queue: VecDeque<RequestId>,
    /// Fast membership test for `order_queue`.
    order_queued: HashSet<RequestId>,
    /// Sequencer cursor into `r_delivered`: every request before this
    /// position has already been examined by Task 1a this epoch (it is
    /// delivered, settled, or in `order_queue`), so Task 1a only scans the
    /// suffix of new arrivals.
    order_cursor: usize,
    /// True once Task 1c fired (or a PhaseII was delivered) for this epoch.
    phase2_started: bool,

    // --- components ---
    request_cast: ReliableCaster<Request<S::Command>>,
    phase2_cast: ReliableCaster<PhaseIIMsg>,
    fd: HeartbeatFd,
    consensus: Option<MajConsensus<CnsvValue>>,

    // --- buffers for out-of-epoch messages ---
    future_orders: BTreeMap<u64, Vec<Seq<RequestId>>>,
    future_phase2: BTreeSet<u64>,
    buffered_consensus: BTreeMap<u64, Vec<(ProcessId, ConsensusWire<CnsvValue>)>>,
    /// A consensus decision whose requests are not all locally known yet.
    pending_decision: Option<Decision<CnsvValue>>,

    // --- application ---
    sm: S,

    // --- observability ---
    log: Vec<DeliveryRecord>,
    stats: ServerStats,
}

impl<S: StateMachine> OarServer<S> {
    /// Creates the server with identity `id`, replica group `group` (which must
    /// contain `id`) and initial service state `sm`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a member of `group`.
    pub fn new(id: ProcessId, group: Vec<ProcessId>, config: OarConfig, sm: S) -> Self {
        assert!(group.contains(&id), "server must belong to its group");
        OarServer {
            id,
            request_cast: ReliableCaster::new(id, group.clone()),
            phase2_cast: ReliableCaster::new(id, group.clone()),
            fd: HeartbeatFd::new(id, group.clone(), config.fd),
            consensus: None,
            group,
            config,
            epoch: 0,
            phase: Phase::Optimistic,
            r_delivered: Seq::new(),
            a_delivered: Seq::new(),
            o_delivered: Seq::new(),
            settled: HashSet::new(),
            payloads: HashMap::new(),
            undo_stack: Vec::new(),
            position: 0,
            order_queue: VecDeque::new(),
            order_queued: HashSet::new(),
            order_cursor: 0,
            phase2_started: false,
            future_orders: BTreeMap::new(),
            future_phase2: BTreeSet::new(),
            buffered_consensus: BTreeMap::new(),
            pending_decision: None,
            sm,
            log: Vec::new(),
            stats: ServerStats::default(),
        }
    }

    /// The server's process identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The sequencer of epoch `k`: `Π[k mod |Π|]`.
    pub fn sequencer_of(&self, epoch: u64) -> ProcessId {
        self.group[(epoch as usize) % self.group.len()]
    }

    /// The sequencer of the current epoch.
    pub fn current_sequencer(&self) -> ProcessId {
        self.sequencer_of(self.epoch)
    }

    /// Whether this server is the sequencer of the current epoch.
    pub fn is_sequencer(&self) -> bool {
        self.current_sequencer() == self.id
    }

    /// The replicated state machine (read access, for tests and examples).
    pub fn state_machine(&self) -> &S {
        &self.sm
    }

    /// The delivery log (Opt-deliver / Opt-undeliver / A-deliver events).
    pub fn delivery_log(&self) -> &[DeliveryRecord] {
        &self.log
    }

    /// Protocol counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// The sequence of requests this server has delivered and not undone, in
    /// delivery order: `A_delivered ⊕ (O_delivered of the current epoch)`.
    pub fn committed_sequence(&self) -> Seq<RequestId> {
        self.a_delivered.concat(&self.o_delivered)
    }

    /// The requests delivered in closed epochs only (never undoable).
    pub fn stable_sequence(&self) -> &Seq<RequestId> {
        &self.a_delivered
    }

    /// Forces this server to suspect the current sequencer (wrong-suspicion
    /// injection used by the experiments on Opt-undeliver frequency).
    pub fn force_suspect_sequencer(
        &mut self,
        ctx: &mut Context<'_, OarWire<S::Command, S::Response>>,
    ) {
        let sequencer = self.current_sequencer();
        if sequencer != self.id {
            self.fd.force_suspect(sequencer);
        }
        self.maybe_start_phase2(ctx);
    }

    // ------------------------------------------------------------------
    // helpers
    // ------------------------------------------------------------------

    /// O(1): both `settled` and the indexed `o_delivered` are hash probes.
    fn delivered_already(&self, id: &RequestId) -> bool {
        self.settled.contains(id) || self.o_delivered.contains(id)
    }

    /// Number of received requests Task 1a has not examined yet.
    fn order_backlog(&self) -> usize {
        self.r_delivered.len() - self.order_cursor
    }

    fn annotate(&self, ctx: &mut Context<'_, OarWire<S::Command, S::Response>>, text: String) {
        ctx.annotate(text);
    }

    /// Task 0 (Fig. 6 lines 6–7): buffer an incoming client request.
    fn handle_request_delivery(
        &mut self,
        ctx: &mut Context<'_, OarWire<S::Command, S::Response>>,
        delivery: Delivery<Request<S::Command>>,
    ) {
        let request = delivery.payload;
        let id = request.id;
        if self.payloads.contains_key(&id) {
            return;
        }
        self.payloads.insert(id, request);
        self.r_delivered.push(id);
        // New payloads may unblock a buffered sequencer order or a pending
        // consensus decision.
        self.drain_order_queue(ctx);
        self.try_apply_pending_decision(ctx);
        // Task 1a: with eager sequencing, the sequencer flushes as soon as the
        // accumulated backlog fills a batch; smaller backlogs wait for the
        // maintenance tick (with `max_batch == 1` this orders every request
        // immediately, the paper's unbatched behaviour).
        if self.config.eager_sequencing && self.order_backlog() >= self.config.max_batch.max(1) {
            self.maybe_order(ctx);
        }
    }

    /// Task 1a (Fig. 6 lines 8–10): the sequencer orders unordered requests.
    ///
    /// Only the suffix of `R_delivered` behind `order_cursor` is scanned:
    /// everything before the cursor was examined by an earlier invocation this
    /// epoch and is delivered, settled or queued. The whole batch travels in
    /// one `OrderMsg` broadcast.
    fn maybe_order(&mut self, ctx: &mut Context<'_, OarWire<S::Command, S::Response>>) {
        if self.phase != Phase::Optimistic || !self.is_sequencer() {
            return;
        }
        if self.order_cursor >= self.r_delivered.len() {
            return;
        }
        let mut batch: Seq<RequestId> = Seq::with_capacity(self.order_backlog());
        for id in &self.r_delivered.as_slice()[self.order_cursor..] {
            if !self.delivered_already(id) && !self.order_queued.contains(id) {
                batch.push(*id);
            }
        }
        self.order_cursor = self.r_delivered.len();
        if batch.is_empty() {
            return;
        }
        self.stats.order_messages_sent += 1;
        let msg = OrderMsg {
            epoch: self.epoch,
            order: batch.clone(),
        };
        let peers: Vec<ProcessId> = self
            .group
            .iter()
            .copied()
            .filter(|&p| p != self.id)
            .collect();
        // One allocation of the wire message shared across all recipients.
        ctx.send_all(&peers, OarWire::Order(msg));
        // "The sequencer immediately delivers this message" (§5.3).
        self.accept_order(ctx, batch);
    }

    /// Task 1b (Fig. 6 lines 11–19): accept an ordering for the current epoch.
    fn accept_order(
        &mut self,
        ctx: &mut Context<'_, OarWire<S::Command, S::Response>>,
        order: Seq<RequestId>,
    ) {
        for id in order.iter() {
            if !self.delivered_already(id) && self.order_queued.insert(*id) {
                self.order_queue.push_back(*id);
            }
        }
        self.drain_order_queue(ctx);
    }

    /// Opt-delivers ordered requests whose payload is available, preserving the
    /// sequencer order. O(1) per drained request.
    fn drain_order_queue(&mut self, ctx: &mut Context<'_, OarWire<S::Command, S::Response>>) {
        if self.phase != Phase::Optimistic {
            return;
        }
        while let Some(&next) = self.order_queue.front() {
            if self.delivered_already(&next) {
                self.order_queue.pop_front();
                self.order_queued.remove(&next);
                continue;
            }
            if !self.payloads.contains_key(&next) {
                break;
            }
            self.order_queue.pop_front();
            self.order_queued.remove(&next);
            self.opt_deliver(ctx, next);
        }
    }

    /// `Opt-deliver(m)`: process the request and send the optimistic reply.
    fn opt_deliver(
        &mut self,
        ctx: &mut Context<'_, OarWire<S::Command, S::Response>>,
        id: RequestId,
    ) {
        let request = self.payloads.get(&id).expect("payload present").clone();
        let (response, undo) = self.sm.apply(&request.command);
        self.o_delivered.push(id);
        self.undo_stack.push((id, undo));
        self.position += 1;
        self.stats.opt_delivered += 1;
        self.log.push(DeliveryRecord::OptDeliver {
            epoch: self.epoch,
            request: id,
            position: self.position,
        });
        self.annotate(ctx, format!("Opt-deliver({id}) @{}", self.position));

        // Weight: {s} for the sequencer itself, {p, s} otherwise (Fig. 6, 12–15).
        let sequencer = self.current_sequencer();
        let mut weight: Weight = BTreeSet::new();
        weight.insert(sequencer);
        weight.insert(self.id);
        let reply = Reply {
            request: id,
            epoch: self.epoch,
            weight,
            position: self.position,
            response,
            from: self.id,
            kind: DeliveryKind::Optimistic,
        };
        ctx.send(request.client, OarWire::Reply(reply));

        // §5.3 remark: proactively cut long epochs to garbage-collect
        // O_delivered.
        if let Some(cut) = self.config.epoch_cut_after {
            if self.o_delivered.len() as u64 >= cut && self.is_sequencer() {
                self.start_phase2(ctx);
            }
        }
    }

    /// Task 1c (Fig. 6 lines 20–21): trigger phase 2 when the sequencer is
    /// suspected.
    fn maybe_start_phase2(&mut self, ctx: &mut Context<'_, OarWire<S::Command, S::Response>>) {
        if self.phase == Phase::Optimistic
            && !self.phase2_started
            && self.fd.is_suspected(self.current_sequencer())
        {
            self.start_phase2(ctx);
        }
    }

    /// R-broadcasts `(k, PhaseII)`; the local delivery enters phase 2
    /// immediately.
    fn start_phase2(&mut self, ctx: &mut Context<'_, OarWire<S::Command, S::Response>>) {
        if self.phase2_started || self.phase != Phase::Optimistic {
            return;
        }
        self.phase2_started = true;
        let (wire, targets, local) = self
            .phase2_cast
            .broadcast_shared(PhaseIIMsg { epoch: self.epoch });
        ctx.send_all(&targets, OarWire::PhaseII(wire));
        self.handle_phase2_delivery(ctx, local.payload);
    }

    /// Task 2 entry (Fig. 6 line 22): R-delivery of `(k, PhaseII)`.
    fn handle_phase2_delivery(
        &mut self,
        ctx: &mut Context<'_, OarWire<S::Command, S::Response>>,
        msg: PhaseIIMsg,
    ) {
        if msg.epoch < self.epoch {
            return;
        }
        if msg.epoch > self.epoch {
            self.future_phase2.insert(msg.epoch);
            return;
        }
        if self.phase == Phase::Conservative {
            return;
        }
        self.enter_phase2(ctx);
    }

    /// Enters the conservative phase of the current epoch: propose our
    /// `(O_delivered, O_notdelivered)` to the epoch's consensus.
    fn enter_phase2(&mut self, ctx: &mut Context<'_, OarWire<S::Command, S::Response>>) {
        self.phase = Phase::Conservative;
        self.phase2_started = true;
        self.stats.phase2_entered += 1;
        self.annotate(ctx, format!("PhaseII(epoch={})", self.epoch));

        // Fig. 6 line 23: O_notdelivered = (R_delivered ⊖ A_delivered) ⊖ O_delivered.
        let o_notdelivered: Seq<RequestId> = self
            .r_delivered
            .iter()
            .filter(|id| !self.delivered_already(id))
            .copied()
            .collect();

        // The round-1 coordinator is the successor of the (suspected)
        // sequencer, so fail-over does not wait on the crashed process.
        let n = self.group.len();
        let first_coordinator = self.group[(self.epoch as usize + 1) % n];
        let mut consensus = MajConsensus::new(
            self.epoch,
            self.id,
            self.group.clone(),
            first_coordinator,
            self.config.consensus,
        );
        let value = CnsvValue {
            o_delivered: self.o_delivered.clone(),
            o_notdelivered,
        };
        let output = consensus.propose(value);
        self.consensus = Some(consensus);
        self.dispatch_consensus_output(ctx, output.messages, output.decision);

        // Feed consensus messages that arrived before we entered phase 2.
        let buffered = self
            .buffered_consensus
            .remove(&self.epoch)
            .unwrap_or_default();
        for (from, wire) in buffered {
            self.feed_consensus(ctx, from, wire);
        }
        // The consensus needs the current suspicion view to make progress when
        // the coordinator is already dead.
        self.push_suspects_to_consensus(ctx);
    }

    fn push_suspects_to_consensus(
        &mut self,
        ctx: &mut Context<'_, OarWire<S::Command, S::Response>>,
    ) {
        if let Some(consensus) = self.consensus.as_mut() {
            let suspects = self.fd.suspects().clone();
            let output = consensus.update_suspects(&suspects);
            self.dispatch_consensus_output(ctx, output.messages, output.decision);
        }
    }

    fn feed_consensus(
        &mut self,
        ctx: &mut Context<'_, OarWire<S::Command, S::Response>>,
        from: ProcessId,
        wire: ConsensusWire<CnsvValue>,
    ) {
        if let Some(consensus) = self.consensus.as_mut() {
            let output = consensus.on_wire(from, wire);
            self.dispatch_consensus_output(ctx, output.messages, output.decision);
        }
    }

    fn dispatch_consensus_output(
        &mut self,
        ctx: &mut Context<'_, OarWire<S::Command, S::Response>>,
        messages: Vec<oar_channels::Outgoing<ConsensusWire<CnsvValue>>>,
        decision: Option<Decision<CnsvValue>>,
    ) {
        for m in messages {
            ctx.send(m.to, OarWire::Consensus(m.wire));
        }
        if let Some(decision) = decision {
            self.pending_decision = Some(decision);
            self.try_apply_pending_decision(ctx);
        }
    }

    /// Applies the epoch's consensus decision once every request it mentions is
    /// locally known (payload present). Requests decided by others but not yet
    /// received here will arrive by the agreement property of R-multicast.
    fn try_apply_pending_decision(
        &mut self,
        ctx: &mut Context<'_, OarWire<S::Command, S::Response>>,
    ) {
        let Some(decision) = self.pending_decision.clone() else {
            return;
        };
        if self.phase != Phase::Conservative {
            return;
        }
        let all_known = decision.iter().all(|(_, v)| {
            v.o_delivered
                .iter()
                .chain(v.o_notdelivered.iter())
                .all(|id| self.payloads.contains_key(id))
        });
        if !all_known {
            return;
        }
        self.pending_decision = None;
        self.apply_decision(ctx, decision);
    }

    /// Task 2 body (Fig. 6 lines 24–32).
    fn apply_decision(
        &mut self,
        ctx: &mut Context<'_, OarWire<S::Command, S::Response>>,
        decision: Decision<CnsvValue>,
    ) {
        let outcome = cnsv_order_outcome(&self.o_delivered, &decision);

        // Lines 25–26: Opt-undeliver the wrongly ordered requests, in reverse
        // delivery order (footnote 2).
        for id in outcome.bad.iter().rev() {
            let (undone_id, token) = self
                .undo_stack
                .pop()
                .expect("undo stack holds every current-epoch optimistic delivery");
            debug_assert_eq!(&undone_id, id, "Bad must be a suffix of O_delivered");
            self.sm.undo(token);
            self.position -= 1;
            self.stats.opt_undelivered += 1;
            self.log.push(DeliveryRecord::OptUndeliver {
                epoch: self.epoch,
                request: *id,
            });
            self.annotate(ctx, format!("Opt-undeliver({id})"));
        }

        // Lines 27–29: A-deliver the new sequence and reply with weight Π.
        for id in outcome.new.iter() {
            let request = self.payloads.get(id).expect("payload present").clone();
            let (response, _undo) = self.sm.apply(&request.command);
            self.position += 1;
            self.stats.a_delivered += 1;
            self.log.push(DeliveryRecord::ADeliver {
                epoch: self.epoch,
                request: *id,
                position: self.position,
            });
            self.annotate(ctx, format!("A-deliver({id}) @{}", self.position));
            let reply = Reply {
                request: *id,
                epoch: self.epoch,
                weight: self.group.iter().copied().collect(),
                position: self.position,
                response,
                from: self.id,
                kind: DeliveryKind::Conservative,
            };
            ctx.send(request.client, OarWire::Reply(reply));
        }

        // Line 30: A_delivered ← A_delivered ⊕ (O_delivered ⊖ Bad) ⊕ New.
        // Appended in place: O(epoch length), not O(|A_delivered|).
        let kept = self.o_delivered.subtract(&outcome.bad);
        for id in kept.iter().chain(outcome.new.iter()) {
            self.settled.insert(*id);
            self.a_delivered.push(*id);
        }

        // Lines 31–32: reset the optimistic state and move to the next epoch.
        self.o_delivered = Seq::new();
        self.undo_stack.clear();
        self.order_queue.clear();
        self.order_queued.clear();
        self.order_cursor = 0;
        self.epoch += 1;
        self.phase = Phase::Optimistic;
        self.phase2_started = false;
        self.consensus = None;
        self.stats.epochs_completed += 1;
        self.annotate(ctx, format!("epoch {} starts", self.epoch));

        // Prune the reception buffer: settled requests never need re-ordering.
        let settled = &self.settled;
        self.r_delivered = self
            .r_delivered
            .iter()
            .filter(|id| !settled.contains(id))
            .copied()
            .collect();

        // Replay buffered messages that were waiting for this epoch.
        let epoch = self.epoch;
        if let Some(orders) = self.future_orders.remove(&epoch) {
            for order in orders {
                self.accept_order(ctx, order);
            }
        }
        if self.config.eager_sequencing {
            self.maybe_order(ctx);
        }
        if self.future_phase2.remove(&epoch) {
            self.enter_phase2(ctx);
        }
    }

    /// Reacts to failure-detector events.
    fn handle_fd_events(
        &mut self,
        ctx: &mut Context<'_, OarWire<S::Command, S::Response>>,
        events: Vec<FdEvent>,
    ) {
        if events.is_empty() {
            return;
        }
        let suspicion_changed = events
            .iter()
            .any(|e| matches!(e, FdEvent::Suspect(_) | FdEvent::Restore(_)));
        if suspicion_changed {
            self.maybe_start_phase2(ctx);
            self.push_suspects_to_consensus(ctx);
        }
    }
}

impl<S: StateMachine> Process<OarWire<S::Command, S::Response>> for OarServer<S> {
    fn on_start(&mut self, ctx: &mut Context<'_, OarWire<S::Command, S::Response>>) {
        ctx.set_timer(self.config.tick_interval, TICK);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, OarWire<S::Command, S::Response>>,
        from: ProcessId,
        msg: OarWire<S::Command, S::Response>,
    ) {
        // Any traffic from a group member is evidence of liveness.
        if self.group.contains(&from) && from != self.id {
            let events = self.fd.observe_traffic(from, ctx.now());
            self.handle_fd_events(ctx, events);
        }
        match msg {
            OarWire::Request(wire) => {
                let (delivery, relay) = self.request_cast.on_wire_shared(wire);
                if let Some((wire, targets)) = relay {
                    // One shared allocation for all relay recipients.
                    ctx.send_all(&targets, OarWire::Request(wire));
                }
                if let Some(delivery) = delivery {
                    self.handle_request_delivery(ctx, delivery);
                }
            }
            OarWire::Order(OrderMsg { epoch, order }) => {
                if epoch < self.epoch {
                    return;
                }
                if epoch > self.epoch {
                    self.future_orders.entry(epoch).or_default().push(order);
                    return;
                }
                if self.phase == Phase::Optimistic && from == self.current_sequencer() {
                    self.accept_order(ctx, order);
                }
            }
            OarWire::PhaseII(wire) => {
                let (delivery, relay) = self.phase2_cast.on_wire_shared(wire);
                if let Some((wire, targets)) = relay {
                    ctx.send_all(&targets, OarWire::PhaseII(wire));
                }
                if let Some(delivery) = delivery {
                    self.handle_phase2_delivery(ctx, delivery.payload);
                }
            }
            OarWire::Fd(wire) => {
                let events = self.fd.on_wire(from, wire, ctx.now());
                self.handle_fd_events(ctx, events);
            }
            OarWire::Consensus(wire) => {
                let instance = wire.instance();
                if instance < self.epoch {
                    return;
                }
                if instance > self.epoch || (instance == self.epoch && self.consensus.is_none()) {
                    self.buffered_consensus
                        .entry(instance)
                        .or_default()
                        .push((from, wire));
                    // Consensus traffic for the current epoch means somebody
                    // entered phase 2: the PhaseII broadcast will follow (it is
                    // reliable), so we simply wait for it.
                    return;
                }
                self.feed_consensus(ctx, from, wire);
            }
            OarWire::Reply(_) => {
                // Servers never receive replies; ignore defensively.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, OarWire<S::Command, S::Response>>, timer: Timer) {
        if timer.tag != TICK {
            return;
        }
        // Heartbeats + suspicion checks.
        let (heartbeats, events) = self.fd.on_tick(ctx.now());
        for hb in heartbeats {
            ctx.send(hb.to, OarWire::Fd(hb.wire));
        }
        self.handle_fd_events(ctx, events);
        // Task 1a on a timer: the only ordering trigger when eager sequencing
        // is disabled, and the flush of partially filled batches when it is.
        self.maybe_order(ctx);
        // A decision may be waiting for payloads that never get re-checked
        // otherwise (defensive; normally triggered by request arrival).
        self.try_apply_pending_decision(ctx);
        ctx.set_timer(self.config.tick_interval, TICK);
    }

    fn name(&self) -> String {
        format!("oar-server-{}", self.id.0)
    }
}
