//! The OAR server (Fig. 6 of the paper).
//!
//! Each server is a single [`Process`] that composes:
//!
//! * a [`ReliableCaster`] receiving (and relaying) client requests — Task 0;
//! * the sequencer logic — Task 1a (ordering) and Task 1b (Opt-delivery);
//! * a [`HeartbeatFd`] whose suspicion of the sequencer triggers Task 1c;
//! * a second [`ReliableCaster`] for the `(k, PhaseII)` broadcast;
//! * one [`MajConsensus`] instance per epoch implementing the reduction of
//!   `Cnsv-order` to consensus — Task 2;
//! * the replicated [`StateMachine`] with its undo stack, so that
//!   `Opt-undeliver` can roll back optimistic deliveries in reverse order.
//!
//! The server progresses through epochs; the sequencer of epoch `k` is
//! `Π[k mod |Π|]` (the rotating-coordinator rule of §5.3).
//!
//! # Hot-path data structures
//!
//! The per-request work of the optimistic phase is O(1) amortised:
//!
//! * `O_delivered` and `A_delivered` are indexed [`Seq`]s, so the membership
//!   tests of Tasks 1a/1b (`delivered_already`) cost O(1) instead of a scan;
//! * the not-yet-deliverable suffix of the sequencer order is a `VecDeque`
//!   plus a membership `HashSet`, so draining it is O(1) per request;
//! * the sequencer keeps a cursor into `R_delivered` (`order_cursor`) marking
//!   the prefix it has already examined, so Task 1a only scans *new* requests
//!   instead of the whole reception buffer on every invocation;
//! * epoch close appends to `A_delivered` in place rather than rebuilding it.
//!
//! # Sequencer batching
//!
//! Task 1a accumulates unordered requests and emits a single `OrderMsg`
//! carrying the whole batch once the backlog reaches the batch threshold.
//! With `max_batch = 1` — the default — every request is ordered immediately,
//! exactly like the paper's Fig. 6; larger values amortise the ordering
//! broadcast over many requests, which is what makes the ordering layer keep
//! up at high client counts (`ServerStats::order_messages_sent` drops well
//! below the request count).
//!
//! The threshold is either static ([`OarConfig::max_batch`]) or — with
//! [`OarConfig::adaptive`] set — owned by a
//! [`BatchController`] that aims it at the
//! observed arrival rate, converging to 1 under light load (no added
//! latency) and growing under pressure. A partial batch never waits for the
//! maintenance tick: a dedicated **flush deadline** timer
//! ([`OarConfig::flush_delay`], or the adaptive controller's `max_delay`)
//! orders it a bounded time after its first unflushed arrival, independent
//! of the tick cadence. `ServerStats::effective_batch` /
//! `ServerStats::batch_sizes` record the batches actually emitted;
//! `batch_target`, `target_raises` and `target_drops` expose the
//! controller's convergence.
//!
//! # Batch-aware replies
//!
//! Replies follow the same discipline: while a delivery batch (the drain of
//! an `OrderMsg`, or the A-deliveries of a `Cnsv-order` decision) runs, the
//! per-request replies destined for the same client are accumulated and
//! flushed as **one** `ReplyBatch` wire per client — one allocation and one
//! network event where the unbatched protocol paid one `Reply` per request.
//! `flush_replies` is the single construction
//! site for both the optimistic and the conservative reply path;
//! `ServerStats::reply_messages_sent` counts the wires,
//! `ServerStats::replies_sent` the individual request replies they carry.
//!
//! # Payload garbage collection (epoch watermark)
//!
//! Fig. 7 only needs a request's payload until the decision covering it is
//! settled, so `payloads` need not grow with the lifetime of the server.
//! Every server piggybacks its *settled-epoch watermark* — all epochs `< w`
//! are closed locally — on the ordering and `PhaseII` traffic, on
//! failure-detector heartbeats, and announces it explicitly when an epoch
//! closes. Once every replica this server does not suspect acknowledges
//! watermark `w`, the payloads of requests decided in epochs `< w` are
//! pruned. A server never prunes payloads of epochs it has not itself
//! settled (its own watermark participates in the minimum), so late
//! deliveries and fail-overs keep working from local state;
//! `ServerStats::payloads` exposes the current and peak map size so the
//! bound is observable.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use oar_channels::{CastWire, Delivery, ReliableCaster};
use oar_consensus::{ConsensusSend, ConsensusWire, Decision, MajConsensus};
use oar_fd::{FdEvent, HeartbeatFd};
use oar_sequence::Seq;
use oar_simnet::{
    BucketHistogram, PeakGauge, Process, ProcessId, Runtime, SimDuration, SimTime, Timer, TimerTag,
};

use crate::adaptive::BatchController;
use crate::cnsv_order::cnsv_order_outcome;
use crate::config::OarConfig;
use crate::merkle::MerkleTree;
use crate::message::{
    majority, CatchUpReply, CnsvValue, DeliveryKind, OarWire, OrderMsg, PhaseIIMsg, ReconfigCmd,
    ReplyBatch, ReplyItem, Request, RequestId, Weight,
};
use crate::shard::{KeyRange, MigrationRecord};
use crate::state_machine::{entries_digest, AppliedBatch, StateImage, StateMachine};

/// Applies one delivery batch to the state machine, routing through
/// [`StateMachine::apply_batch`] when parallel apply is configured and the
/// batch has room for concurrency. A free function over the individual
/// fields so callers can keep disjoint borrows of the server.
///
/// Wall-clock time spent applying and the wave partition used are recorded
/// in the stats; both are observability only and never feed back into the
/// (deterministic) protocol.
fn apply_command_batch<S: StateMachine>(
    sm: &mut S,
    parallel: Option<usize>,
    stats: &mut ServerStats,
    commands: &[&S::Command],
) -> Vec<(S::Response, S::Undo)> {
    let start = std::time::Instant::now();
    let batch = match parallel {
        Some(workers) if commands.len() > 1 => sm.apply_batch(commands, workers),
        _ => AppliedBatch {
            results: commands.iter().map(|c| sm.apply(c)).collect(),
            wave_sizes: vec![1; commands.len()],
        },
    };
    stats.apply_ns += start.elapsed().as_nanos() as u64;
    for &size in &batch.wave_sizes {
        stats.wave_sizes.record(size);
    }
    batch.results
}

/// Replies accumulated during one delivery batch, keyed by destination
/// client. `BTreeMap` so the flush order (and thus the simulation schedule)
/// is deterministic.
type PendingReplies<R> = BTreeMap<ProcessId, Vec<ReplyItem<R>>>;

/// Wires buffered during catch-up, tagged with their sender for replay.
type RecoveryBuffer<S> = Vec<(
    ProcessId,
    OarWire<<S as StateMachine>::Command, <S as StateMachine>::Response>,
)>;

/// Timer tag of the periodic maintenance tick.
const TICK: TimerTag = TimerTag::Tick;

/// Timer tag of the one-shot partial-batch flush deadline.
const FLUSH: TimerTag = TimerTag::Flush;

/// Timer tag of the catch-up retry clock (armed only while recovering).
const CATCHUP: TimerTag = TimerTag::CatchUp;

/// Exponential-backoff cap of the catch-up retry delay, as a power of two:
/// attempts back off 1×, 2×, 4×, 8× [`OarConfig::catch_up_retry`] and stay
/// at 8× from there (donor rotation keeps every retry trying a new peer).
const CATCHUP_BACKOFF_CAP: u32 = 3;

/// Anti-entropy ticks an unresolved leaf-repair vote may stay in flight
/// before it expires. A vote resolves early on any strict group majority;
/// the deadline covers the remainder — a crashed or unreachable member whose
/// ballot never arrives, or a split with no majority — so a wedged vote
/// cannot block every future repair attempt for its key (`start_leaf_vote`
/// is idempotent per in-flight key). A healthy vote round-trips well within
/// one tick; eight is comfortably past any burst of probe races.
const SYNC_VOTE_EXPIRY_TICKS: u64 = 8;

/// At most this many missing payloads are named in one `PayloadFetch` wire;
/// the rest follow on later ticks once the first batch lands.
const FETCH_BATCH: usize = 64;

/// One link of the chained order-hash over settled request ids:
/// `h_i = mix(h_{i-1}, id_i)` (splitmix64-style finalizer). Replicas that
/// compacted their `A_delivered` prefix compare the chain value at a common
/// position instead of the pruned elements; the chain over the full prefix
/// commits to both content and order.
fn chain_hash(h: u64, id: RequestId) -> u64 {
    let mut x = h
        ^ (id.origin.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ id.seq.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The server's latest snapshot: the state image captured at an epoch close
/// plus the metadata needed to serve a [`CatchUpReply`] and to compare the
/// compacted prefix with other replicas.
#[derive(Clone, Debug)]
struct SnapshotRecord {
    /// The state image (`None` when the machine is not snapshottable —
    /// catch-up then ships the full settled history as the delta).
    image: Option<StateImage>,
    /// Number of settled commands captured inside `image`.
    position: u64,
    /// State digest at `position`.
    digest: u64,
    /// Chained order-hash over the first `position` settled request ids.
    order_hash: u64,
}

/// Which phase of the current epoch the server is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Phase 1: the sequencer orders messages optimistically.
    Optimistic,
    /// Phase 2: the group runs `Cnsv-order` (consensus) to close the epoch.
    Conservative,
}

/// One entry of the server's delivery log, used by tests and experiments to
/// check the paper's propositions (total order, at-most-once, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeliveryRecord {
    /// `Opt-deliver(m)` at the given global position.
    OptDeliver {
        /// Epoch of the delivery.
        epoch: u64,
        /// The request.
        request: RequestId,
        /// 1-based position in the server's delivery order.
        position: u64,
    },
    /// `Opt-undeliver(m)`.
    OptUndeliver {
        /// Epoch of the undelivery.
        epoch: u64,
        /// The request.
        request: RequestId,
    },
    /// `A-deliver(m)` at the given global position.
    ADeliver {
        /// Epoch of the delivery.
        epoch: u64,
        /// The request.
        request: RequestId,
        /// 1-based position in the server's delivery order.
        position: u64,
    },
}

/// Counters maintained by each server, used by the experiment harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests delivered optimistically (phase 1).
    pub opt_delivered: u64,
    /// Optimistic deliveries that were undone.
    pub opt_undelivered: u64,
    /// Requests delivered conservatively (phase 2).
    pub a_delivered: u64,
    /// Number of times the server entered phase 2.
    pub phase2_entered: u64,
    /// Number of epochs completed (phase 2 finished).
    pub epochs_completed: u64,
    /// Ordering messages sent while acting as the sequencer.
    pub order_messages_sent: u64,
    /// `ReplyBatch` wires sent to clients (one per client per delivery
    /// batch). With reply batching this drops below `replies_sent`.
    pub reply_messages_sent: u64,
    /// Individual request replies carried by those wires.
    pub replies_sent: u64,
    /// Consensus wire allocations: each counts one message construction,
    /// however many destinations the shared payload reaches.
    pub consensus_wires_sent: u64,
    /// Per-destination consensus deliveries requested (the count the
    /// pre-clone implementation would have allocated).
    pub consensus_messages_sent: u64,
    /// Request payloads pruned by the epoch-watermark garbage collector.
    pub payloads_pruned: u64,
    /// Current and peak size of the `payloads` map.
    pub payloads: PeakGauge,
    /// Requests that arrived stamped for a *different* replication group and
    /// were dropped. Must stay 0 in a correctly routed sharded deployment.
    pub misrouted: u64,
    /// Requests carrying a transaction envelope (`TxnPrepare` legs of
    /// multi-group transactions) buffered by this server. Single-group
    /// fast-path transactions carry no envelope and are **not** counted —
    /// the `txn-smoke` gate relies on that to show the fast path is
    /// wire-identical to the plain sharded client.
    pub txn_prepares: u64,
    /// Current and peak total size of the reliable-multicast duplicate-
    /// suppression (`seen`) sets, bounded by the same epoch-watermark rule
    /// as `payloads`.
    pub seen: PeakGauge,
    /// Size of the last (current) and largest `OrderMsg` batch this server
    /// emitted as the sequencer.
    pub effective_batch: PeakGauge,
    /// Distribution of the `OrderMsg` batch sizes emitted as the sequencer
    /// (power-of-two buckets).
    pub batch_sizes: BucketHistogram,
    /// The batch threshold currently in force: the static
    /// `OarConfig::max_batch`, or the adaptive controller's converged
    /// target.
    pub batch_target: u64,
    /// Times the adaptive controller raised its target (0 for static
    /// configurations) — the convergence counter of the `adaptive` gate.
    pub target_raises: u64,
    /// Times the adaptive controller lowered its target (idle decay
    /// included).
    pub target_drops: u64,
    /// Partial batches ordered by the flush-deadline timer (as opposed to
    /// reaching the batch threshold or the maintenance tick).
    pub deadline_flushes: u64,
    /// Cumulative **real wall-clock** nanoseconds this server spent inside
    /// `StateMachine` application (optimistic and conservative deliveries).
    /// Unlike every other counter this measures host time, not simulated
    /// time: it is what the parallel-apply stage actually changes, and it is
    /// excluded from all determinism comparisons.
    pub apply_ns: u64,
    /// Distribution of the apply scheduler's wave sizes (power-of-two
    /// buckets). Serial application records every command as a singleton
    /// wave; with [`OarConfig::parallel_apply`] set, larger waves show how
    /// much of each delivery batch was conflict-free.
    pub wave_sizes: BucketHistogram,
    /// Current and peak length of the *retained* `A_delivered` log. With
    /// [`OarConfig::snapshot_every`] set this is bounded by the snapshot
    /// window instead of growing with the run — the compaction gate of the
    /// recovery benchmark.
    pub a_delivered_len: PeakGauge,
    /// Current and peak depth of the optimistic undo stack (bounded by the
    /// epoch cut; compaction never needs to prune it because epoch close
    /// already drops the settled epoch's tokens).
    pub undo_depth: PeakGauge,
    /// Snapshots captured at epoch closes (each also compacts the log).
    pub snapshots_taken: u64,
    /// `A_delivered` entries pruned by log compaction, cumulative.
    pub compacted: u64,
    /// `CatchUpRequest` wires sent while recovering (attempt count).
    pub catch_up_requests: u64,
    /// `CatchUpReply` wires served to rejoining peers (donor side).
    pub catch_up_replies: u64,
    /// Length of the settled-command delta replayed by the last successful
    /// catch-up install (0 until a catch-up completed). Together with the
    /// snapshot position this shows the rejoin was snapshot + delta, not a
    /// full replay.
    pub catch_up_delta: u64,
    /// Delivery position of the snapshot image installed by the last
    /// successful catch-up (the prefix the rejoiner did *not* replay).
    pub catch_up_snapshot_position: u64,
    /// `PayloadFetch` wires sent to repair payloads whose multicast relay
    /// was lost across a restart.
    pub payload_fetches: u64,
    /// `PayloadFill` wires served to peers (donor side).
    pub payload_fills: u64,
    /// Consensus instances whose messages were re-sent after stalling (the
    /// crash-recovery repair of the quasi-reliable-channel assumption).
    pub consensus_retransmits: u64,
    /// Requests door-dropped for stale routing (an old boundary epoch, or a
    /// key this group has migrated away) and answered with a `Redirect`.
    pub redirected: u64,
    /// Reconfiguration fence commands whose effects this server applied at
    /// an epoch close (`Replace` membership swaps and `Migrate` records).
    pub reconfigs_applied: u64,
    /// Key-range migrations this server completed as a donor member
    /// (extracted the range and shipped the hand-off).
    pub migrations_out: u64,
    /// Key-range migrations this server recorded as a recipient member.
    pub migrations_in: u64,
    /// `MigrateState` hand-off wires sent to recipient members (donor side).
    pub migrate_state_wires: u64,
    /// Digest of the entries extracted by the last donor-side migration
    /// (what the hand-off shipped; 0 until a migration ran).
    pub migrate_out_digest: u64,
    /// Digest of the last verified incoming `MigrateState` (must match the
    /// donor's `migrate_out_digest`; 0 until a hand-off arrived).
    pub migrate_in_digest: u64,
    /// Anti-entropy root probes sent on the maintenance tick.
    pub sync_probes: u64,
    /// Merkle node wires exchanged during divergence descent (requests and
    /// replies) — the O(log n) localisation cost the anti-entropy gate
    /// measures.
    pub sync_node_wires: u64,
    /// Divergent leaves repaired by the anti-entropy majority vote.
    pub sync_repairs: u64,
}

/// The OAR server process, generic over the replicated [`StateMachine`].
#[derive(Debug)]
pub struct OarServer<S: StateMachine> {
    id: ProcessId,
    group: Vec<ProcessId>,
    config: OarConfig,

    // --- protocol state (Fig. 6, Initialization) ---
    epoch: u64,
    phase: Phase,
    /// Reception order of client requests (the paper's `R_delivered`).
    r_delivered: Seq<RequestId>,
    /// Requests delivered in previous epochs (the paper's `A_delivered`).
    a_delivered: Seq<RequestId>,
    /// Requests Opt-delivered in the current epoch (the paper's `O_delivered`).
    o_delivered: Seq<RequestId>,
    /// Fast membership test for `a_delivered` plus kept optimistic deliveries.
    settled: HashSet<RequestId>,
    /// Request payloads, keyed by id.
    payloads: HashMap<RequestId, Request<S::Command>>,
    /// Undo tokens of the current epoch's optimistic deliveries (LIFO).
    undo_stack: Vec<(RequestId, S::Undo)>,
    /// Number of requests delivered and not undone (the proofs' reply counter).
    position: u64,
    /// Ordered requests not yet Opt-delivered because their payload has not
    /// arrived yet (delivery must follow the sequencer order).
    order_queue: VecDeque<RequestId>,
    /// Fast membership test for `order_queue`.
    order_queued: HashSet<RequestId>,
    /// Sequencer cursor into `r_delivered`: every request before this
    /// position has already been examined by Task 1a this epoch (it is
    /// delivered, settled, or in `order_queue`), so Task 1a only scans the
    /// suffix of new arrivals.
    order_cursor: usize,
    /// True once Task 1c fired (or a PhaseII was delivered) for this epoch.
    phase2_started: bool,
    /// Adaptive batch controller (sequencer side), present when
    /// `config.adaptive` is set.
    adaptive: Option<BatchController>,
    /// When the current partial batch must be flushed (`None`: no partial
    /// batch is on the clock). Tracked separately from the timer because
    /// timers cannot be cancelled — see `schedule_flush_deadline`.
    flush_deadline: Option<SimTime>,
    /// Whether a FLUSH timer is in flight (at most one at any time).
    flush_timer_pending: bool,

    // --- components ---
    request_cast: ReliableCaster<Request<S::Command>>,
    phase2_cast: ReliableCaster<PhaseIIMsg>,
    fd: HeartbeatFd,
    consensus: Option<MajConsensus<CnsvValue>>,

    // --- buffers for out-of-epoch messages ---
    future_orders: BTreeMap<u64, Vec<Seq<RequestId>>>,
    future_phase2: BTreeSet<u64>,
    buffered_consensus: BTreeMap<u64, Vec<(ProcessId, ConsensusWire<CnsvValue>)>>,
    /// A consensus decision whose requests are not all locally known yet.
    pending_decision: Option<Decision<CnsvValue>>,
    /// The payloads the pending decision is still waiting for. Maintained
    /// incrementally so each payload arrival re-examines the decision in
    /// O(1) instead of rescanning every request it mentions.
    pending_missing: HashSet<RequestId>,

    // --- payload garbage collection (epoch watermark) ---
    /// Highest settled-epoch watermark heard from each peer (this server's
    /// own watermark is `epoch`, always current).
    peer_settled: HashMap<ProcessId, u64>,
    /// Epochs `< gc_floor` have had their payloads pruned already.
    gc_floor: u64,
    /// Requests settled per closed epoch, awaiting acknowledgement by every
    /// live replica before their payloads are pruned.
    gc_pending: BTreeMap<u64, Vec<RequestId>>,
    /// Multicast ids of the `PhaseII` broadcasts delivered per epoch, so the
    /// phase2 caster's duplicate-suppression set can be aged out alongside
    /// the payloads once the epoch is acknowledged group-wide.
    phase2_msg_ids: BTreeMap<u64, Vec<RequestId>>,

    // --- snapshots, log compaction, catch-up (recovery layer) ---
    /// Number of settled commands compacted out of `a_delivered`: the global
    /// delivery position of `a_delivered[0]` is `a_base + 1`. Always equal to
    /// `snapshot.position` — compaction prunes exactly to the snapshot.
    a_base: u64,
    /// Chained order-hash ([`chain_hash`]) over the compacted prefix.
    a_base_hash: u64,
    /// State digest at the last epoch close (the settled prefix state —
    /// current-epoch optimistic deliveries are *not* in it). This is the
    /// digest a rejoiner must reproduce after snapshot + delta replay.
    settled_digest: u64,
    /// The settled requests (with payloads) ordered after the snapshot
    /// position, in delivery order — the catch-up delta a donor serves.
    /// Parallels the retained `a_delivered` exactly; cleared on snapshot.
    settled_log: VecDeque<Request<S::Command>>,
    /// The latest snapshot (taken at construction with position 0, then at
    /// every [`OarConfig::snapshot_every`]-th epoch close).
    snapshot: SnapshotRecord,
    /// `Some(attempt)` while this server is catching up after a restart: it
    /// ignores all protocol traffic except the matching [`CatchUpReply`]
    /// (buffering what may still matter) until the install completes.
    catch_up_attempt: Option<u64>,
    /// Wires received while recovering, replayed through `on_message` once
    /// the install completes (the door checks discard whatever the transfer
    /// already covered).
    recovery_buffer: RecoveryBuffer<S>,
    /// Catch-up requests from replicas this group does not (yet) roster —
    /// replacements whose `Replace` fence has not settled here. Serving them
    /// now would transfer a state whose future decisions are cast to the old
    /// roster, so the transfer is held and served the moment the fence
    /// applies. One slot per sender (the latest attempt wins).
    held_catch_ups: Vec<(ProcessId, u64)>,
    /// The epoch a catch-up install landed in the middle of. A rejoiner has
    /// missed that epoch's earlier order batches, so opt-delivering from a
    /// mid-epoch batch would break Lemma 2 (every `O_delivered` is a prefix
    /// of the sequencer order) — the premise that makes `Cnsv-order` agree.
    /// While the current epoch equals this one, the optimistic path is
    /// frozen: this replica proposes `O_delivered = ∅` (a trivial prefix)
    /// and the conservative close delivers everything. Expires when the
    /// epoch advances.
    opt_freeze_epoch: Option<u64>,
    /// Payload ids observed missing at the previous maintenance tick: only
    /// ids missing for a full tick are fetched, so normal multicast delivery
    /// fills fresh gaps without repair traffic.
    prev_missing: HashSet<RequestId>,
    /// Rotates the target peer of successive `PayloadFetch` wires.
    fetch_round: u64,
    /// Maintenance ticks the current consensus instance has spent undecided:
    /// after two full ticks its (idempotent) messages are re-sent, repairing
    /// estimates/proposals that were unicast to a peer while it was down.
    cnsv_stall_ticks: u32,

    // --- membership reconfiguration & shard migration ---
    /// The routing-boundary epoch this group has settled. Bumped by every
    /// settled `Migrate` fence; requests stamped with an older epoch are
    /// door-dropped and answered with a `Redirect`.
    route_epoch: u64,
    /// Settled key-range migration records this server knows about, in
    /// settle order. Records where this group is the donor drive the
    /// migrated-away door check; the whole list travels in `Redirect`s so a
    /// stale client can repair its router in one round-trip.
    migrations: Vec<MigrationRecord>,

    // --- Merkle anti-entropy ---
    /// Rotates the probe target of successive anti-entropy ticks.
    sync_cursor: u64,
    /// Anti-entropy ticks elapsed (one per maintenance tick with the loop
    /// enabled) — the clock the leaf-vote deadlines are measured against.
    sync_tick: u64,
    /// Leaf-repair votes in flight, keyed by divergent key: the tick the
    /// vote started at, plus the value each group member (self included)
    /// reported for it. A strict majority for one value settles the vote and
    /// repairs the leaf; a vote that cannot resolve (a member crashed or
    /// unreachable, or values split) expires after
    /// [`SYNC_VOTE_EXPIRY_TICKS`] so the next probe can retry it.
    sync_votes: BTreeMap<String, (u64, BTreeMap<ProcessId, Option<String>>)>,
    /// `(epoch, optimistic deliveries)` observed by the previous tick. When
    /// anti-entropy is on and two consecutive ticks see the same open
    /// optimistic epoch, the sequencer cuts it: an idle tail epoch would
    /// otherwise pin the undo stack forever and keep every probe gated.
    sync_idle_mark: Option<(u64, u64)>,

    // --- application ---
    sm: S,

    // --- observability ---
    log: Vec<DeliveryRecord>,
    stats: ServerStats,
}

impl<S: StateMachine> OarServer<S> {
    /// Creates the server with identity `id`, replica group `group` (which must
    /// contain `id`) and initial service state `sm`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a member of `group`.
    pub fn new(id: ProcessId, group: Vec<ProcessId>, config: OarConfig, sm: S) -> Self {
        assert!(group.contains(&id), "server must belong to its group");
        let stats = ServerStats {
            batch_target: match config.adaptive {
                Some(_) => 1, // the controller starts unbatched
                None => config.max_batch.max(1) as u64,
            },
            ..ServerStats::default()
        };
        // A position-0 snapshot exists from the start, so the server can
        // always donate state to a rejoining peer.
        let snapshot = SnapshotRecord {
            image: sm.snapshot(),
            position: 0,
            digest: sm.digest(),
            order_hash: 0,
        };
        let settled_digest = sm.digest();
        OarServer {
            id,
            request_cast: ReliableCaster::new(id, group.clone()),
            phase2_cast: ReliableCaster::new(id, group.clone()),
            fd: HeartbeatFd::new(id, group.clone(), config.fd),
            consensus: None,
            group,
            config,
            epoch: 0,
            phase: Phase::Optimistic,
            r_delivered: Seq::new(),
            a_delivered: Seq::new(),
            o_delivered: Seq::new(),
            settled: HashSet::new(),
            payloads: HashMap::new(),
            undo_stack: Vec::new(),
            position: 0,
            order_queue: VecDeque::new(),
            order_queued: HashSet::new(),
            order_cursor: 0,
            phase2_started: false,
            adaptive: config.adaptive.map(BatchController::new),
            flush_deadline: None,
            flush_timer_pending: false,
            future_orders: BTreeMap::new(),
            future_phase2: BTreeSet::new(),
            buffered_consensus: BTreeMap::new(),
            pending_decision: None,
            pending_missing: HashSet::new(),
            peer_settled: HashMap::new(),
            gc_floor: 0,
            gc_pending: BTreeMap::new(),
            phase2_msg_ids: BTreeMap::new(),
            a_base: 0,
            a_base_hash: 0,
            settled_digest,
            settled_log: VecDeque::new(),
            snapshot,
            catch_up_attempt: None,
            recovery_buffer: Vec::new(),
            held_catch_ups: Vec::new(),
            opt_freeze_epoch: None,
            prev_missing: HashSet::new(),
            fetch_round: 0,
            cnsv_stall_ticks: 0,
            route_epoch: 0,
            migrations: Vec::new(),
            sync_cursor: 0,
            sync_tick: 0,
            sync_votes: BTreeMap::new(),
            sync_idle_mark: None,
            sm,
            log: Vec::new(),
            stats,
        }
    }

    /// Creates a server that rejoins the group after a restart: it starts in
    /// **recovery mode** — on start it asks a peer for a [`CatchUpReply`]
    /// (latest snapshot + settled delta) and ignores all other protocol
    /// traffic until the transfer installs, retrying with donor rotation and
    /// exponential backoff while the chosen donor is down. `sm` must be the
    /// service's *initial* state (the crash lost the in-memory state; the
    /// snapshot and delta rebuild it).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a member of `group`.
    pub fn recovering(id: ProcessId, group: Vec<ProcessId>, config: OarConfig, sm: S) -> Self {
        let mut server = Self::new(id, group, config, sm);
        // A single-member group has no peer to catch up from (and nothing it
        // could learn): it resumes with fresh state immediately.
        if server.group.len() > 1 {
            server.catch_up_attempt = Some(0);
        }
        server
    }

    /// Whether this server is still catching up after a restart.
    pub fn is_recovering(&self) -> bool {
        self.catch_up_attempt.is_some()
    }

    /// The server's process identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The replication group this server belongs to (from its config).
    pub fn group_id(&self) -> oar_simnet::GroupId {
        self.config.group
    }

    /// Total size of the reliable-multicast duplicate-suppression sets
    /// (request + PhaseII casters) — the quantity aged out by the
    /// epoch-watermark rule.
    pub fn seen_len(&self) -> usize {
        self.request_cast.seen_count() + self.phase2_cast.seen_count()
    }

    /// Updates the `seen` gauge after any insertion into or pruning of the
    /// casters' duplicate-suppression sets.
    fn record_seen(&mut self) {
        self.stats.seen.record(self.seen_len() as u64);
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Test-support: `Debug` dump of the running phase-2 consensus instance
    /// (`None` outside phase 2). Used by the model checker's trace probe.
    pub fn mc_consensus_debug(&self) -> String {
        format!("{:?}", self.consensus)
    }

    /// The sequencer of epoch `k`: `Π[k mod |Π|]`.
    pub fn sequencer_of(&self, epoch: u64) -> ProcessId {
        self.group[(epoch as usize) % self.group.len()]
    }

    /// The sequencer of the current epoch.
    pub fn current_sequencer(&self) -> ProcessId {
        self.sequencer_of(self.epoch)
    }

    /// Whether this server is the sequencer of the current epoch.
    pub fn is_sequencer(&self) -> bool {
        self.current_sequencer() == self.id
    }

    /// The replicated state machine (read access, for tests and examples).
    pub fn state_machine(&self) -> &S {
        &self.sm
    }

    /// The delivery log (Opt-deliver / Opt-undeliver / A-deliver events).
    pub fn delivery_log(&self) -> &[DeliveryRecord] {
        &self.log
    }

    /// Protocol counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Number of request payloads currently retained (the quantity bounded by
    /// the epoch-watermark garbage collector).
    pub fn payloads_len(&self) -> usize {
        self.payloads.len()
    }

    /// This server's settled-epoch watermark: every epoch `< watermark` is
    /// closed locally. Epochs close in order, so this is simply the current
    /// epoch number.
    pub fn settled_watermark(&self) -> u64 {
        self.epoch
    }

    /// The watermark acknowledged by every replica this server does not
    /// suspect (including itself): payloads of requests decided in epochs
    /// below it are safe to prune.
    pub fn acked_watermark(&self) -> u64 {
        self.group
            .iter()
            .map(|&p| {
                if p == self.id {
                    self.epoch
                } else if self.fd.is_suspected(p) {
                    // Suspected replicas do not hold up the collector; they
                    // only ever need their *own* payload map to catch up.
                    u64::MAX
                } else {
                    self.peer_settled.get(&p).copied().unwrap_or(0)
                }
            })
            .min()
            .unwrap_or(0)
    }

    /// The sequence of requests this server has delivered and not undone, in
    /// delivery order: `A_delivered ⊕ (O_delivered of the current epoch)`.
    pub fn committed_sequence(&self) -> Seq<RequestId> {
        self.a_delivered.concat(&self.o_delivered)
    }

    /// The requests delivered in closed epochs only (never undoable). With
    /// log compaction this is the *retained* suffix: the first [`Self::a_base`]
    /// settled requests were pruned into the snapshot and are represented by
    /// [`Self::order_hash_at`].
    pub fn stable_sequence(&self) -> &Seq<RequestId> {
        &self.a_delivered
    }

    /// Number of settled commands compacted out of the retained
    /// `A_delivered` log: the global delivery position of
    /// `stable_sequence()[0]` is `a_base() + 1`.
    pub fn a_base(&self) -> u64 {
        self.a_base
    }

    /// Total number of settled commands: compacted prefix + retained log.
    pub fn total_settled(&self) -> u64 {
        self.a_base + self.a_delivered.len() as u64
    }

    /// State digest at the last epoch close (the settled prefix, excluding
    /// current-epoch optimistic deliveries).
    pub fn settled_digest(&self) -> u64 {
        self.settled_digest
    }

    /// The chained order-hash over the first `pos` settled request ids, or
    /// `None` when `pos` lies inside the compacted prefix (`pos < a_base()`,
    /// elements gone) or beyond the settled log. Two replicas agree on their
    /// common settled prefix iff their chain values at a common position are
    /// equal — this is how compacted replicas are compared.
    pub fn order_hash_at(&self, pos: u64) -> Option<u64> {
        if pos < self.a_base || pos > self.total_settled() {
            return None;
        }
        let mut h = self.a_base_hash;
        for id in &self.a_delivered.as_slice()[..(pos - self.a_base) as usize] {
            h = chain_hash(h, *id);
        }
        Some(h)
    }

    /// Whether this server's failure detector currently suspects `p` (used
    /// by the restart tests: a rejoined replica must be un-suspected once
    /// its fresh heartbeats arrive).
    pub fn is_suspecting(&self, p: ProcessId) -> bool {
        self.fd.is_suspected(p)
    }

    /// The current replica group, in sequencer-rotation order. Mutable over
    /// the server's lifetime: a settled [`ReconfigCmd::Replace`] swaps the
    /// fenced member's slot in place.
    pub fn members(&self) -> &[ProcessId] {
        &self.group
    }

    /// The routing-boundary epoch this group has settled (bumped by every
    /// settled `Migrate` fence).
    pub fn route_epoch(&self) -> u64 {
        self.route_epoch
    }

    /// The settled key-range migration records this server knows about, in
    /// settle order.
    pub fn migration_records(&self) -> &[MigrationRecord] {
        &self.migrations
    }

    /// Digest of the settled entries inside `range`, when the state machine
    /// supports keyed extraction (the donor/recipient equality check of the
    /// migration gate).
    pub fn range_digest(&self, range: &KeyRange) -> Option<u64> {
        self.sm.range_digest(range)
    }

    /// Fault injection for the anti-entropy experiments and tests: silently
    /// corrupts one settled key of the local state machine (`None` deletes
    /// it), exactly the class of divergence the Merkle repair loop heals.
    /// Returns whether the machine changed (false when it does not support
    /// anti-entropy).
    pub fn inject_divergence(&mut self, key: &str, value: Option<&str>) -> bool {
        self.sm.anti_entropy_repair(key, value)
    }

    /// Forces this server to suspect the current sequencer (wrong-suspicion
    /// injection used by the experiments on Opt-undeliver frequency).
    pub fn force_suspect_sequencer(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
    ) {
        let sequencer = self.current_sequencer();
        if sequencer != self.id {
            self.fd.force_suspect(sequencer);
        }
        self.maybe_start_phase2(ctx);
    }

    /// Forces this server's failure detector to suspect an arbitrary peer
    /// (wrong-suspicion injection used by the model checker's fault choices;
    /// unlike [`Self::force_suspect_sequencer`] the target need not be the
    /// current sequencer). Triggers Task 1c if the target *is* the current
    /// sequencer and feeds the updated suspect set to any running consensus,
    /// like a real suspicion event would (on the normal path the maintenance
    /// tick does both; the checker's configurations push ticks beyond the
    /// exploration horizon).
    pub fn force_suspect(
        &mut self,
        target: ProcessId,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
    ) {
        if target != self.id {
            self.fd.force_suspect(target);
        }
        self.maybe_start_phase2(ctx);
        self.push_suspects_to_consensus(ctx);
    }

    // ------------------------------------------------------------------
    // helpers
    // ------------------------------------------------------------------

    /// O(1): both `settled` and the indexed `o_delivered` are hash probes.
    fn delivered_already(&self, id: &RequestId) -> bool {
        self.settled.contains(id) || self.o_delivered.contains(id)
    }

    /// Every group member except this server: the destination list of the
    /// server's own group-wide sends (ordering, watermark announcements).
    fn peers(&self) -> Vec<ProcessId> {
        self.group
            .iter()
            .copied()
            .filter(|&p| p != self.id)
            .collect()
    }

    /// Number of received requests Task 1a has not examined yet.
    fn order_backlog(&self) -> usize {
        self.r_delivered.len() - self.order_cursor
    }

    fn annotate(&self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>, text: String) {
        ctx.annotate(text);
    }

    /// Task 0 (Fig. 6 lines 6–7): buffer an incoming client request.
    fn handle_request_delivery(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        delivery: Delivery<Request<S::Command>>,
    ) {
        let request = delivery.payload;
        let id = request.id;
        debug_assert_eq!(
            request.group, self.config.group,
            "misroutes are dropped at the door, before the caster"
        );
        if self.payloads.contains_key(&id) || self.settled.contains(&id) {
            return;
        }
        if request.txn.is_some() {
            self.stats.txn_prepares += 1;
        }
        let fence = request.reconfig.is_some();
        self.payloads.insert(id, request);
        self.stats.payloads.record(self.payloads.len() as u64);
        self.record_seen();
        self.r_delivered.push(id);
        // Feed the adaptive controller on every server (not just the current
        // sequencer): O(1), and it keeps a fail-over successor's rate
        // estimate warm.
        if let Some(controller) = self.adaptive.as_mut() {
            controller.record_arrival(ctx.now());
        }
        // New payloads may unblock a buffered sequencer order or a pending
        // consensus decision (the missing set makes the latter O(1)).
        self.drain_order_queue(ctx);
        if self.pending_missing.remove(&id) {
            self.try_apply_pending_decision(ctx);
        }
        // Task 1a: with eager sequencing, the sequencer flushes as soon as
        // the accumulated backlog fills a batch — the static `max_batch`, or
        // the adaptive controller's load-driven target (with a threshold of
        // 1 this orders every request immediately, the paper's unbatched
        // behaviour). A smaller backlog is put on the flush-deadline clock
        // so its added latency is bounded independent of the tick cadence.
        if self.config.eager_sequencing {
            let backlog = self.order_backlog();
            if backlog >= self.order_threshold(backlog) {
                self.maybe_order(ctx);
            } else {
                self.schedule_flush_deadline(ctx);
            }
        }
        // A reconfiguration fence closes its epoch conservatively as soon as
        // it is received: fence effects only take hold at an epoch close
        // (`apply_decision`), and the close also settles everything ordered
        // before the fence — the deterministic cut the membership or
        // boundary change happens at. Timer-free: works in the checker too.
        if fence {
            self.start_phase2(ctx);
        }
    }

    /// The batch threshold currently in force: the adaptive controller's
    /// advised batch when configured, the static `max_batch` otherwise.
    fn order_threshold(&self, backlog: usize) -> usize {
        match &self.adaptive {
            Some(controller) => controller.target_batch(backlog),
            None => self.config.max_batch.max(1),
        }
    }

    /// The deadline after which a partial batch is ordered regardless of the
    /// threshold. `None` means the historical behaviour: wait for the
    /// maintenance tick.
    fn flush_delay(&self) -> Option<SimDuration> {
        match &self.adaptive {
            Some(controller) => Some(controller.config().max_delay),
            None => self.config.flush_delay,
        }
    }

    /// Arms the flush deadline for the current partial batch, if a deadline
    /// is configured and the batch does not have one yet.
    ///
    /// Timers cannot be cancelled, so the deadline *instant* is tracked
    /// separately (`flush_deadline`): a timer that fires after its batch
    /// already flushed finds either no deadline (ignored) or a newer, later
    /// one — in which case it re-arms for the remainder, so a fresh partial
    /// batch always gets its full window and `deadline_flushes` counts only
    /// genuine deadline expiries.
    fn schedule_flush_deadline(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        if self.flush_deadline.is_some()
            || self.phase != Phase::Optimistic
            || !self.is_sequencer()
            || self.order_backlog() == 0
        {
            return;
        }
        if let Some(delay) = self.flush_delay() {
            self.flush_deadline = Some(ctx.now() + delay);
            // At most one timer in flight: an earlier-armed timer (same
            // delay, armed earlier) necessarily fires before this deadline
            // and re-arms itself for the remainder.
            if !self.flush_timer_pending {
                ctx.set_timer(delay, FLUSH);
                self.flush_timer_pending = true;
            }
        }
    }

    /// Mirrors the adaptive controller's convergence state into the stats
    /// counters after any controller update.
    fn sync_adaptive_stats(&mut self) {
        if let Some(controller) = &self.adaptive {
            self.stats.batch_target = controller.target() as u64;
            self.stats.target_raises = controller.raises();
            self.stats.target_drops = controller.drops();
        }
    }

    /// Task 1a (Fig. 6 lines 8–10): the sequencer orders unordered requests.
    ///
    /// Only the suffix of `R_delivered` behind `order_cursor` is scanned:
    /// everything before the cursor was examined by an earlier invocation this
    /// epoch and is delivered, settled or queued. The whole batch travels in
    /// one `OrderMsg` broadcast.
    fn maybe_order(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        if self.phase != Phase::Optimistic || !self.is_sequencer() {
            return;
        }
        if self.order_cursor >= self.r_delivered.len() {
            return;
        }
        let mut batch: Seq<RequestId> = Seq::with_capacity(self.order_backlog());
        for id in &self.r_delivered.as_slice()[self.order_cursor..] {
            if !self.delivered_already(id) && !self.order_queued.contains(id) {
                // A relayed copy of a migrated-away request can slip into
                // `R_delivered` after the migration fence pruned the
                // first-hand ones; never order it (its client was already
                // redirected by the pruning replicas).
                if let Some(request) = self.payloads.get(id) {
                    if self.migrated_away(&request.command) {
                        continue;
                    }
                }
                batch.push(*id);
            }
        }
        self.order_cursor = self.r_delivered.len();
        // The whole backlog is examined now: whatever deadline the partial
        // batch had is served (a stale timer finds no deadline and ignores
        // itself).
        self.flush_deadline = None;
        if batch.is_empty() {
            return;
        }
        self.stats.order_messages_sent += 1;
        self.stats.effective_batch.record(batch.len() as u64);
        self.stats.batch_sizes.record(batch.len() as u64);
        if let Some(controller) = self.adaptive.as_mut() {
            controller.note_flush();
        }
        self.sync_adaptive_stats();
        let msg = OrderMsg {
            epoch: self.epoch,
            order: batch.clone(),
            settled: self.settled_watermark(),
        };
        // One allocation of the wire message shared across all recipients.
        ctx.send_all(&self.peers(), OarWire::Order(msg));
        // "The sequencer immediately delivers this message" (§5.3).
        self.accept_order(ctx, batch);
    }

    /// Task 1b (Fig. 6 lines 11–19): accept an ordering for the current epoch.
    fn accept_order(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        order: Seq<RequestId>,
    ) {
        for id in order.iter() {
            if !self.delivered_already(id) && self.order_queued.insert(*id) {
                self.order_queue.push_back(*id);
            }
        }
        self.drain_order_queue(ctx);
    }

    /// Opt-delivers ordered requests whose payload is available, preserving the
    /// sequencer order. O(1) per drained request; the whole drain forms **one**
    /// delivery batch — applied in one [`apply_command_batch`] call (the
    /// speculative half of parallel apply: waves of non-conflicting optimistic
    /// deliveries execute concurrently, each still individually undoable) —
    /// and produces at most one `ReplyBatch` wire per client.
    fn drain_order_queue(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        if self.phase != Phase::Optimistic {
            return;
        }
        // A rejoiner never opt-delivers in the epoch it caught up into: it
        // missed the epoch's earlier order batches, and a mid-epoch start
        // would make its `O_delivered` diverge from the sequencer-order
        // prefix every other replica holds (Lemma 2). The queued orders
        // settle at the conservative close instead.
        // `bug_skip_opt_freeze` (model-checker fault toggle) reintroduces
        // the pre-freeze behaviour so `oar-mc` can re-find the divergence.
        if !self.config.bug_skip_opt_freeze && self.opt_freeze_epoch == Some(self.epoch) {
            return;
        }
        // Collect the deliverable prefix of the queue, stopping at the §5.3
        // epoch cut: proactively cut long epochs to garbage-collect
        // O_delivered. The rest of the queue is re-ordered in the next epoch.
        let mut batch: Vec<RequestId> = Vec::new();
        let mut cut_epoch = false;
        while let Some(&next) = self.order_queue.front() {
            if self.delivered_already(&next) {
                self.order_queue.pop_front();
                self.order_queued.remove(&next);
                continue;
            }
            if !self.payloads.contains_key(&next) {
                break;
            }
            self.order_queue.pop_front();
            self.order_queued.remove(&next);
            batch.push(next);
            if let Some(cut) = self.config.epoch_cut_after {
                if (self.o_delivered.len() + batch.len()) as u64 >= cut && self.is_sequencer() {
                    cut_epoch = true;
                    break;
                }
            }
        }
        let mut pending: PendingReplies<S::Response> = BTreeMap::new();
        if !batch.is_empty() {
            self.opt_deliver_batch(ctx, &batch, &mut pending);
        }
        self.flush_replies(ctx, pending, DeliveryKind::Optimistic);
        if cut_epoch {
            self.start_phase2(ctx);
        }
    }

    /// `Opt-deliver` one drained batch: apply all commands (in parallel waves
    /// when configured — every result is bit-identical to serial apply), then
    /// record deliveries, undo tokens and optimistic replies in delivery
    /// order.
    fn opt_deliver_batch(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        ids: &[RequestId],
        pending: &mut PendingReplies<S::Response>,
    ) {
        let requests: Vec<Request<S::Command>> = ids
            .iter()
            .map(|id| self.payloads.get(id).expect("payload present").clone())
            .collect();
        let commands: Vec<&S::Command> = requests.iter().map(|r| &r.command).collect();
        let results = apply_command_batch(
            &mut self.sm,
            self.config.parallel_apply,
            &mut self.stats,
            &commands,
        );
        for (request, (response, undo)) in requests.iter().zip(results) {
            let id = request.id;
            self.o_delivered.push(id);
            self.undo_stack.push((id, undo));
            self.stats.undo_depth.record(self.undo_stack.len() as u64);
            self.position += 1;
            self.stats.opt_delivered += 1;
            self.log.push(DeliveryRecord::OptDeliver {
                epoch: self.epoch,
                request: id,
                position: self.position,
            });
            self.annotate(ctx, format!("Opt-deliver({id}) @{}", self.position));
            pending.entry(request.client).or_default().push(ReplyItem {
                request: id,
                position: self.position,
                response,
            });
        }
    }

    /// The single reply-construction site of the server: sends the queued
    /// replies of one delivery batch, one `ReplyBatch` wire per client.
    ///
    /// The weight is identical for every reply of the batch (Fig. 6 lines
    /// 12–15 and 27–29): `{p, s}` — `{s}` collapses into it on the sequencer
    /// itself — for optimistic deliveries, the whole group `Π` for
    /// conservative ones. Must be called before the epoch advances, so the
    /// batch is stamped with the epoch its deliveries happened in.
    fn flush_replies(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        pending: PendingReplies<S::Response>,
        kind: DeliveryKind,
    ) {
        if pending.is_empty() {
            return;
        }
        let weight: Weight = match kind {
            DeliveryKind::Optimistic => {
                let mut w = BTreeSet::new();
                w.insert(self.current_sequencer());
                w.insert(self.id);
                w
            }
            DeliveryKind::Conservative => self.group.iter().copied().collect(),
        };
        // The group-wide size of this delivery batch, reported to every
        // client as the pipeline co-adaptation signal (a client's own item
        // count would under-report whenever other clients share the batch).
        let batch_hint: u64 = pending.values().map(|items| items.len() as u64).sum();
        for (client, items) in pending {
            self.stats.reply_messages_sent += 1;
            self.stats.replies_sent += items.len() as u64;
            let batch = ReplyBatch {
                epoch: self.epoch,
                weight: weight.clone(),
                from: self.id,
                kind,
                batch_hint,
                items,
            };
            ctx.send(client, OarWire::Replies(batch));
        }
    }

    /// Task 1c (Fig. 6 lines 20–21): trigger phase 2 when the sequencer is
    /// suspected.
    fn maybe_start_phase2(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        if self.phase == Phase::Optimistic
            && !self.phase2_started
            && self.fd.is_suspected(self.current_sequencer())
        {
            self.start_phase2(ctx);
        }
    }

    /// R-broadcasts `(k, PhaseII)`; the local delivery enters phase 2
    /// immediately.
    fn start_phase2(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        if self.phase2_started || self.phase != Phase::Optimistic {
            return;
        }
        self.phase2_started = true;
        let (wire, targets, local) = self.phase2_cast.broadcast_shared(PhaseIIMsg {
            epoch: self.epoch,
            settled: self.settled_watermark(),
        });
        self.phase2_msg_ids
            .entry(local.payload.epoch)
            .or_default()
            .push(local.id);
        self.record_seen();
        ctx.send_all(&targets, OarWire::PhaseII(wire));
        self.handle_phase2_delivery(ctx, local.payload);
    }

    /// Task 2 entry (Fig. 6 line 22): R-delivery of `(k, PhaseII)`.
    fn handle_phase2_delivery(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        msg: PhaseIIMsg,
    ) {
        if msg.epoch < self.epoch {
            return;
        }
        if msg.epoch > self.epoch {
            self.future_phase2.insert(msg.epoch);
            return;
        }
        if self.phase == Phase::Conservative {
            return;
        }
        self.enter_phase2(ctx);
    }

    /// Enters the conservative phase of the current epoch: propose our
    /// `(O_delivered, O_notdelivered)` to the epoch's consensus.
    fn enter_phase2(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        self.phase = Phase::Conservative;
        self.phase2_started = true;
        self.stats.phase2_entered += 1;
        self.annotate(ctx, format!("PhaseII(epoch={})", self.epoch));

        // Fig. 6 line 23: O_notdelivered = (R_delivered ⊖ A_delivered) ⊖ O_delivered.
        let o_notdelivered: Seq<RequestId> = self
            .r_delivered
            .iter()
            .filter(|id| !self.delivered_already(id))
            .copied()
            .collect();

        // The round-1 coordinator is the successor of the (suspected)
        // sequencer, so fail-over does not wait on the crashed process.
        let n = self.group.len();
        let first_coordinator = self.group[(self.epoch as usize + 1) % n];
        let mut consensus = MajConsensus::new(
            self.epoch,
            self.id,
            self.group.clone(),
            first_coordinator,
            self.config.consensus,
        );
        let value = CnsvValue {
            o_delivered: self.o_delivered.clone(),
            o_notdelivered,
        };
        let output = consensus.propose(value);
        self.consensus = Some(consensus);
        self.dispatch_consensus_output(ctx, output.messages, output.decision);

        // Feed consensus messages that arrived before we entered phase 2.
        let buffered = self
            .buffered_consensus
            .remove(&self.epoch)
            .unwrap_or_default();
        for (from, wire) in buffered {
            self.feed_consensus(ctx, from, wire);
        }
        // The consensus needs the current suspicion view to make progress when
        // the coordinator is already dead.
        self.push_suspects_to_consensus(ctx);
    }

    fn push_suspects_to_consensus(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
    ) {
        if let Some(consensus) = self.consensus.as_mut() {
            let suspects = self.fd.suspects().clone();
            let output = consensus.update_suspects(&suspects);
            self.dispatch_consensus_output(ctx, output.messages, output.decision);
        }
    }

    fn feed_consensus(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        from: ProcessId,
        wire: ConsensusWire<CnsvValue>,
    ) {
        if let Some(consensus) = self.consensus.as_mut() {
            let output = consensus.on_wire(from, wire);
            self.dispatch_consensus_output(ctx, output.messages, output.decision);
        }
    }

    fn dispatch_consensus_output(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        messages: Vec<ConsensusSend<CnsvValue>>,
        decision: Option<Decision<CnsvValue>>,
    ) {
        for send in messages {
            self.stats.consensus_wires_sent += 1;
            self.stats.consensus_messages_sent += send.targets.len() as u64;
            if let [to] = send.targets[..] {
                ctx.send(to, OarWire::Consensus(send.wire));
            } else {
                // Group-wide wire (Propose / Decide): one shared allocation
                // for every recipient instead of a pre-clone per destination.
                ctx.send_all(&send.targets, OarWire::Consensus(send.wire));
            }
        }
        if let Some(decision) = decision {
            self.set_pending_decision(ctx, decision);
        }
    }

    /// Adopts the epoch's decision and records which payloads it still waits
    /// for. Requests decided by others but not yet received here will arrive
    /// by the agreement property of R-multicast; each arrival knocks its id
    /// out of `pending_missing` (O(1)) and the decision applies when the set
    /// drains — no periodic rescan needed.
    fn set_pending_decision(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        decision: Decision<CnsvValue>,
    ) {
        self.pending_missing = decision
            .iter()
            .flat_map(|(_, v)| v.o_delivered.iter().chain(v.o_notdelivered.iter()))
            .filter(|id| !self.payloads.contains_key(id))
            .copied()
            .collect();
        self.pending_decision = Some(decision);
        self.try_apply_pending_decision(ctx);
    }

    /// Applies the pending decision if every request it mentions is locally
    /// known (the missing set is empty).
    fn try_apply_pending_decision(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
    ) {
        if self.pending_decision.is_none()
            || self.phase != Phase::Conservative
            || !self.pending_missing.is_empty()
        {
            return;
        }
        let decision = self.pending_decision.take().expect("checked above");
        self.apply_decision(ctx, decision);
    }

    /// Task 2 body (Fig. 6 lines 24–32).
    fn apply_decision(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        decision: Decision<CnsvValue>,
    ) {
        let outcome = cnsv_order_outcome(&self.o_delivered, &decision);

        // Lines 25–26: Opt-undeliver the wrongly ordered requests, in reverse
        // delivery order (footnote 2).
        for id in outcome.bad.iter().rev() {
            let (undone_id, token) = self
                .undo_stack
                .pop()
                .expect("undo stack holds every current-epoch optimistic delivery");
            debug_assert_eq!(&undone_id, id, "Bad must be a suffix of O_delivered");
            self.sm.undo(token);
            self.position -= 1;
            self.stats.opt_undelivered += 1;
            self.log.push(DeliveryRecord::OptUndeliver {
                epoch: self.epoch,
                request: *id,
            });
            self.annotate(ctx, format!("Opt-undeliver({id})"));
        }

        // Lines 27–29: A-deliver the new sequence and reply with weight Π,
        // one ReplyBatch per client for the whole decision. The decision is
        // one delivery batch: with parallel apply configured its
        // non-conflicting commands execute in concurrent waves, bit-identical
        // to this loop applying them one by one. The undo tokens are dropped:
        // A-deliveries are settled and never rolled back.
        let mut pending: PendingReplies<S::Response> = BTreeMap::new();
        if !outcome.new.is_empty() {
            let requests: Vec<Request<S::Command>> = outcome
                .new
                .iter()
                .map(|id| self.payloads.get(id).expect("payload present").clone())
                .collect();
            let commands: Vec<&S::Command> = requests.iter().map(|r| &r.command).collect();
            let results = apply_command_batch(
                &mut self.sm,
                self.config.parallel_apply,
                &mut self.stats,
                &commands,
            );
            for (request, (response, _undo)) in requests.iter().zip(results) {
                let id = request.id;
                self.position += 1;
                self.stats.a_delivered += 1;
                self.log.push(DeliveryRecord::ADeliver {
                    epoch: self.epoch,
                    request: id,
                    position: self.position,
                });
                self.annotate(ctx, format!("A-deliver({id}) @{}", self.position));
                pending.entry(request.client).or_default().push(ReplyItem {
                    request: id,
                    position: self.position,
                    response,
                });
            }
        }
        // Flushed while `epoch` is still the closing epoch, so the batch is
        // stamped correctly.
        self.flush_replies(ctx, pending, DeliveryKind::Conservative);

        // Line 30: A_delivered ← A_delivered ⊕ (O_delivered ⊖ Bad) ⊕ New.
        // Appended in place: O(epoch length), not O(|A_delivered|).
        let kept = self.o_delivered.subtract(&outcome.bad);
        let mut decided_now: Vec<RequestId> = Vec::with_capacity(kept.len() + outcome.new.len());
        let mut reconfigs: Vec<ReconfigCmd> = Vec::new();
        for id in kept.iter().chain(outcome.new.iter()) {
            self.settled.insert(*id);
            self.a_delivered.push(*id);
            decided_now.push(*id);
            // The settled request (with payload) joins the catch-up delta —
            // retained past the payload GC until the next snapshot compacts
            // it, so a donor can always serve snapshot + delta.
            let request = self.payloads.get(id).expect("payload present").clone();
            if let Some(cmd) = &request.reconfig {
                reconfigs.push(cmd.clone());
            }
            self.settled_log.push_back(request);
        }
        // The payloads of this epoch's decisions become prunable once every
        // live replica acknowledges the epoch.
        if !decided_now.is_empty() {
            self.gc_pending.insert(self.epoch, decided_now);
        }

        // Settled reconfiguration fences take effect here — after the whole
        // batch applied (so every command settled up to this epoch executed
        // under the *old* membership/boundaries) and before the next epoch
        // opens (so everything after runs under the new ones): the
        // deterministic cut at the epoch boundary. Epochs close in order
        // with identical decisions group-wide, so every replica applies the
        // same reconfigurations at the same position.
        for cmd in reconfigs {
            self.apply_reconfig(ctx, cmd);
        }

        // Lines 31–32: reset the optimistic state and move to the next epoch.
        self.o_delivered = Seq::new();
        self.undo_stack.clear();
        self.order_queue.clear();
        self.order_queued.clear();
        self.order_cursor = 0;
        self.epoch += 1;
        self.phase = Phase::Optimistic;
        self.phase2_started = false;
        self.consensus = None;
        self.stats.epochs_completed += 1;
        // Right here the state machine holds exactly the settled prefix
        // (every optimistic delivery was either kept — now settled — or
        // undone, and the new epoch has not delivered yet): the digest a
        // rejoiner must reproduce, and the state a snapshot captures.
        self.settled_digest = self.sm.digest();
        self.stats
            .a_delivered_len
            .record(self.a_delivered.len() as u64);
        if let Some(every) = self.config.snapshot_every {
            // Epochs close in order, group-wide, with identical decisions,
            // so every replica snapshots at the same positions.
            if self.epoch.is_multiple_of(every) {
                self.take_snapshot();
            }
        }
        self.annotate(ctx, format!("epoch {} starts", self.epoch));

        // Serve the catch-up transfers held for members a fence just
        // admitted — after the epoch reset, so the reply carries the fresh
        // epoch and phase (a mid-close snapshot would point the rejoiner at
        // a consensus instance the group has already finished).
        if !self.held_catch_ups.is_empty() {
            let held = std::mem::take(&mut self.held_catch_ups);
            for (peer, attempt) in held {
                if self.group.contains(&peer) {
                    self.serve_catch_up(ctx, peer, attempt);
                } else {
                    self.held_catch_ups.push((peer, attempt));
                }
            }
        }

        // Announce the advanced watermark so peers can prune, and prune
        // whatever the group has already acknowledged.
        ctx.send_all(
            &self.peers(),
            OarWire::Watermark {
                settled: self.settled_watermark(),
            },
        );
        self.maybe_gc();

        // Prune the reception buffer: settled requests never need re-ordering.
        let settled = &self.settled;
        self.r_delivered = self
            .r_delivered
            .iter()
            .filter(|id| !settled.contains(id))
            .copied()
            .collect();

        // Replay buffered messages that were waiting for this epoch.
        let epoch = self.epoch;
        if let Some(orders) = self.future_orders.remove(&epoch) {
            for order in orders {
                self.accept_order(ctx, order);
            }
        }
        if self.config.eager_sequencing {
            self.maybe_order(ctx);
        }
        if self.future_phase2.remove(&epoch) {
            self.enter_phase2(ctx);
        }
        // The rotating rule may hand the new epoch to a server that is
        // *already* suspected (e.g. a crashed replica whose turn comes round
        // again): no fresh FD event will fire, so re-check Task 1c here.
        // `bug_skip_handoff_recheck` (model-checker fault toggle) omits the
        // re-check so `oar-mc` can re-find the resulting epoch stall.
        if !self.config.bug_skip_handoff_recheck {
            self.maybe_start_phase2(ctx);
        }
    }

    /// Reacts to failure-detector events.
    fn handle_fd_events(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        events: Vec<FdEvent>,
    ) {
        if events.is_empty() {
            return;
        }
        let suspicion_changed = events
            .iter()
            .any(|e| matches!(e, FdEvent::Suspect(_) | FdEvent::Restore(_)));
        if suspicion_changed {
            self.maybe_start_phase2(ctx);
            self.push_suspects_to_consensus(ctx);
            // A newly suspected replica no longer holds up the payload GC.
            self.maybe_gc();
        }
    }

    // ------------------------------------------------------------------
    // membership reconfiguration & shard migration (fence commands)
    // ------------------------------------------------------------------

    /// Applies one settled reconfiguration fence. Runs inside
    /// [`Self::apply_decision`], at the epoch boundary.
    fn apply_reconfig(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        cmd: ReconfigCmd,
    ) {
        match cmd {
            ReconfigCmd::Replace { old, new } => self.apply_replace(ctx, old, new),
            ReconfigCmd::Migrate { record, to_members } => {
                self.apply_migrate(ctx, record, &to_members)
            }
        }
    }

    /// `Replace { old, new }`: fences `old` out of every membership-derived
    /// structure — quorum (consensus group), sequencer rotation and GC
    /// accounting — and admits `new` into the same slot, preserving the
    /// rotation order. `new` joins with live state through the ordinary
    /// catch-up wires (it is spawned with [`OarServer::recovering`]); until
    /// its first watermark announcement it holds the payload GC, exactly
    /// like any unheard peer.
    fn apply_replace(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        old: ProcessId,
        new: ProcessId,
    ) {
        if !self.group.contains(&old) || self.group.contains(&new) {
            // Already applied (duplicate fence), or a bad target: ignore.
            return;
        }
        let slot = self
            .group
            .iter()
            .position(|&p| p == old)
            .expect("checked above");
        self.group[slot] = new;
        self.request_cast.replace_member(old, new);
        self.phase2_cast.replace_member(old, new);
        self.fd.replace_member(old, new, ctx.now());
        // The fenced replica's watermark no longer participates in the GC
        // minimum; the newcomer starts unheard (0), holding the GC until its
        // catch-up completes — conservative, never unsafe.
        self.peer_settled.remove(&old);
        self.stats.reconfigs_applied += 1;
        self.annotate(ctx, format!("reconfig: replace {old} -> {new}"));
        // Note: if this server *is* `old` (fenced while still alive), it has
        // just removed itself from its own group view: it will never be
        // sequencer again, never count towards quorum, and its peers ignore
        // its watermarks. It keeps serving reads of its local state but is
        // protocol-inert — the conservative way to leave.
    }

    /// `Migrate { record, to_members }`: the donor half extracts the settled
    /// entries of the migrated range from the state machine (dropping them
    /// locally) and ships them to every recipient member; both halves adopt
    /// the record and bump the routing-boundary epoch, arming the door
    /// redirect for stale-routed requests.
    fn apply_migrate(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        record: MigrationRecord,
        to_members: &[ProcessId],
    ) {
        if self
            .migrations
            .iter()
            .any(|r| r.route_epoch == record.route_epoch)
        {
            return; // duplicate fence
        }
        self.route_epoch = self.route_epoch.max(record.route_epoch);
        self.stats.reconfigs_applied += 1;
        if record.to_group == self.config.group {
            self.stats.migrations_in += 1;
            self.migrations.push(record);
            return;
        }
        if record.from_group != self.config.group {
            // A foreign record (possible when fences are broadcast wider
            // than the two groups): routing knowledge only.
            self.migrations.push(record);
            return;
        }
        // Donor: extract-and-drop the settled entries of the range. This
        // runs after the closing epoch's batch applied and before the next
        // epoch delivers, so every donor replica cuts the exact same state.
        let entries = self.sm.extract_range(&record.range).unwrap_or_default();
        let digest = entries_digest(&entries);
        self.stats.migrations_out += 1;
        self.stats.migrate_out_digest = digest;
        self.annotate(
            ctx,
            format!(
                "reconfig: migrate [{}..{:?}) -> {:?} ({} entries)",
                record.range.start,
                record.range.end,
                record.to_group,
                entries.len()
            ),
        );
        for &to in to_members {
            self.stats.migrate_state_wires += 1;
            ctx.send(
                to,
                OarWire::MigrateState {
                    record: record.clone(),
                    entries: entries.clone(),
                    digest,
                },
            );
        }
        self.migrations.push(record);
        // Unsettled requests for migrated keys must not be ordered here any
        // more (their effects would resurrect the range): drop them from the
        // reception buffer and point their clients at the new owner.
        self.prune_migrated_requests(ctx);
    }

    /// Drops every unsettled buffered request whose key this group just
    /// migrated away and sends each affected client one `Redirect` naming
    /// exactly its dropped ids. The client re-sends those — and only those —
    /// to the new owner under the same request ids, so each dropped request
    /// settles exactly once, at the recipient; requests this group already
    /// ordered are *not* listed (their effect travels in the hand-off) and
    /// are therefore never re-executed elsewhere.
    fn prune_migrated_requests(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        let mut per_client: BTreeMap<ProcessId, Vec<RequestId>> = BTreeMap::new();
        for id in self.r_delivered.iter() {
            if self.settled.contains(id) {
                continue;
            }
            let Some(request) = self.payloads.get(id) else {
                continue;
            };
            if self.migrated_away(&request.command) {
                per_client.entry(request.client).or_default().push(*id);
            }
        }
        if per_client.is_empty() {
            return;
        }
        let gone: HashSet<RequestId> = per_client.values().flatten().copied().collect();
        self.r_delivered = self
            .r_delivered
            .iter()
            .filter(|id| !gone.contains(id))
            .copied()
            .collect();
        self.order_cursor = self.order_cursor.min(self.r_delivered.len());
        for id in &gone {
            self.payloads.remove(id);
            // Keep the caster's seen entry: a late relay of the dropped
            // request must stay suppressed, not re-delivered.
        }
        self.stats.payloads.record(self.payloads.len() as u64);
        self.stats.redirected += gone.len() as u64;
        let records = self.migrations.clone();
        for (client, dropped) in per_client {
            ctx.send(
                client,
                OarWire::Redirect {
                    records: records.clone(),
                    dropped,
                },
            );
        }
    }

    /// Whether `command` touches a key this group has migrated away (the
    /// donor-side half of the routing door check).
    fn migrated_away(&self, command: &S::Command) -> bool {
        if self.migrations.is_empty() {
            return false;
        }
        let Some(key) = S::command_key(command) else {
            return false;
        };
        // Newest covering record wins, mirroring `ShardRouter::route_key`.
        for record in self.migrations.iter().rev() {
            if record.range.contains(key) {
                return record.from_group == self.config.group
                    && record.to_group != self.config.group;
            }
        }
        false
    }

    /// Ingests a donor's `MigrateState` hand-off: verifies the digest, then
    /// feeds a *deterministically identified* install request through this
    /// group's ordinary total order. Every donor replica sends the hand-off
    /// to every recipient member, and every recipient crafts the bit-same
    /// request — the multicast seen-set dedups the copies, so the range
    /// installs exactly once, at one agreed position. Install is
    /// insert-if-absent: a client write redirected ahead of the install
    /// keeps its effect whichever side of the install it lands on.
    fn handle_migrate_state(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        record: MigrationRecord,
        entries: Vec<(String, String)>,
        digest: u64,
    ) {
        if record.to_group != self.config.group {
            return;
        }
        if entries_digest(&entries) != digest {
            self.annotate(ctx, "migrate-state digest mismatch dropped".to_string());
            return;
        }
        self.stats.migrate_in_digest = digest;
        let Some(command) = S::install_range_command(entries) else {
            return;
        };
        // Deterministic identity: any group member, fed by any donor,
        // produces the same id — `u64::MAX - route_epoch` cannot collide
        // with a client's own (small, counting-up) sequence numbers.
        let origin = *self.group.iter().min().expect("group is never empty");
        let id = oar_channels::MsgId::new(origin, u64::MAX - record.route_epoch);
        let request = Request {
            id,
            client: origin,
            group: self.config.group,
            txn: None,
            reconfig: None,
            route_epoch: self.route_epoch,
            command,
        };
        let wire = CastWire {
            id,
            origin,
            payload: request,
        };
        let (delivery, relay) = self.request_cast.on_wire_shared(wire);
        if let Some((wire, targets)) = relay {
            ctx.send_all(&targets, OarWire::Request(wire));
        }
        if let Some(delivery) = delivery {
            self.handle_request_delivery(ctx, delivery);
        }
    }

    // ------------------------------------------------------------------
    // Merkle anti-entropy (settled-state repair)
    // ------------------------------------------------------------------

    /// The Merkle tree over this replica's current settled leaves, rebuilt
    /// on demand (`None` when the machine does not expose leaves). Derived
    /// state: never stored, so it needs no fork/digest bookkeeping.
    fn build_sync_tree(&self) -> Option<MerkleTree> {
        self.sm.anti_entropy_leaves().map(MerkleTree::build)
    }

    /// Tick-paced anti-entropy probe: send our Merkle root (at our settled
    /// position) to one peer, rotating the target each tick. A peer at the
    /// same position with a different root answers with its root node,
    /// starting the O(log n) divergence descent.
    fn maybe_sync(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        if !self.config.anti_entropy {
            return;
        }
        // Advance the vote-deadline clock and expire votes that could not
        // resolve — a member crashed before answering, or the ballots split
        // with no majority. Dropping the entry un-wedges `start_leaf_vote`'s
        // idempotence guard, so the next divergent probe retries the key
        // from fresh state. This runs before the quiescence gate: a wedged
        // vote must clear even while traffic keeps the undo stack busy.
        self.sync_tick += 1;
        let deadline_tick = self.sync_tick;
        self.sync_votes.retain(|_, (started, _)| {
            deadline_tick.saturating_sub(*started) <= SYNC_VOTE_EXPIRY_TICKS
        });
        // Probe only while quiescent: with optimistic deliveries in flight
        // the machine's leaves are speculative, and same-settled peers would
        // descend into differences the epoch close is about to reconcile
        // anyway. An idle tail epoch would gate probes forever, so when two
        // consecutive ticks see the same open optimistic epoch the sequencer
        // cuts it conservatively and lets the undo stack drain.
        if !self.undo_stack.is_empty() {
            let mark = (self.epoch, self.o_delivered.len() as u64);
            if self.sync_idle_mark == Some(mark)
                && self.phase == Phase::Optimistic
                && self.current_sequencer() == self.id
            {
                self.start_phase2(ctx);
            }
            self.sync_idle_mark = Some(mark);
            return;
        }
        self.sync_idle_mark = None;
        let Some(tree) = self.build_sync_tree() else {
            return;
        };
        let peers = self.peers();
        if peers.is_empty() {
            return;
        }
        let peer = peers[(self.sync_cursor as usize) % peers.len()];
        self.sync_cursor += 1;
        self.stats.sync_probes += 1;
        ctx.send(
            peer,
            OarWire::SyncProbe {
                settled: self.total_settled(),
                root: tree.root(),
                leaves: tree.leaf_count() as u64,
            },
        );
    }

    /// Ships this replica's full settled key set to `peer` — the anti-entropy
    /// fallback when two same-settled trees pad to different leaf widths and
    /// the heap-index descent cannot run. Counted with the descent wires: the
    /// O(log n) gate only measures shape-preserving divergences, and a shape
    /// divergence costs O(n) keys on the wire by necessity.
    fn send_sync_keys(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        peer: ProcessId,
        settled: u64,
        reply_requested: bool,
    ) {
        let Some(leaves) = self.sm.anti_entropy_leaves() else {
            return;
        };
        self.stats.sync_node_wires += 1;
        ctx.send(
            peer,
            OarWire::SyncKeys {
                settled,
                keys: leaves.into_iter().map(|(key, _)| key).collect(),
                reply_requested,
            },
        );
    }

    /// Starts a leaf repair vote for `key`: records our own value and asks
    /// every peer for theirs. Idempotent while the vote is in flight; an
    /// in-flight vote that cannot resolve expires after
    /// [`SYNC_VOTE_EXPIRY_TICKS`] (see [`Self::maybe_sync`]), so the guard
    /// never blocks repair permanently.
    fn start_leaf_vote(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        key: String,
    ) {
        if self.sync_votes.contains_key(&key) {
            return;
        }
        let mut votes = BTreeMap::new();
        votes.insert(self.id, self.sm.anti_entropy_value(&key));
        self.sync_votes.insert(key.clone(), (self.sync_tick, votes));
        for peer in self.peers() {
            ctx.send(peer, OarWire::SyncLeafRequest { key: key.clone() });
        }
    }

    /// Records one peer's value for a divergent key and settles the vote
    /// once a strict group majority agrees on a value: the majority value is
    /// installed locally (`None` deletes). A corrupted minority replica
    /// heals itself; a healthy replica voting against a corrupted peer finds
    /// its own value in the majority and changes nothing. Requires 3+
    /// replicas to out-vote a corrupt member — with 2 the vote stays split
    /// and expires undecided.
    fn record_leaf_vote(&mut self, key: String, from: ProcessId, value: Option<String>) {
        if !self.group.contains(&from) {
            return;
        }
        let Some((_, votes)) = self.sync_votes.get_mut(&key) else {
            return;
        };
        votes.insert(from, value);
        let needed = majority(self.group.len());
        let mut winner: Option<Option<String>> = None;
        for candidate in votes.values() {
            if votes.values().filter(|v| *v == candidate).count() >= needed {
                winner = Some(candidate.clone());
                break;
            }
        }
        match winner {
            Some(value) => {
                self.sync_votes.remove(&key);
                // Repair only while quiescent: overwriting a key with an
                // optimistic delivery in flight would fight the undo stack.
                // A dropped vote is retried by the next quiescent probe.
                if self.undo_stack.is_empty() && self.sm.anti_entropy_repair(&key, value.as_deref())
                {
                    self.stats.sync_repairs += 1;
                }
            }
            None => {
                if self.sync_votes.get(&key).map(|(_, v)| v.len()) == Some(self.group.len()) {
                    // Everyone answered, no majority: give up this round
                    // (the next probe retries from fresh state). Short of
                    // that — a member crashed, so not everyone *can* answer —
                    // the tick deadline expires the vote instead.
                    self.sync_votes.remove(&key);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // payload garbage collection (epoch watermark)
    // ------------------------------------------------------------------

    /// Records a peer's settled-epoch watermark (piggybacked on ordering,
    /// PhaseII and heartbeat traffic, or announced explicitly at epoch close)
    /// and prunes whatever became acknowledged.
    fn note_settled(&mut self, from: ProcessId, settled: u64) {
        if from == self.id || !self.group.contains(&from) {
            return;
        }
        let known = self.peer_settled.entry(from).or_insert(0);
        if settled > *known {
            *known = settled;
            self.maybe_gc();
        }
    }

    /// Prunes the payloads of requests decided in epochs every live replica
    /// has acknowledged — and ages the same epochs out of the reliable-
    /// multicast duplicate-suppression sets, which would otherwise grow with
    /// the lifetime of the server. A server's own watermark participates in
    /// the minimum, so nothing an unfinished local epoch still needs is
    /// touched. Forgetting a settled request's multicast id is safe: should
    /// a stale relay still arrive, `handle_request_delivery` discards it via
    /// the `settled` set (and `handle_phase2_delivery` via the epoch check).
    fn maybe_gc(&mut self) {
        let floor = self.acked_watermark();
        let mut changed = false;
        while self.gc_floor < floor {
            if let Some(ids) = self.gc_pending.remove(&self.gc_floor) {
                for id in ids {
                    if self.payloads.remove(&id).is_some() {
                        self.stats.payloads_pruned += 1;
                        changed = true;
                    }
                    self.request_cast.forget(&id);
                }
            }
            self.gc_floor += 1;
        }
        // PhaseII broadcasts of acknowledged epochs (keyed separately: their
        // multicast ids are per-origin counters, not request ids).
        while let Some((&epoch, _)) = self.phase2_msg_ids.first_key_value() {
            if epoch >= self.gc_floor {
                break;
            }
            let ids = self.phase2_msg_ids.remove(&epoch).expect("peeked key");
            for id in ids {
                self.phase2_cast.forget(&id);
            }
        }
        if changed {
            self.stats.payloads.record(self.payloads.len() as u64);
        }
        self.record_seen();
    }

    // ------------------------------------------------------------------
    // durable snapshots, log compaction, catch-up (recovery layer)
    // ------------------------------------------------------------------

    /// Captures the settled state into a fresh snapshot and compacts the
    /// log: the retained `A_delivered` entries fold into the chained
    /// order-hash and are pruned, together with the settled-log delta they
    /// correspond to. Must run at an epoch boundary, where the state
    /// machine holds exactly the settled prefix. A machine without snapshot
    /// support keeps the historical unbounded log (catch-up then replays the
    /// full history).
    fn take_snapshot(&mut self) {
        let Some(image) = self.sm.snapshot() else {
            return;
        };
        let position = self.total_settled();
        let mut order_hash = self.a_base_hash;
        for id in self.a_delivered.iter() {
            order_hash = chain_hash(order_hash, *id);
        }
        self.snapshot = SnapshotRecord {
            image: Some(image),
            position,
            digest: self.settled_digest,
            order_hash,
        };
        self.stats.snapshots_taken += 1;
        self.stats.compacted += self.a_delivered.len() as u64;
        self.a_base = position;
        self.a_base_hash = order_hash;
        self.a_delivered = Seq::new();
        self.settled_log.clear();
        self.stats.a_delivered_len.record(0);
    }

    /// Sends the current catch-up attempt's `CatchUpRequest` to a donor and
    /// arms the retry clock. Donors rotate per attempt (a crashed donor must
    /// not block rejoin) and the retry delay backs off exponentially, capped
    /// at 2^[`CATCHUP_BACKOFF_CAP`] × [`OarConfig::catch_up_retry`].
    fn send_catch_up_request(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        let attempt = self.catch_up_attempt.expect("only called while recovering");
        let peers = self.peers();
        let donor = peers[(attempt as usize) % peers.len()];
        self.stats.catch_up_requests += 1;
        ctx.send(
            donor,
            OarWire::CatchUpRequest {
                attempt,
                group: self.group.clone(),
            },
        );
        self.annotate(ctx, format!("catch-up attempt {attempt} -> {donor}"));
        let backoff = 1u64 << (attempt.min(CATCHUP_BACKOFF_CAP as u64) as u32);
        ctx.set_timer(self.config.catch_up_retry.saturating_mul(backoff), CATCHUP);
    }

    /// Serves a rejoining peer the state transfer it needs: the latest
    /// snapshot, the settled delta since it, the settled-id set and GC floor
    /// for its door-drop filters, and the digests it must reproduce.
    fn serve_catch_up(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        to: ProcessId,
        attempt: u64,
    ) {
        self.stats.catch_up_replies += 1;
        // Sorted so the reply (and thus the simulation schedule) does not
        // depend on `HashSet` iteration order.
        let mut settled: Vec<RequestId> = self.settled.iter().copied().collect();
        settled.sort_unstable();
        // Sorted so the reply does not depend on `HashMap` iteration order.
        let mut pending: Vec<Request<S::Command>> = self.payloads.values().cloned().collect();
        pending.sort_unstable_by_key(|r| r.id);
        let reply = CatchUpReply {
            attempt,
            image: self.snapshot.image.clone(),
            snapshot_position: self.snapshot.position,
            snapshot_digest: self.snapshot.digest,
            snapshot_order_hash: self.snapshot.order_hash,
            delta: self.settled_log.iter().cloned().collect(),
            epoch: self.epoch,
            conservative: self.phase == Phase::Conservative,
            gc_floor: self.gc_floor,
            settled,
            digest: self.settled_digest,
            pending,
            group: self.group.clone(),
            route_epoch: self.route_epoch,
            migrations: self.migrations.clone(),
        };
        self.annotate(
            ctx,
            format!(
                "catch-up reply -> {to}: snapshot @{} + delta {}",
                self.snapshot.position,
                self.settled_log.len()
            ),
        );
        ctx.send(to, OarWire::CatchUpReply(Box::new(reply)));
    }

    /// Installs a donor's state transfer and resumes participation: install
    /// the image, adopt the donor's compacted prefix (base position + chain
    /// hash) and snapshot, replay the settled delta, adopt the settled set
    /// and GC floor, verify the digest, then re-arm the maintenance tick,
    /// announce the watermark and replay the wires buffered during the
    /// transfer. A digest mismatch abandons the attempt and retries with the
    /// next donor.
    fn install_catch_up(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        donor: ProcessId,
        reply: CatchUpReply<S::Command>,
    ) {
        let retry = |server: &mut Self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>| {
            server.catch_up_attempt = Some(reply.attempt + 1);
            server.send_catch_up_request(ctx);
        };
        if !reply.group.contains(&self.id) && reply.group.iter().any(|p| !self.group.contains(p)) {
            // The donor still rosters the member this replica is replacing:
            // it has not applied the `Replace` fence yet, and its phase-2
            // casts still target the old roster — installing now would
            // silently miss every decision settled between this transfer and
            // the fence. Stay recovering and retry until a donor has fenced
            // us in.
            self.annotate(ctx, format!("catch-up donor {donor} has not fenced us in"));
            return retry(self, ctx);
        }
        if let Some(image) = &reply.image {
            if !self.sm.install(image) {
                // An image of a foreign type cannot be installed; the state
                // is untouched, so another attempt is safe.
                self.annotate(ctx, format!("catch-up image from {donor} rejected"));
                return retry(self, ctx);
            }
            debug_assert_eq!(self.sm.digest(), reply.snapshot_digest);
        }
        // Adopt the donor's snapshot and compacted prefix verbatim: after
        // the delta replay below, this replica's (a_base, a_delivered,
        // settled_log, snapshot) are element-identical to the donor's
        // settled state.
        self.snapshot = SnapshotRecord {
            image: reply.image.clone(),
            position: reply.snapshot_position,
            digest: reply.snapshot_digest,
            order_hash: reply.snapshot_order_hash,
        };
        self.a_base = reply.snapshot_position;
        self.a_base_hash = reply.snapshot_order_hash;
        self.position = reply.snapshot_position;
        self.a_delivered = Seq::new();
        for request in &reply.delta {
            // Replay, discarding undo tokens: settled deliveries never roll
            // back. Responses are discarded too — the original replies went
            // out (from the survivors) before the crash.
            let _ = self.sm.apply(&request.command);
            self.position += 1;
            self.a_delivered.push(request.id);
        }
        self.settled_log = reply.delta.clone().into();
        self.settled = reply.settled.iter().copied().collect();
        self.epoch = reply.epoch;
        self.opt_freeze_epoch = Some(reply.epoch);
        self.gc_floor = reply.gc_floor;
        // Adopt the donor's roster: a `Replace` fence that settled while
        // this replica was down re-rostered the group, and quorum, rotation
        // and heartbeat accounting must see the current members. (A replica
        // the fence removed keeps its stale roster — it is no longer a
        // member, so nothing it counts matters.)
        if reply.group != self.group && reply.group.contains(&self.id) {
            let removed: Vec<ProcessId> = self
                .group
                .iter()
                .copied()
                .filter(|p| !reply.group.contains(p))
                .collect();
            let added: Vec<ProcessId> = reply
                .group
                .iter()
                .copied()
                .filter(|p| !self.group.contains(p))
                .collect();
            for (old, new) in removed.into_iter().zip(added) {
                self.request_cast.replace_member(old, new);
                self.phase2_cast.replace_member(old, new);
                self.fd.replace_member(old, new, ctx.now());
                self.peer_settled.remove(&old);
            }
            self.group = reply.group.clone();
        }
        // Adopt the donor's routing boundary, so the stale-epoch door check
        // and `migrated_away` agree with the rest of the group about keys
        // migrated while this replica was down.
        if reply.route_epoch > self.route_epoch {
            self.route_epoch = reply.route_epoch;
            self.migrations = reply.migrations.clone();
        }
        self.settled_digest = self.sm.digest();
        if self.settled_digest != reply.digest {
            // The transfer did not reproduce the donor's settled state. With
            // an image a re-install overwrites everything, so retrying is
            // safe; without one the machine cannot be reset and divergence
            // is unrecoverable.
            assert!(
                reply.image.is_some(),
                "catch-up digest mismatch on a non-snapshottable machine"
            );
            self.annotate(ctx, format!("catch-up digest mismatch from {donor}"));
            return retry(self, ctx);
        }
        self.stats.catch_up_delta = reply.delta.len() as u64;
        self.stats.catch_up_snapshot_position = reply.snapshot_position;
        self.stats
            .a_delivered_len
            .record(self.a_delivered.len() as u64);
        self.catch_up_attempt = None;
        self.annotate(
            ctx,
            format!(
                "caught up from {donor}: snapshot @{} + delta {} -> pos {}, epoch {}",
                reply.snapshot_position,
                reply.delta.len(),
                self.position,
                self.epoch
            ),
        );
        // Resume participation: maintenance tick (heartbeats re-admit this
        // replica at its peers' failure detectors) and an immediate
        // watermark announcement so the peers' payload GC stops waiting on
        // the pre-crash watermark.
        ctx.set_timer(self.config.tick_interval, TICK);
        ctx.send_all(
            &self.peers(),
            OarWire::Watermark {
                settled: self.settled_watermark(),
            },
        );
        // Adopt the donor's unsettled payloads: their multicast spread while
        // this replica was down and will never be re-sent, yet sequencer
        // rotation may make this replica responsible for ordering them. The
        // fill path marks them seen without re-relaying.
        self.handle_payload_fill(ctx, reply.pending.clone());
        // Replay what arrived during the transfer; the door checks (settled
        // set, epoch guards, GC floor) discard whatever it already covered.
        let buffered = std::mem::take(&mut self.recovery_buffer);
        for (from, msg) in buffered {
            self.on_message(ctx, from, msg);
        }
        // The donor's current epoch may already be conservative — its
        // PhaseII broadcast finished spreading while this replica was down
        // and will never be re-sent, so the donor's phase travels in the
        // reply instead.
        if reply.conservative && self.epoch == reply.epoch && self.phase == Phase::Optimistic {
            self.enter_phase2(ctx);
        }
        // If this replica is the frozen epoch's sequencer, nobody else can
        // order, so the epoch would never reach its cut: close it
        // conservatively instead. Re-ordering from scratch is not an option —
        // the orders issued before the crash already shaped the peers'
        // `O_delivered` prefixes.
        if self.opt_freeze_epoch == Some(self.epoch)
            && self.phase == Phase::Optimistic
            && self.current_sequencer() == self.id
        {
            self.start_phase2(ctx);
        }
    }

    /// Answers a peer's `PayloadFetch` with every requested payload this
    /// server still holds — unsettled ones from the live payload map,
    /// settled ones from the catch-up delta.
    fn serve_payload_fetch(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        to: ProcessId,
        ids: Vec<RequestId>,
    ) {
        let mut requests: Vec<Request<S::Command>> = Vec::new();
        for id in ids {
            if let Some(request) = self.payloads.get(&id) {
                requests.push(request.clone());
            } else if let Some(request) = self.settled_log.iter().find(|r| r.id == id) {
                requests.push(request.clone());
            }
        }
        if !requests.is_empty() {
            self.stats.payload_fills += 1;
            ctx.send(to, OarWire::PayloadFill { requests });
        }
    }

    /// Repairs payloads whose `R-multicast` relay was lost while this
    /// replica was down: the multicast layer never re-sends once every live
    /// member delivered, so an ordered request (in `order_queue`) or a
    /// decided one (in `pending_missing`) could otherwise stall forever.
    /// Runs on the maintenance tick; only ids already missing at the
    /// *previous* tick are fetched, so ordinary in-flight payloads arrive on
    /// their own without repair traffic.
    fn maybe_fetch_payloads(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        let mut missing: Vec<RequestId> = Vec::new();
        for id in self.order_queue.iter() {
            if missing.len() >= FETCH_BATCH {
                break;
            }
            if !self.payloads.contains_key(id) && !self.settled.contains(id) {
                missing.push(*id);
            }
        }
        let mut decided: Vec<RequestId> = self.pending_missing.iter().copied().collect();
        decided.sort_unstable();
        missing.extend(decided.into_iter().take(FETCH_BATCH));
        missing.sort_unstable();
        missing.dedup();
        if missing.is_empty() {
            self.prev_missing.clear();
            return;
        }
        let stuck: Vec<RequestId> = missing
            .iter()
            .filter(|id| self.prev_missing.contains(id))
            .copied()
            .collect();
        self.prev_missing = missing.into_iter().collect();
        if stuck.is_empty() {
            return;
        }
        let peers = self.peers();
        if peers.is_empty() {
            return;
        }
        let donor = peers[(self.fetch_round as usize) % peers.len()];
        self.fetch_round += 1;
        self.stats.payload_fetches += 1;
        self.annotate(ctx, format!("payload fetch ({}) -> {donor}", stuck.len()));
        ctx.send(donor, OarWire::PayloadFetch { ids: stuck });
    }

    /// Re-sends the current consensus instance's idempotent messages once it
    /// has been undecided for two full maintenance ticks. A healthy phase 2
    /// decides well within one tick; the only way to stall longer with
    /// nobody suspected is lost unicast — estimates or a proposal sent to a
    /// peer while it was down (e.g. the round's coordinator crashed and
    /// restarted faster than the failure-detector timeout, rejoining with a
    /// fresh, empty instance).
    fn maybe_retransmit_consensus(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
    ) {
        let stalled = self.phase == Phase::Conservative
            && self
                .consensus
                .as_ref()
                .is_some_and(|c| c.is_started() && !c.has_decided());
        if !stalled {
            self.cnsv_stall_ticks = 0;
            return;
        }
        self.cnsv_stall_ticks += 1;
        if self.cnsv_stall_ticks < 2 {
            return;
        }
        self.cnsv_stall_ticks = 0;
        self.stats.consensus_retransmits += 1;
        self.annotate(ctx, format!("consensus retransmit (epoch={})", self.epoch));
        let consensus = self.consensus.as_mut().expect("checked above");
        let output = consensus.retransmit();
        self.dispatch_consensus_output(ctx, output.messages, output.decision);
    }

    /// Feeds payloads served by a peer's `PayloadFill` through the normal
    /// delivery path. The caster marks them seen (so a stale relay arriving
    /// later is suppressed) but the fill is **not** relayed — it is a
    /// point-to-point repair, and re-relaying settled traffic is exactly the
    /// ping-pong class the door filters exist to prevent.
    fn handle_payload_fill(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        requests: Vec<Request<S::Command>>,
    ) {
        for request in requests {
            if request.group != self.config.group || self.settled.contains(&request.id) {
                continue;
            }
            // A fill must not resurrect a request the migration fence
            // pruned: its key now settles at the recipient group.
            if self.migrated_away(&request.command) {
                continue;
            }
            let wire = CastWire {
                id: request.id,
                origin: request.client,
                payload: request,
            };
            let (delivery, _relay) = self.request_cast.on_wire_shared(wire);
            if let Some(delivery) = delivery {
                self.handle_request_delivery(ctx, delivery);
            }
        }
    }

    // ------------------------------------------------------------------
    // model-checker hooks (state capture + deduplication)
    // ------------------------------------------------------------------

    /// Deep copy of the whole server, for [`Process::fork`]: every field is
    /// `Clone` except the state machine, which supplies its own copy through
    /// [`StateMachine::fork`] (`None` — not forkable — propagates).
    fn fork_self(&self) -> Option<Self> {
        let sm = self.sm.fork()?;
        Some(OarServer {
            id: self.id,
            group: self.group.clone(),
            config: self.config,
            epoch: self.epoch,
            phase: self.phase,
            r_delivered: self.r_delivered.clone(),
            a_delivered: self.a_delivered.clone(),
            o_delivered: self.o_delivered.clone(),
            settled: self.settled.clone(),
            payloads: self.payloads.clone(),
            undo_stack: self.undo_stack.clone(),
            position: self.position,
            order_queue: self.order_queue.clone(),
            order_queued: self.order_queued.clone(),
            order_cursor: self.order_cursor,
            phase2_started: self.phase2_started,
            adaptive: self.adaptive.clone(),
            flush_deadline: self.flush_deadline,
            flush_timer_pending: self.flush_timer_pending,
            request_cast: self.request_cast.clone(),
            phase2_cast: self.phase2_cast.clone(),
            fd: self.fd.clone(),
            consensus: self.consensus.clone(),
            future_orders: self.future_orders.clone(),
            future_phase2: self.future_phase2.clone(),
            buffered_consensus: self.buffered_consensus.clone(),
            pending_decision: self.pending_decision.clone(),
            pending_missing: self.pending_missing.clone(),
            peer_settled: self.peer_settled.clone(),
            gc_floor: self.gc_floor,
            gc_pending: self.gc_pending.clone(),
            phase2_msg_ids: self.phase2_msg_ids.clone(),
            a_base: self.a_base,
            a_base_hash: self.a_base_hash,
            settled_digest: self.settled_digest,
            settled_log: self.settled_log.clone(),
            snapshot: self.snapshot.clone(),
            catch_up_attempt: self.catch_up_attempt,
            recovery_buffer: self.recovery_buffer.clone(),
            held_catch_ups: self.held_catch_ups.clone(),
            opt_freeze_epoch: self.opt_freeze_epoch,
            prev_missing: self.prev_missing.clone(),
            fetch_round: self.fetch_round,
            cnsv_stall_ticks: self.cnsv_stall_ticks,
            route_epoch: self.route_epoch,
            migrations: self.migrations.clone(),
            sync_cursor: self.sync_cursor,
            sync_tick: self.sync_tick,
            sync_votes: self.sync_votes.clone(),
            sync_idle_mark: self.sync_idle_mark,
            sm,
            log: self.log.clone(),
            stats: self.stats,
        })
    }

    /// Digest of the server's *protocol-relevant* state, for
    /// [`Process::state_digest`] (model-checker state deduplication).
    ///
    /// Covered: epoch machinery, the three delivery sequences, the ordering
    /// queue, the components (casters via [`ReliableCaster::digest_view`],
    /// failure detector via its suspect set, consensus and the out-of-epoch
    /// buffers via their deterministic `Debug` form), the recovery layer and
    /// the state machine's own [`StateMachine::digest`]. Excluded: the
    /// delivery log and [`ServerStats`] — observability only, `apply_ns` is
    /// even host wall-clock — and payload *contents* (a `RequestId`
    /// determines its payload group-wide, so the sorted key set suffices).
    /// Unordered containers are hashed in sorted order.
    fn mc_digest(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn sorted<T: Ord + Copy>(set: impl IntoIterator<Item = T>) -> Vec<T> {
            let mut v: Vec<T> = set.into_iter().collect();
            v.sort_unstable();
            v
        }
        let mut h = DefaultHasher::new();
        self.id.index().hash(&mut h);
        // Membership is mutable now (`Replace` fences swap slots in place),
        // so the group belongs in the digest.
        for p in &self.group {
            p.index().hash(&mut h);
        }
        self.epoch.hash(&mut h);
        matches!(self.phase, Phase::Conservative).hash(&mut h);
        self.position.hash(&mut h);
        self.phase2_started.hash(&mut h);
        self.order_cursor.hash(&mut h);
        self.r_delivered.as_slice().hash(&mut h);
        self.a_delivered.as_slice().hash(&mut h);
        self.o_delivered.as_slice().hash(&mut h);
        sorted(self.settled.iter().copied()).hash(&mut h);
        sorted(self.payloads.keys().copied()).hash(&mut h);
        for (id, _undo) in &self.undo_stack {
            // The token itself is a function of the delivery prefix and the
            // machine state, both already covered.
            id.hash(&mut h);
        }
        self.order_queue.hash(&mut h);
        format!("{:?}", self.flush_deadline).hash(&mut h);
        self.flush_timer_pending.hash(&mut h);
        format!("{:?}", self.adaptive).hash(&mut h);
        self.request_cast.digest_view().hash(&mut h);
        self.phase2_cast.digest_view().hash(&mut h);
        for p in self.fd.suspects() {
            p.index().hash(&mut h);
        }
        format!("{:?}", self.consensus).hash(&mut h);
        format!("{:?}", self.future_orders).hash(&mut h);
        self.future_phase2.hash(&mut h);
        format!("{:?}", self.buffered_consensus).hash(&mut h);
        format!("{:?}", self.pending_decision).hash(&mut h);
        sorted(self.pending_missing.iter().copied()).hash(&mut h);
        sorted(self.peer_settled.iter().map(|(p, w)| (*p, *w))).hash(&mut h);
        self.gc_floor.hash(&mut h);
        format!("{:?}", self.gc_pending).hash(&mut h);
        format!("{:?}", self.phase2_msg_ids).hash(&mut h);
        self.a_base.hash(&mut h);
        self.a_base_hash.hash(&mut h);
        self.settled_digest.hash(&mut h);
        for request in &self.settled_log {
            request.id.hash(&mut h);
        }
        self.snapshot.position.hash(&mut h);
        self.snapshot.digest.hash(&mut h);
        self.snapshot.order_hash.hash(&mut h);
        self.catch_up_attempt.hash(&mut h);
        format!("{:?}", self.recovery_buffer).hash(&mut h);
        self.held_catch_ups.hash(&mut h);
        self.opt_freeze_epoch.hash(&mut h);
        sorted(self.prev_missing.iter().copied()).hash(&mut h);
        self.fetch_round.hash(&mut h);
        self.cnsv_stall_ticks.hash(&mut h);
        self.route_epoch.hash(&mut h);
        format!("{:?}", self.migrations).hash(&mut h);
        self.sync_cursor.hash(&mut h);
        self.sync_tick.hash(&mut h);
        format!("{:?}", self.sync_votes).hash(&mut h);
        self.sync_idle_mark.hash(&mut h);
        self.sm.digest().hash(&mut h);
        h.finish()
    }
}

impl<S: StateMachine> Process<OarWire<S::Command, S::Response>> for OarServer<S> {
    fn fork(&self) -> Option<Box<dyn Process<OarWire<S::Command, S::Response>>>> {
        self.fork_self()
            .map(|server| Box::new(server) as Box<dyn Process<OarWire<S::Command, S::Response>>>)
    }

    fn state_digest(&self) -> Option<u64> {
        Some(self.mc_digest())
    }

    fn on_start(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        if self.catch_up_attempt.is_some() {
            // Recovery mode: no maintenance tick (and so no heartbeats or
            // ordering) until the catch-up transfer installs — the replica
            // must not participate from a blank state.
            self.send_catch_up_request(ctx);
            return;
        }
        ctx.set_timer(self.config.tick_interval, TICK);
    }

    fn on_message(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        from: ProcessId,
        msg: OarWire<S::Command, S::Response>,
    ) {
        if let Some(attempt) = self.catch_up_attempt {
            match msg {
                OarWire::CatchUpReply(reply) if reply.attempt == attempt => {
                    self.install_catch_up(ctx, from, *reply);
                }
                // A late reply of an abandoned attempt: ignore (the newer
                // attempt's donor will answer with current state).
                OarWire::CatchUpReply(_) => {}
                // Protocol traffic that may still matter after the install
                // is buffered and replayed then; the rest (heartbeats,
                // watermarks, fetches) is periodic or answered by peers with
                // live state, and a recovering replica cannot donate.
                OarWire::Request(_)
                | OarWire::Order(_)
                | OarWire::PhaseII(_)
                | OarWire::Consensus(_) => {
                    self.recovery_buffer.push((from, msg));
                }
                _ => {}
            }
            return;
        }
        // Any traffic from a group member is evidence of liveness.
        if self.group.contains(&from) && from != self.id {
            let events = self.fd.observe_traffic(from, ctx.now());
            self.handle_fd_events(ctx, events);
        }
        match msg {
            OarWire::Request(wire) => {
                // Sharded deployments: a request stamped for another group
                // reached the wrong shard. Count it and drop it at the door —
                // feeding it to the caster would relay the misroute to the
                // whole (wrong) group and pin its id in `seen` forever, since
                // a request this group never orders is never settled here.
                if wire.payload.group != self.config.group {
                    self.stats.misrouted += 1;
                    self.annotate(
                        ctx,
                        format!("misroute({}, {})", wire.id, wire.payload.group),
                    );
                    return;
                }
                // A copy of an already-settled request — possible once the
                // seen-set aging forgot its multicast id — is dropped at the
                // door too. Feeding it back in would re-relay it, and two
                // servers that both aged the id out could bounce it between
                // each other indefinitely; dropping here is safe because
                // every server relays on its own first (pre-settlement)
                // reception, so no delivery path is lost.
                if self.settled.contains(&wire.id) {
                    return;
                }
                // Routing door: a request stamped with a stale boundary
                // epoch, or touching a key this group migrated away, is
                // dropped and its client pointed at the new owner. Only
                // first-hand copies are checked (`from == origin`): relayed
                // copies of pre-fence requests must keep spreading so the
                // group still agrees on them, and the seen-set suppresses
                // relays of anything the fence pruned.
                if from == wire.origin
                    && (wire.payload.route_epoch < self.route_epoch
                        || self.migrated_away(&wire.payload.command))
                {
                    self.stats.redirected += 1;
                    self.annotate(ctx, format!("redirect({})", wire.id));
                    ctx.send(
                        wire.payload.client,
                        OarWire::Redirect {
                            records: self.migrations.clone(),
                            dropped: vec![wire.id],
                        },
                    );
                    return;
                }
                let (delivery, relay) = self.request_cast.on_wire_shared(wire);
                if let Some((wire, targets)) = relay {
                    // One shared allocation for all relay recipients.
                    ctx.send_all(&targets, OarWire::Request(wire));
                }
                if let Some(delivery) = delivery {
                    self.handle_request_delivery(ctx, delivery);
                }
            }
            OarWire::Order(OrderMsg {
                epoch,
                order,
                settled,
            }) => {
                // The watermark is meaningful whatever the epoch check says.
                self.note_settled(from, settled);
                if epoch < self.epoch {
                    return;
                }
                if epoch > self.epoch {
                    self.future_orders.entry(epoch).or_default().push(order);
                    return;
                }
                if self.phase == Phase::Optimistic && from == self.current_sequencer() {
                    self.accept_order(ctx, order);
                }
            }
            OarWire::PhaseII(wire) => {
                // A PhaseII for an epoch the payload collector already
                // passed is settled knowledge group-wide; its multicast id
                // may have been aged out of `seen`, so (as for requests)
                // drop it before the caster would re-deliver and re-relay.
                if wire.payload.epoch < self.gc_floor {
                    return;
                }
                let (delivery, relay) = self.phase2_cast.on_wire_shared(wire);
                if let Some((wire, targets)) = relay {
                    ctx.send_all(&targets, OarWire::PhaseII(wire));
                }
                if let Some(delivery) = delivery {
                    // The piggybacked watermark describes the broadcast's
                    // origin, not the relaying neighbour.
                    self.note_settled(delivery.origin, delivery.payload.settled);
                    // Track the multicast id so the seen-set aging can
                    // forget it once the epoch is acknowledged group-wide.
                    self.phase2_msg_ids
                        .entry(delivery.payload.epoch)
                        .or_default()
                        .push(delivery.id);
                    self.record_seen();
                    self.handle_phase2_delivery(ctx, delivery.payload);
                }
            }
            OarWire::Fd { wire, settled } => {
                self.note_settled(from, settled);
                let events = self.fd.on_wire(from, wire, ctx.now());
                self.handle_fd_events(ctx, events);
            }
            OarWire::Watermark { settled } => {
                self.note_settled(from, settled);
            }
            OarWire::Consensus(wire) => {
                let instance = wire.instance();
                if instance < self.epoch {
                    return;
                }
                if instance > self.epoch || (instance == self.epoch && self.consensus.is_none()) {
                    self.buffered_consensus
                        .entry(instance)
                        .or_default()
                        .push((from, wire));
                    // Consensus traffic for the current epoch means somebody
                    // entered phase 2: the PhaseII broadcast will follow (it is
                    // reliable), so we simply wait for it.
                    return;
                }
                self.feed_consensus(ctx, from, wire);
            }
            OarWire::Replies(_) => {
                // Servers never receive replies; ignore defensively.
            }
            OarWire::CatchUpRequest { attempt, group } => {
                if self.group.contains(&from) || self.group.iter().all(|p| group.contains(p)) {
                    self.serve_catch_up(ctx, from, attempt);
                } else {
                    // A replacement asking before its `Replace` fence settled
                    // here: this roster still contains the member the
                    // requester is replacing, so the requester's install gate
                    // would reject the transfer anyway — every decision
                    // settled between the transfer and the fence is cast to
                    // the old roster and the requester would silently miss
                    // it. Hold the request and serve it the moment the fence
                    // applies (end of `apply_decision`).
                    self.annotate(ctx, format!("catch-up from non-member {from} held"));
                    self.held_catch_ups.retain(|(p, _)| *p != from);
                    self.held_catch_ups.push((from, attempt));
                }
            }
            OarWire::CatchUpReply(_) => {
                // Not recovering (any more): a stale transfer, ignore.
            }
            OarWire::PayloadFetch { ids } => {
                self.serve_payload_fetch(ctx, from, ids);
            }
            OarWire::PayloadFill { requests } => {
                self.handle_payload_fill(ctx, requests);
            }
            OarWire::Redirect { .. } => {
                // Redirects are client-bound; ignore defensively.
            }
            OarWire::MigrateState {
                record,
                entries,
                digest,
            } => {
                self.handle_migrate_state(ctx, record, entries, digest);
            }
            OarWire::SyncProbe {
                settled,
                root,
                leaves,
            } => {
                if !self.config.anti_entropy
                    || settled != self.total_settled()
                    || !self.undo_stack.is_empty()
                {
                    return;
                }
                let Some(tree) = self.build_sync_tree() else {
                    return;
                };
                if tree.root() == root {
                    return;
                }
                // Equal settled counts do not imply equal key counts (a
                // divergence can add or remove a key): when the two leaf
                // rows pad to different widths, heap indices are
                // incomparable and the descent would misalign — fall back
                // to the full key-set exchange instead.
                if !tree.same_shape(leaves) {
                    self.send_sync_keys(ctx, from, settled, true);
                    return;
                }
                // Same settled position and shape, different root: start the
                // descent by shipping our root node back to the prober.
                if let Some(node) = tree.node(1) {
                    self.stats.sync_node_wires += 1;
                    ctx.send(
                        from,
                        OarWire::SyncNodeReply {
                            settled,
                            index: 1,
                            node,
                            leaves: tree.leaf_count() as u64,
                        },
                    );
                }
            }
            OarWire::SyncNodeRequest {
                settled,
                index,
                leaves,
            } => {
                if !self.config.anti_entropy
                    || settled != self.total_settled()
                    || !self.undo_stack.is_empty()
                {
                    return;
                }
                let Some(tree) = self.build_sync_tree() else {
                    return;
                };
                // A shape mismatch mid-descent (our tree changed since the
                // probe): the index is meaningless now, switch to the
                // key-set fallback rather than answer with the wrong node.
                if !tree.same_shape(leaves) {
                    self.send_sync_keys(ctx, from, settled, true);
                    return;
                }
                if let Some(node) = tree.node(index) {
                    self.stats.sync_node_wires += 1;
                    ctx.send(
                        from,
                        OarWire::SyncNodeReply {
                            settled,
                            index,
                            node,
                            leaves: tree.leaf_count() as u64,
                        },
                    );
                }
            }
            OarWire::SyncNodeReply {
                settled,
                index,
                node,
                leaves,
            } => {
                if !self.config.anti_entropy
                    || settled != self.total_settled()
                    || !self.undo_stack.is_empty()
                {
                    return;
                }
                let Some(tree) = self.build_sync_tree() else {
                    return;
                };
                if !tree.same_shape(leaves) {
                    self.send_sync_keys(ctx, from, settled, true);
                    return;
                }
                let (descend, keys) = tree.diff_step(index, &node);
                for child in descend {
                    self.stats.sync_node_wires += 1;
                    ctx.send(
                        from,
                        OarWire::SyncNodeRequest {
                            settled,
                            index: child,
                            leaves: tree.leaf_count() as u64,
                        },
                    );
                }
                for key in keys {
                    self.start_leaf_vote(ctx, key);
                }
            }
            OarWire::SyncKeys {
                settled,
                keys,
                reply_requested,
            } => {
                if !self.config.anti_entropy
                    || settled != self.total_settled()
                    || !self.undo_stack.is_empty()
                {
                    return;
                }
                let Some(own) = self.sm.anti_entropy_leaves() else {
                    return;
                };
                if reply_requested {
                    // Bounded round trip: answer with our key set once, with
                    // the flag cleared so the exchange can never loop.
                    self.send_sync_keys(ctx, from, settled, false);
                }
                // Vote on the union of the two key sets: keys the peer has
                // and we lack are covered by its list, keys we have and it
                // lacks by ours. Each vote settles by group majority, so the
                // union's false positives (keys both sides agree on) resolve
                // to the status quo at one round trip apiece.
                let mut union: BTreeSet<String> = keys.into_iter().collect();
                union.extend(own.into_iter().map(|(key, _)| key));
                for key in union {
                    self.start_leaf_vote(ctx, key);
                }
            }
            OarWire::SyncLeafRequest { key } => {
                let value = self.sm.anti_entropy_value(&key);
                ctx.send(from, OarWire::SyncLeafReply { key, value });
            }
            OarWire::SyncLeafReply { key, value } => {
                self.record_leaf_vote(key, from, value);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>, timer: Timer) {
        if timer.tag == CATCHUP {
            if let Some(attempt) = self.catch_up_attempt {
                // The donor did not answer in time (crashed, or its reply
                // was lost): rotate to the next donor with backed-off retry.
                self.catch_up_attempt = Some(attempt + 1);
                self.send_catch_up_request(ctx);
            }
            return;
        }
        if self.catch_up_attempt.is_some() {
            // No protocol activity while recovering.
            return;
        }
        if timer.tag == FLUSH {
            self.flush_timer_pending = false;
            match self.flush_deadline {
                // The batch this timer was armed for already flushed (and no
                // newer partial batch started): nothing to do.
                None => {}
                // A newer partial batch owns the deadline now: give it its
                // full window by re-arming for the remainder.
                Some(deadline) if ctx.now() < deadline => {
                    ctx.set_timer(deadline.duration_since(ctx.now()), FLUSH);
                    self.flush_timer_pending = true;
                }
                // Flush deadline expired: order whatever accumulated,
                // however small — this bounds the added ordering latency of
                // batching independent of the tick cadence.
                Some(_) => {
                    self.flush_deadline = None;
                    if self.phase == Phase::Optimistic
                        && self.is_sequencer()
                        && self.order_backlog() > 0
                    {
                        self.stats.deadline_flushes += 1;
                        self.maybe_order(ctx);
                    }
                }
            }
            return;
        }
        if timer.tag != TICK {
            return;
        }
        // Heartbeats + suspicion checks; heartbeats carry the settled-epoch
        // watermark so the payload GC converges even on idle protocol paths.
        let settled = self.settled_watermark();
        let (heartbeats, events) = self.fd.on_tick(ctx.now());
        for hb in heartbeats {
            ctx.send(
                hb.to,
                OarWire::Fd {
                    wire: hb.wire,
                    settled,
                },
            );
        }
        self.handle_fd_events(ctx, events);
        // A load drop leaves the adaptive target with no flushes to decay
        // through: the tick walks it back towards 1 while the sequencer
        // idles.
        if let Some(controller) = self.adaptive.as_mut() {
            controller.maybe_decay(ctx.now());
        }
        self.sync_adaptive_stats();
        // Task 1a on a timer: the only ordering trigger when eager sequencing
        // is disabled, and the safety-net flush of partially filled batches
        // when it is (the flush-deadline timer usually fires first).
        // (A decision waiting on payloads no longer needs a tick-driven
        // re-check: every payload arrival re-examines it via the missing
        // set — see `set_pending_decision`.)
        self.maybe_order(ctx);
        // Task 1c safety net: the current sequencer may have been suspected
        // before its epoch even started. Covered by the same model-checker
        // fault toggle as the epoch-advance re-check: with both omitted the
        // stall is permanent, which is what `oar-mc` demonstrates.
        if !self.config.bug_skip_handoff_recheck {
            self.maybe_start_phase2(ctx);
        }
        // Payload repair for gaps the multicast layer will never re-send
        // (relays lost across a restart).
        self.maybe_fetch_payloads(ctx);
        // Consensus repair for the same reason: estimates/proposals unicast
        // to a peer that was down are lost for good, and if that peer was
        // the round's coordinator the instance wedges with nobody suspected.
        // Re-send the (idempotent) current-round messages once the instance
        // has been stuck for a couple of full ticks — a healthy phase 2
        // decides well within one.
        self.maybe_retransmit_consensus(ctx);
        // Anti-entropy: probe one peer's Merkle root per tick, healing any
        // settled-state divergence (bit-rot, injected faults) in O(log n)
        // localisation wires plus a majority leaf vote.
        self.maybe_sync(ctx);
        ctx.set_timer(self.config.tick_interval, TICK);
    }

    fn name(&self) -> String {
        format!("oar-server-{}", self.id.index())
    }
}

#[cfg(test)]
mod tests {
    //! Component-level tests driving the server directly through wire
    //! messages, without a simulator — the pure-state-machine design makes
    //! ordering hazards (payload after decision, watermark acknowledgement)
    //! explicit and deterministic.

    use super::*;
    use crate::state_machine::{CounterCommand, CounterMachine};
    use oar_channels::{CastWire, MsgId};
    use oar_simnet::{Action, Context, Payload, SimRng, SimTime};

    type Wire = OarWire<CounterCommand, i64>;

    /// Views a `Send` action as `(destination, wire)`, unwrapping the
    /// owned/shared payload distinction.
    fn sent(action: &Action<Wire>) -> Option<(ProcessId, &Wire)> {
        match action {
            Action::Send { to, msg } => Some((
                *to,
                match msg {
                    Payload::Owned(m) => m,
                    Payload::Shared(s) => s.as_ref(),
                },
            )),
            _ => None,
        }
    }

    /// Feeds one wire message to the server and returns the actions it
    /// produced.
    fn deliver(
        server: &mut OarServer<CounterMachine>,
        from: ProcessId,
        msg: Wire,
    ) -> Vec<Action<Wire>> {
        let mut rng = SimRng::new(1);
        let mut actions = Vec::new();
        let mut next_timer = 0u64;
        let mut ctx = Context::new(
            SimTime::from_millis(1),
            server.id(),
            &mut rng,
            &mut actions,
            &mut next_timer,
        );
        server.on_message(&mut ctx, from, msg);
        actions
    }

    fn request_wire(client: ProcessId, seq: u64, add: i64) -> (RequestId, Wire) {
        let id = MsgId::new(client, seq);
        let wire = CastWire {
            id,
            origin: client,
            payload: Request {
                id,
                client,
                group: oar_simnet::GroupId::default(),
                txn: None,
                reconfig: None,
                route_epoch: 0,
                command: CounterCommand::Add(add),
            },
        };
        (id, OarWire::Request(wire))
    }

    /// A request carrying a reconfiguration fence (no-op command).
    fn fence_wire(client: ProcessId, seq: u64, reconfig: ReconfigCmd) -> (RequestId, Wire) {
        let id = MsgId::new(client, seq);
        let wire = CastWire {
            id,
            origin: client,
            payload: Request {
                id,
                client,
                group: oar_simnet::GroupId::default(),
                txn: None,
                reconfig: Some(reconfig),
                route_epoch: 0,
                command: CounterCommand::Add(0),
            },
        };
        (id, OarWire::Request(wire))
    }

    /// Regression for the stale-decision re-check gap (formerly papered over
    /// by a defensive tick): a decision that arrives *before* the payload of
    /// a request it mentions must apply as soon as that payload arrives —
    /// driven by the payload delivery itself, no timer involved.
    #[test]
    fn delayed_payload_unblocks_pending_decision_without_a_tick() {
        let group: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
        let mut server = OarServer::new(
            ProcessId::new(2),
            group,
            OarConfig::default(),
            CounterMachine::default(),
        );
        let client = ProcessId::new(9);
        let (rid, request) = request_wire(client, 0, 5);

        // The group moves to phase 2 (sequencer suspected elsewhere).
        let phase2 = OarWire::PhaseII(CastWire {
            id: MsgId::new(ProcessId::new(0), 0),
            origin: ProcessId::new(0),
            payload: PhaseIIMsg {
                epoch: 0,
                settled: 0,
            },
        });
        deliver(&mut server, ProcessId::new(0), phase2);
        assert_eq!(server.phase(), Phase::Conservative);

        // The decision mentions `rid`, whose payload has NOT arrived here yet.
        let decision_value = CnsvValue {
            o_delivered: Seq::new(),
            o_notdelivered: [rid].into_iter().collect(),
        };
        let decide = OarWire::Consensus(ConsensusWire::Decide {
            instance: 0,
            value: vec![(ProcessId::new(0), decision_value)],
        });
        deliver(&mut server, ProcessId::new(0), decide);
        assert_eq!(
            server.epoch(),
            0,
            "decision must wait for the missing payload"
        );
        assert!(!server.stable_sequence().contains(&rid));

        // The delayed payload finally arrives (relayed by server 0): the
        // decision applies immediately, on this very delivery.
        let actions = deliver(&mut server, ProcessId::new(0), request);
        assert_eq!(server.epoch(), 1, "decision applied on payload arrival");
        assert!(server.stable_sequence().contains(&rid));
        let replied_to_client = actions.iter().any(|a| match a {
            Action::Send { to, .. } => *to == client,
            _ => false,
        });
        assert!(replied_to_client, "the A-deliver reply must go out");
    }

    /// End-to-end watermark GC on a single-replica group: the epoch cut
    /// closes the epoch, the server acknowledges its own watermark and the
    /// settled payload is pruned.
    #[test]
    fn watermark_gc_prunes_settled_payloads() {
        let config = OarConfig {
            epoch_cut_after: Some(1),
            ..OarConfig::default()
        };
        let mut server = OarServer::new(
            ProcessId::new(0),
            vec![ProcessId::new(0)],
            config,
            CounterMachine::default(),
        );
        let client = ProcessId::new(9);
        let (rid, request) = request_wire(client, 0, 3);
        deliver(&mut server, client, request);

        // The request was opt-delivered, the epoch cut + single-member
        // consensus settled it, and the GC pruned its payload.
        assert_eq!(server.epoch(), 1);
        assert!(server.stable_sequence().contains(&rid));
        assert_eq!(server.payloads_len(), 0, "settled payload pruned");
        assert_eq!(server.stats().payloads_pruned, 1);
        assert_eq!(server.stats().payloads.peak(), 1);
        assert_eq!(server.acked_watermark(), 1);
        // The multicast id was aged out of the duplicate-suppression set
        // alongside the payload (the epoch's PhaseII ids likewise).
        assert_eq!(server.seen_len(), 0, "settled seen ids aged out");
        assert_eq!(server.stats().seen.peak(), 2, "request + own PhaseII");
        // A stale relay of the settled request is discarded by the settled
        // check and does not re-grow the seen set.
        let (_, stale) = request_wire(client, 0, 3);
        deliver(&mut server, client, stale);
        assert_eq!(server.seen_len(), 0);
        assert!(!server.stable_sequence().is_empty());
    }

    /// Requests stamped for another group are counted and dropped, never
    /// ordered: the misroute ceiling of the sharded deployment layer.
    #[test]
    fn misrouted_requests_are_counted_and_dropped() {
        let config = OarConfig::default().for_group(oar_simnet::GroupId::new(1));
        let mut server = OarServer::new(
            ProcessId::new(0),
            vec![ProcessId::new(0)],
            config,
            CounterMachine::default(),
        );
        assert_eq!(server.group_id(), oar_simnet::GroupId::new(1));
        let client = ProcessId::new(9);
        // request_wire stamps g0; this server is g1.
        let (rid, request) = request_wire(client, 0, 7);
        let actions = deliver(&mut server, client, request);
        assert_eq!(server.stats().misrouted, 1);
        assert_eq!(server.payloads_len(), 0, "misroute must not be buffered");
        assert!(!server.stable_sequence().contains(&rid));
        assert_eq!(server.stats().opt_delivered, 0);
        // Dropped at the door: never relayed, never tracked in `seen`.
        assert_eq!(server.seen_len(), 0, "misroute must not enter `seen`");
        assert!(
            !actions.iter().any(|a| matches!(a, Action::Send { .. })),
            "misroute must not be relayed"
        );
    }

    /// Peers that lag hold the collector back; suspected peers do not.
    #[test]
    fn acked_watermark_tracks_live_peers_only() {
        let group: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
        let mut server = OarServer::new(
            ProcessId::new(0),
            group,
            OarConfig::default(),
            CounterMachine::default(),
        );
        assert_eq!(server.acked_watermark(), 0, "nothing heard yet");
        deliver(
            &mut server,
            ProcessId::new(1),
            OarWire::Watermark { settled: 4 },
        );
        assert_eq!(server.acked_watermark(), 0, "p2 still unheard");
        deliver(
            &mut server,
            ProcessId::new(2),
            OarWire::Watermark { settled: 2 },
        );
        // min(self = 0, p1 = 4, p2 = 2): the server's own epoch bounds it.
        assert_eq!(server.acked_watermark(), 0);
    }

    /// Periodic snapshots compact `A_delivered` and the settled log; the
    /// chained order hash keeps the compacted prefix comparable.
    #[test]
    fn snapshots_compact_the_settled_log() {
        let config = OarConfig {
            epoch_cut_after: Some(1),
            snapshot_every: Some(2),
            ..OarConfig::default()
        };
        let mut server = OarServer::new(
            ProcessId::new(0),
            vec![ProcessId::new(0)],
            config,
            CounterMachine::default(),
        );
        let client = ProcessId::new(9);
        for seq in 0..4 {
            let (_, request) = request_wire(client, seq, 1);
            deliver(&mut server, client, request);
        }
        // Four single-request epochs closed; snapshots at epochs 2 and 4
        // pruned everything below them.
        assert_eq!(server.epoch(), 4);
        assert_eq!(server.stats().snapshots_taken, 2);
        assert_eq!(server.stats().compacted, 4);
        assert_eq!(server.a_base(), 4, "prefix compacted up to the snapshot");
        assert_eq!(server.total_settled(), 4);
        assert!(server.stable_sequence().is_empty(), "A_delivered pruned");
        // The peak gauge saw the pre-compaction length; after compaction the
        // retained length is bounded by the snapshot window, not the run.
        assert!(server.stats().a_delivered_len.peak() <= 2);
        // Order hashes exist at and above the base, not below it.
        assert!(server.order_hash_at(4).is_some());
        assert!(server.order_hash_at(3).is_none());
    }

    /// The tentpole unit test: a recovering replica ignores-and-buffers
    /// traffic, installs a donor's snapshot + delta, verifies the digest,
    /// announces its watermark and resumes — ending element-identical to the
    /// donor's settled state without replaying the full history.
    #[test]
    fn rejoining_replica_catches_up_by_snapshot_plus_delta() {
        let config = OarConfig {
            epoch_cut_after: Some(1),
            snapshot_every: Some(2),
            ..OarConfig::default()
        };
        let mut donor = OarServer::new(
            ProcessId::new(0),
            vec![ProcessId::new(0)],
            config,
            CounterMachine::default(),
        );
        let client = ProcessId::new(9);
        for seq in 0..3 {
            let (_, request) = request_wire(client, seq, 2);
            deliver(&mut donor, client, request);
        }
        assert_eq!(donor.a_base(), 2, "snapshot at epoch 2");
        assert_eq!(donor.total_settled(), 3);

        let mut rejoiner = OarServer::recovering(
            ProcessId::new(1),
            vec![ProcessId::new(0), ProcessId::new(1)],
            config,
            CounterMachine::default(),
        );
        assert!(rejoiner.is_recovering());
        // Traffic during the transfer window is buffered, not processed.
        let (_, late_request) = request_wire(client, 3, 2);
        deliver(&mut rejoiner, ProcessId::new(0), late_request);
        assert_eq!(rejoiner.stats().opt_delivered, 0);
        assert_eq!(rejoiner.payloads_len(), 0);

        // Pull the transfer out of the donor and feed it to the rejoiner.
        let actions = deliver(
            &mut donor,
            ProcessId::new(1),
            OarWire::CatchUpRequest {
                attempt: 0,
                group: vec![ProcessId::new(0), ProcessId::new(1)],
            },
        );
        let reply = actions
            .iter()
            .find_map(|a| match sent(a) {
                Some((to, msg @ OarWire::CatchUpReply(_))) if to == ProcessId::new(1) => {
                    Some(msg.clone())
                }
                _ => None,
            })
            .expect("donor must answer with a CatchUpReply");
        let actions = deliver(&mut rejoiner, ProcessId::new(0), reply);

        assert!(!rejoiner.is_recovering());
        assert_eq!(rejoiner.a_base(), 2, "snapshot adopted, not full replay");
        assert_eq!(rejoiner.total_settled(), 3);
        assert_eq!(rejoiner.stats().catch_up_snapshot_position, 2);
        assert_eq!(rejoiner.stats().catch_up_delta, 1);
        assert_eq!(rejoiner.settled_digest(), donor.settled_digest());
        assert_eq!(rejoiner.order_hash_at(3), donor.order_hash_at(3));
        assert_eq!(rejoiner.epoch(), donor.epoch());
        // The buffered request was replayed after install.
        assert_eq!(rejoiner.payloads_len(), 1, "buffered request replayed");
        // The watermark announcement un-stalls the peers' payload GC.
        assert!(
            actions
                .iter()
                .any(|a| matches!(sent(a), Some((_, OarWire::Watermark { .. })))),
            "rejoiner must announce its watermark on install"
        );
    }

    /// Lemma-2 regression: a rejoiner must not opt-deliver from a mid-epoch
    /// order batch. It missed the epoch's earlier batches, so starting now
    /// would make its `O_delivered` diverge from the sequencer-order prefix
    /// the other replicas hold — and `Cnsv-order` silently drops the longest
    /// prefix's suffix when fed a non-prefix, splitting the settle order.
    /// The freeze expires once the epoch advances.
    #[test]
    fn rejoiner_freezes_optimistic_delivery_for_the_caught_up_epoch() {
        let config = OarConfig {
            epoch_cut_after: Some(1),
            snapshot_every: Some(2),
            ..OarConfig::default()
        };
        let mut donor = OarServer::new(
            ProcessId::new(0),
            vec![ProcessId::new(0)],
            config,
            CounterMachine::default(),
        );
        let client = ProcessId::new(9);
        for seq in 0..2 {
            let (_, request) = request_wire(client, seq, 2);
            deliver(&mut donor, client, request);
        }
        assert_eq!(donor.epoch(), 2);

        // Rejoiner catches up into epoch 2, whose sequencer is the donor.
        let mut rejoiner = OarServer::recovering(
            ProcessId::new(1),
            vec![ProcessId::new(0), ProcessId::new(1)],
            config,
            CounterMachine::default(),
        );
        let actions = deliver(
            &mut donor,
            ProcessId::new(1),
            OarWire::CatchUpRequest {
                attempt: 0,
                group: vec![ProcessId::new(0), ProcessId::new(1)],
            },
        );
        let reply = actions
            .iter()
            .find_map(|a| match sent(a) {
                Some((to, msg @ OarWire::CatchUpReply(_))) if to == ProcessId::new(1) => {
                    Some(msg.clone())
                }
                _ => None,
            })
            .expect("donor must answer with a CatchUpReply");
        deliver(&mut rejoiner, ProcessId::new(0), reply);
        assert!(!rejoiner.is_recovering());
        assert_eq!(rejoiner.epoch(), 2);
        assert_eq!(rejoiner.phase(), Phase::Optimistic);
        assert_eq!(rejoiner.current_sequencer(), ProcessId::new(0));

        // A mid-epoch order batch arrives with its payload in hand: the
        // frozen rejoiner stores the payload but must not opt-deliver.
        let (rid, request) = request_wire(client, 2, 2);
        deliver(&mut rejoiner, ProcessId::new(0), request);
        let order = OarWire::Order(OrderMsg {
            epoch: 2,
            order: [rid].into_iter().collect(),
            settled: 2,
        });
        deliver(&mut rejoiner, ProcessId::new(0), order);
        assert_eq!(rejoiner.stats().opt_delivered, 0, "freeze must hold");
        assert!(!rejoiner.stable_sequence().contains(&rid));

        // The epoch closes conservatively: the decision settles the request
        // (the rejoiner's empty `O_delivered` is the trivial prefix).
        let phase2 = OarWire::PhaseII(CastWire {
            id: MsgId::new(ProcessId::new(0), 99),
            origin: ProcessId::new(0),
            payload: PhaseIIMsg {
                epoch: 2,
                settled: 2,
            },
        });
        deliver(&mut rejoiner, ProcessId::new(0), phase2);
        assert_eq!(rejoiner.phase(), Phase::Conservative);
        let decision_value = CnsvValue {
            o_delivered: [rid].into_iter().collect(),
            o_notdelivered: Default::default(),
        };
        let decide = OarWire::Consensus(ConsensusWire::Decide {
            instance: 2,
            value: vec![(ProcessId::new(0), decision_value)],
        });
        deliver(&mut rejoiner, ProcessId::new(0), decide);
        assert_eq!(rejoiner.epoch(), 3, "conservative close advances");
        assert!(rejoiner.stable_sequence().contains(&rid));

        // The freeze expired with the epoch: epoch 3's sequencer is the
        // rejoiner itself, and a fresh request opt-delivers normally.
        assert!(rejoiner.is_sequencer());
        let (next, request) = request_wire(client, 3, 2);
        deliver(&mut rejoiner, client, request);
        assert_eq!(rejoiner.stats().opt_delivered, 1, "freeze expired");
        assert!(rejoiner.committed_sequence().contains(&next));
    }

    /// A transfer whose image cannot be installed (foreign type) is abandoned
    /// and retried against the next donor instead of corrupting state.
    #[test]
    fn rejected_catch_up_image_retries_with_next_donor() {
        let config = OarConfig::default();
        let mut rejoiner = OarServer::recovering(
            ProcessId::new(2),
            (0..3).map(ProcessId::new).collect(),
            config,
            CounterMachine::default(),
        );
        let reply = CatchUpReply {
            attempt: 0,
            image: Some(crate::state_machine::StateImage::new("not a counter")),
            snapshot_position: 5,
            snapshot_digest: 0,
            snapshot_order_hash: 0,
            delta: Vec::new(),
            epoch: 5,
            conservative: false,
            gc_floor: 0,
            settled: Vec::new(),
            digest: 0,
            pending: Vec::new(),
            group: (0..3).map(ProcessId::new).collect(),
            route_epoch: 0,
            migrations: Vec::new(),
        };
        let actions = deliver(
            &mut rejoiner,
            ProcessId::new(0),
            OarWire::CatchUpReply(Box::new(reply)),
        );
        assert!(rejoiner.is_recovering(), "bad image must not end recovery");
        assert_eq!(rejoiner.a_base(), 0, "state untouched by the bad image");
        // The retry goes to the next donor in rotation: attempt 1 -> peer 1.
        assert!(
            actions.iter().any(|a| matches!(
                sent(a),
                Some((to, OarWire::CatchUpRequest { attempt: 1, .. })) if to == ProcessId::new(1)
            )),
            "rejected install must retry with the next donor"
        );
    }

    /// Settled payloads remain fetchable from the catch-up delta: a peer that
    /// missed the original multicast can repair point-to-point, and the fill
    /// is never re-relayed (no ping-pong).
    #[test]
    fn payload_fetch_served_from_settled_log() {
        let config = OarConfig {
            epoch_cut_after: Some(1),
            ..OarConfig::default()
        };
        let mut server = OarServer::new(
            ProcessId::new(0),
            vec![ProcessId::new(0)],
            config,
            CounterMachine::default(),
        );
        let client = ProcessId::new(9);
        let (rid, request) = request_wire(client, 0, 3);
        deliver(&mut server, client, request);
        assert_eq!(server.payloads_len(), 0, "settled payload pruned");

        // The payload is gone from the live map but the settled log still
        // serves it.
        let actions = deliver(
            &mut server,
            ProcessId::new(1),
            OarWire::PayloadFetch { ids: vec![rid] },
        );
        let filled = actions.iter().any(|a| match sent(a) {
            Some((to, OarWire::PayloadFill { requests })) => {
                to == ProcessId::new(1) && requests.len() == 1 && requests[0].id == rid
            }
            _ => false,
        });
        assert!(filled, "settled payloads must be served from the delta log");
        assert_eq!(server.stats().payload_fills, 1);
    }

    /// A settled `Replace` fence swaps the fenced member's slot in place:
    /// quorum, sequencer rotation, the failure detector and the GC
    /// accounting all see the new member; the old one is gone everywhere.
    #[test]
    fn replace_fence_swaps_membership_at_epoch_close() {
        let group: Vec<ProcessId> = vec![ProcessId::new(0), ProcessId::new(1)];
        let mut server = OarServer::new(
            ProcessId::new(0),
            group,
            OarConfig::default(),
            CounterMachine::default(),
        );
        let client = ProcessId::new(9);
        let (fid, fence) = fence_wire(
            client,
            0,
            ReconfigCmd::Replace {
                old: ProcessId::new(1),
                new: ProcessId::new(2),
            },
        );
        // The fence closes its epoch conservatively on receipt.
        deliver(&mut server, client, fence);
        assert_eq!(server.phase(), Phase::Conservative, "fence forces phase 2");
        assert_eq!(
            server.members(),
            &[ProcessId::new(0), ProcessId::new(1)],
            "membership only changes at the settle, not on receipt"
        );

        // Feed the epoch's decision (as if the peer agreed).
        let decision_value = CnsvValue {
            o_delivered: [fid].into_iter().collect(),
            o_notdelivered: Default::default(),
        };
        let decide = OarWire::Consensus(ConsensusWire::Decide {
            instance: 0,
            value: vec![(ProcessId::new(0), decision_value)],
        });
        deliver(&mut server, ProcessId::new(1), decide);
        assert_eq!(server.epoch(), 1, "fence epoch closed");
        assert!(server.stable_sequence().contains(&fid));
        assert_eq!(
            server.members(),
            &[ProcessId::new(0), ProcessId::new(2)],
            "the fenced slot is swapped in place, preserving rotation order"
        );
        assert_eq!(server.stats().reconfigs_applied, 1);
        assert_eq!(
            server.sequencer_of(1),
            ProcessId::new(2),
            "the newcomer inherits the fenced member's rotation slot"
        );
        assert!(
            !server.is_suspecting(ProcessId::new(1)),
            "the fenced member is scrubbed from the suspect set"
        );
        // Duplicate fences are idempotent (old no longer in the group).
        let (fid2, fence2) = fence_wire(
            client,
            1,
            ReconfigCmd::Replace {
                old: ProcessId::new(1),
                new: ProcessId::new(2),
            },
        );
        deliver(&mut server, client, fence2);
        let decide = OarWire::Consensus(ConsensusWire::Decide {
            instance: 1,
            value: vec![(
                ProcessId::new(0),
                CnsvValue {
                    o_delivered: [fid2].into_iter().collect(),
                    o_notdelivered: Default::default(),
                },
            )],
        });
        deliver(&mut server, ProcessId::new(2), decide);
        assert_eq!(server.members(), &[ProcessId::new(0), ProcessId::new(2)]);
        assert_eq!(server.stats().reconfigs_applied, 1, "duplicate is a no-op");
    }

    /// A settled `Migrate` fence bumps the routing-boundary epoch and ships
    /// the hand-off; requests stamped with the stale epoch are door-dropped
    /// and answered with a `Redirect` carrying the records.
    #[test]
    fn stale_route_epoch_requests_are_redirected() {
        let mut server = OarServer::new(
            ProcessId::new(0),
            vec![ProcessId::new(0)],
            OarConfig::default(),
            CounterMachine::default(),
        );
        let client = ProcessId::new(9);
        let record = MigrationRecord {
            range: KeyRange::new("m", "n"),
            from_group: oar_simnet::GroupId::default(),
            to_group: oar_simnet::GroupId::new(1),
            route_epoch: 1,
        };
        let (_, fence) = fence_wire(
            client,
            0,
            ReconfigCmd::Migrate {
                record,
                to_members: vec![ProcessId::new(5)],
            },
        );
        // Single-member group: the fence settles on receipt.
        let actions = deliver(&mut server, client, fence);
        assert_eq!(server.epoch(), 1);
        assert_eq!(server.route_epoch(), 1, "boundary epoch settled");
        assert_eq!(server.migration_records().len(), 1);
        assert_eq!(server.stats().migrations_out, 1);
        // The hand-off went to the recipient member (empty for a machine
        // without keyed state, but the wire still travels).
        assert_eq!(server.stats().migrate_state_wires, 1);
        assert!(
            actions.iter().any(|a| matches!(
                sent(a),
                Some((to, OarWire::MigrateState { .. })) if to == ProcessId::new(5)
            )),
            "donor must ship the hand-off to the recipient members"
        );

        // A request still stamped with boundary epoch 0 bounces.
        let (rid, stale) = request_wire(client, 7, 1);
        let actions = deliver(&mut server, client, stale);
        assert_eq!(server.stats().redirected, 1);
        assert!(!server.committed_sequence().contains(&rid));
        assert!(
            actions.iter().any(|a| matches!(
                sent(a),
                Some((to, OarWire::Redirect { records, dropped }))
                    if to == client
                        && records.len() == 1
                        && dropped.len() == 1
                        && dropped[0] == rid
            )),
            "stale-routed client must receive the records and its dropped id"
        );
    }

    /// Runs `f` against the server with a throwaway runtime context, the
    /// way timer-driven paths see one.
    fn drive(
        server: &mut OarServer<CounterMachine>,
        f: impl FnOnce(&mut OarServer<CounterMachine>, &mut dyn oar_simnet::Runtime<Wire>),
    ) {
        let mut rng = SimRng::new(1);
        let mut actions = Vec::new();
        let mut next_timer = 0u64;
        let mut ctx = Context::new(
            SimTime::from_millis(1),
            server.id(),
            &mut rng,
            &mut actions,
            &mut next_timer,
        );
        f(server, &mut ctx);
    }

    /// A leaf-repair vote that cannot resolve — a member crashed before
    /// casting its ballot and the rest split — must expire after
    /// [`SYNC_VOTE_EXPIRY_TICKS`] instead of wedging `start_leaf_vote`'s
    /// idempotence guard forever.
    #[test]
    fn unresolved_leaf_votes_expire_and_unblock_retry() {
        let group: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
        let config = OarConfig {
            anti_entropy: true,
            ..OarConfig::default()
        };
        let mut server =
            OarServer::new(ProcessId::new(0), group, config, CounterMachine::default());
        // Our ballot (an unkeyed machine votes `None`) plus one conflicting
        // peer ballot: 2 of 3 split, no strict majority; the third member
        // never answers. The vote is wedged.
        drive(&mut server, |s, ctx| s.start_leaf_vote(ctx, "k".into()));
        assert!(server.sync_votes.contains_key("k"));
        deliver(
            &mut server,
            ProcessId::new(1),
            OarWire::SyncLeafReply {
                key: "k".into(),
                value: Some("conflicting".into()),
            },
        );
        assert!(
            server.sync_votes.contains_key("k"),
            "a 2-of-3 split cannot resolve"
        );
        // Anti-entropy ticks up to the deadline keep the vote in flight...
        for _ in 0..SYNC_VOTE_EXPIRY_TICKS {
            drive(&mut server, |s, ctx| s.maybe_sync(ctx));
        }
        assert!(server.sync_votes.contains_key("k"), "deadline not hit yet");
        // ...and the next tick expires it, so a later probe can retry.
        drive(&mut server, |s, ctx| s.maybe_sync(ctx));
        assert!(server.sync_votes.is_empty(), "wedged vote expired");
        drive(&mut server, |s, ctx| s.start_leaf_vote(ctx, "k".into()));
        assert!(
            server.sync_votes.contains_key("k"),
            "repair for the key is unblocked"
        );
    }
}
