//! A convenience harness that assembles a complete OAR deployment (servers +
//! clients) inside a [`World`], runs workloads and checks the paper's
//! correctness propositions. Used by the integration tests, the examples and
//! the experiment harness.

use oar_channels::CastWire;
use oar_simnet::{NetConfig, ProcessId, Samples, SimDuration, SimTime, World};

use crate::client::{CompletedRequest, OarClient};
use crate::config::{ClientConfig, OarConfig};
use crate::message::{OarWire, ReconfigCmd, Request, RequestId};
use crate::server::{DeliveryRecord, OarServer};
use crate::state_machine::StateMachine;

/// Parameters of a cluster deployment.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of server replicas (`|Π|`).
    pub num_servers: usize,
    /// Number of client processes.
    pub num_clients: usize,
    /// Network configuration.
    pub net: NetConfig,
    /// Protocol configuration shared by all servers.
    pub oar: OarConfig,
    /// Seed of the deterministic simulation.
    pub seed: u64,
    /// Client think time between requests.
    pub think_time: SimDuration,
    /// Maximum outstanding requests per client (1 = the paper's closed-loop
    /// client). Depths above 1 let the sequencer's `OrderMsg` batches and the
    /// servers' `ReplyBatch` coalescing amortise per-request traffic.
    pub client_pipeline: usize,
    /// When `true`, `client_pipeline` is the *cap* of an adaptive window: a
    /// [`crate::adaptive::PipelineController`] per client grows it with the
    /// servers' reported delivery-batch sizes and decays it when load drops.
    pub adaptive_pipeline: bool,
    /// Per-client delay before the first request. Clients beyond the end of
    /// the vector use a small default stagger (10µs × index). Used by the
    /// figure scenarios to issue specific requests while a partition is
    /// installed.
    pub client_start_delays: Vec<SimDuration>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_servers: 3,
            num_clients: 1,
            net: NetConfig::lan(),
            oar: OarConfig::default(),
            seed: 1,
            think_time: SimDuration::ZERO,
            client_pipeline: 1,
            adaptive_pipeline: false,
            client_start_delays: Vec::new(),
        }
    }
}

/// A fully assembled OAR deployment in a simulated world.
pub struct Cluster<S: StateMachine> {
    /// The simulation world. Exposed so experiments can inject crashes,
    /// partitions and custom calls.
    pub world: World<OarWire<S::Command, S::Response>>,
    /// Identifiers of the server processes, in group order.
    pub servers: Vec<ProcessId>,
    /// Identifiers of the client processes.
    pub clients: Vec<ProcessId>,
    /// The protocol configuration the servers were built with (restarted
    /// replicas are rebuilt with the same one).
    pub oar: OarConfig,
}

impl<S: StateMachine> Cluster<S> {
    /// Builds a cluster. `make_sm` creates each replica's initial state (must
    /// be identical); `workload_for(client_index)` is each client's command
    /// list.
    pub fn build(
        config: &ClusterConfig,
        mut make_sm: impl FnMut() -> S,
        mut workload_for: impl FnMut(usize) -> Vec<S::Command>,
    ) -> Self {
        let mut world: World<OarWire<S::Command, S::Response>> =
            World::new(config.net.clone(), config.seed);
        let server_ids: Vec<ProcessId> = (0..config.num_servers).map(ProcessId::new).collect();
        let mut servers = Vec::new();
        for &id in &server_ids {
            let server = OarServer::new(id, server_ids.clone(), config.oar, make_sm());
            let assigned = world.add_process(server);
            debug_assert_eq!(assigned, id);
            servers.push(assigned);
        }
        let mut clients = Vec::new();
        for c in 0..config.num_clients {
            let start_delay = config
                .client_start_delays
                .get(c)
                .copied()
                .unwrap_or_else(|| SimDuration::from_micros(10 * c as u64));
            let mut builder = ClientConfig::builder()
                .think_time(config.think_time)
                .start_delay(start_delay)
                .group(config.oar.group);
            builder = if config.adaptive_pipeline {
                builder.adaptive_pipeline(config.client_pipeline)
            } else {
                builder.pipeline(config.client_pipeline)
            };
            let client: OarClient<S> = OarClient::new(
                ProcessId::new(config.num_servers + c),
                server_ids.clone(),
                workload_for(c),
                builder.build(),
            );
            clients.push(world.add_process(client));
        }
        Cluster {
            world,
            servers,
            clients,
            oar: config.oar,
        }
    }

    /// Schedules server `i` (by group index) to restart at `at` with fresh
    /// in-memory state: the replacement is built with
    /// [`OarServer::recovering`], so on start it fetches a catch-up transfer
    /// (snapshot + settled delta) from a peer instead of replaying the full
    /// history. `make_sm` must produce the service's *initial* state — the
    /// crash lost everything in memory. A no-op if the server is not crashed
    /// at `at`.
    pub fn schedule_server_restart(
        &mut self,
        at: SimTime,
        i: usize,
        make_sm: impl FnOnce() -> S + 'static,
    ) {
        let id = self.servers[i];
        let group = self.servers.clone();
        let oar = self.oar;
        self.world.schedule_restart(at, id, move || {
            Box::new(OarServer::recovering(id, group, oar, make_sm()))
        });
    }

    /// Replaces server `old_index` by a fresh replica: spawns the
    /// replacement (built with [`OarServer::recovering`] over the
    /// post-replacement roster, so it joins through the ordinary `CatchUp*`
    /// wires) and injects a [`ReconfigCmd::Replace`] fence request into the
    /// surviving members, which settle it through the conservative order.
    /// `fence_command` is the no-op application command that carries the
    /// fence. Returns the replacement's process id; `self.servers` tracks
    /// the new roster from here on.
    ///
    /// Meant for a crashed `old` (the usual reason to replace a replica);
    /// a live `old` simply never learns it was fenced out.
    pub fn inject_replace(
        &mut self,
        old_index: usize,
        fence_command: S::Command,
        make_sm: impl FnOnce() -> S,
    ) -> ProcessId {
        let new = spawn_replacement(
            &mut self.world,
            &self.servers,
            old_index,
            self.oar,
            fence_command,
            make_sm(),
        );
        self.servers[old_index] = new;
        new
    }

    /// Injects a divergent value for `key` into server `i`'s settled state
    /// (`None` removes the key) — the fault the Merkle anti-entropy loop
    /// exists to heal. Returns whether the state actually changed.
    pub fn inject_divergence(&mut self, i: usize, key: &str, value: Option<&str>) -> bool {
        let id = self.servers[i];
        self.world
            .process_mut::<OarServer<S>>(id)
            .inject_divergence(key, value)
    }

    /// Total settled reconfiguration fences applied across all servers.
    pub fn total_reconfigs_applied(&self) -> u64 {
        self.sum_stats(|st| st.reconfigs_applied)
    }

    /// Total requests door-dropped and redirected for stale routing.
    pub fn total_redirected(&self) -> u64 {
        self.sum_stats(|st| st.redirected)
    }

    /// Total anti-entropy root probes sent across all servers.
    pub fn total_sync_probes(&self) -> u64 {
        self.sum_stats(|st| st.sync_probes)
    }

    /// Total anti-entropy descent wires (node requests + replies) across all
    /// servers — the O(log n) localisation cost the gate bounds.
    pub fn total_sync_node_wires(&self) -> u64 {
        self.sum_stats(|st| st.sync_node_wires)
    }

    /// Total divergent keys repaired by majority vote across all servers.
    pub fn total_sync_repairs(&self) -> u64 {
        self.sum_stats(|st| st.sync_repairs)
    }

    /// The alive servers that finished any catch-up they were doing — the
    /// population the consistency checks compare (a replica mid-recovery
    /// deliberately holds blank state).
    fn checkable(&self) -> Vec<ProcessId> {
        self.servers
            .iter()
            .copied()
            .filter(|&s| {
                !self.world.is_crashed(s)
                    && !self.world.process_ref::<OarServer<S>>(s).is_recovering()
            })
            .collect()
    }

    /// Runs the simulation until every client finished its workload or the
    /// horizon is reached. Returns `true` if all clients finished.
    pub fn run_to_completion(&mut self, horizon: SimTime) -> bool {
        // Step in slices so we can stop as soon as the workload is done.
        let slice = SimDuration::from_millis(50);
        let mut next = self.world.now() + slice;
        loop {
            self.world.run_until(next);
            if self.all_clients_done() {
                return true;
            }
            if self.world.now() >= horizon {
                return self.all_clients_done();
            }
            next = self.world.now() + slice;
        }
    }

    /// Whether every client finished its workload.
    pub fn all_clients_done(&self) -> bool {
        self.clients
            .iter()
            .all(|&c| self.world.process_ref::<OarClient<S>>(c).is_done())
    }

    /// Read access to server `i` (by index in the group).
    pub fn server(&self, i: usize) -> &OarServer<S> {
        self.world.process_ref::<OarServer<S>>(self.servers[i])
    }

    /// Read access to client `i`.
    pub fn client(&self, i: usize) -> &OarClient<S> {
        self.world.process_ref::<OarClient<S>>(self.clients[i])
    }

    /// All completed requests of all clients.
    pub fn completed_requests(&self) -> Vec<&CompletedRequest<S::Response>> {
        self.clients
            .iter()
            .flat_map(|&c| self.world.process_ref::<OarClient<S>>(c).completed().iter())
            .collect()
    }

    /// Client-observed latencies (milliseconds) of all completed requests.
    pub fn latencies(&self) -> Samples {
        let mut samples = Samples::new();
        for r in self.completed_requests() {
            samples.record_duration(r.latency());
        }
        samples
    }

    /// Total number of `Opt-undeliver` events across all servers.
    pub fn total_undeliveries(&self) -> u64 {
        self.servers
            .iter()
            .map(|&s| {
                self.world
                    .process_ref::<OarServer<S>>(s)
                    .stats()
                    .opt_undelivered
            })
            .sum()
    }

    /// Total number of `OrderMsg` broadcasts sent by sequencers across all
    /// servers. With batching (`OarConfig::max_batch > 1`) this drops well
    /// below the number of requests.
    pub fn total_order_messages(&self) -> u64 {
        self.servers
            .iter()
            .map(|&s| {
                self.world
                    .process_ref::<OarServer<S>>(s)
                    .stats()
                    .order_messages_sent
            })
            .sum()
    }

    /// Total number of phase-2 entries across all servers.
    pub fn total_phase2_entries(&self) -> u64 {
        self.servers
            .iter()
            .map(|&s| {
                self.world
                    .process_ref::<OarServer<S>>(s)
                    .stats()
                    .phase2_entered
            })
            .sum()
    }

    /// Sums `f` over the stats of all servers (crashed ones included — their
    /// counters froze at crash time, which is what the traffic totals want).
    fn sum_stats(&self, f: impl Fn(&crate::server::ServerStats) -> u64) -> u64 {
        self.servers
            .iter()
            .map(|&s| f(&self.world.process_ref::<OarServer<S>>(s).stats()))
            .sum()
    }

    /// Total `ReplyBatch` wires sent to clients across all servers.
    pub fn total_reply_messages(&self) -> u64 {
        self.sum_stats(|st| st.reply_messages_sent)
    }

    /// Total real wall-clock nanoseconds spent inside `StateMachine`
    /// application across all servers. Host time, not simulated time — a
    /// measurement channel for the parallel-apply experiments, never part of
    /// the deterministic protocol state.
    pub fn total_apply_ns(&self) -> u64 {
        self.sum_stats(|st| st.apply_ns)
    }

    /// Total commands applied through multi-command waves (wave size ≥ 2)
    /// across all servers — how much of the workload the conflict-graph
    /// scheduler actually ran concurrently.
    pub fn total_parallel_wave_commands(&self) -> u64 {
        self.servers
            .iter()
            .map(|&s| {
                let stats = self.world.process_ref::<OarServer<S>>(s).stats();
                let h = stats.wave_sizes;
                h.sum() - h.counts()[0]
            })
            .sum()
    }

    /// Total individual request replies carried by those wires.
    pub fn total_replies(&self) -> u64 {
        self.sum_stats(|st| st.replies_sent)
    }

    /// Total consensus wire allocations across all servers (each allocation
    /// may reach many destinations through a shared payload).
    pub fn total_consensus_wires(&self) -> u64 {
        self.sum_stats(|st| st.consensus_wires_sent)
    }

    /// Total per-destination consensus deliveries requested — the allocation
    /// count the pre-clone implementation would have paid.
    pub fn total_consensus_messages(&self) -> u64 {
        self.sum_stats(|st| st.consensus_messages_sent)
    }

    /// Total payloads pruned by the epoch-watermark garbage collector.
    pub fn total_payloads_pruned(&self) -> u64 {
        self.sum_stats(|st| st.payloads_pruned)
    }

    /// The largest `OrderMsg` batch any server emitted as the sequencer.
    pub fn peak_effective_batch(&self) -> u64 {
        self.servers
            .iter()
            .map(|&s| {
                self.world
                    .process_ref::<OarServer<S>>(s)
                    .stats()
                    .effective_batch
                    .peak()
            })
            .max()
            .unwrap_or(0)
    }

    /// The largest batch threshold currently in force at any server (the
    /// adaptive controller's converged target; servers that never sequenced
    /// report their starting value).
    pub fn max_batch_target(&self) -> u64 {
        self.servers
            .iter()
            .map(|&s| {
                self.world
                    .process_ref::<OarServer<S>>(s)
                    .stats()
                    .batch_target
            })
            .max()
            .unwrap_or(0)
    }

    /// Total adaptive-target raises across all servers (convergence counter).
    pub fn total_target_raises(&self) -> u64 {
        self.sum_stats(|st| st.target_raises)
    }

    /// Total adaptive-target drops across all servers (convergence counter).
    pub fn total_target_drops(&self) -> u64 {
        self.sum_stats(|st| st.target_drops)
    }

    /// Total partial batches flushed by the deadline timer across all
    /// servers.
    pub fn total_deadline_flushes(&self) -> u64 {
        self.sum_stats(|st| st.deadline_flushes)
    }

    /// The deepest adaptive pipeline window any client ever adopted (0 when
    /// the clients run a static pipeline).
    pub fn peak_client_window(&self) -> u64 {
        self.clients
            .iter()
            .filter_map(|&c| {
                self.world
                    .process_ref::<OarClient<S>>(c)
                    .pipeline_stats()
                    .map(|s| s.window_peak)
            })
            .max()
            .unwrap_or(0)
    }

    /// The largest peak `payloads` size observed at any server.
    pub fn peak_payloads(&self) -> u64 {
        self.servers
            .iter()
            .map(|&s| {
                self.world
                    .process_ref::<OarServer<S>>(s)
                    .stats()
                    .payloads
                    .peak()
            })
            .max()
            .unwrap_or(0)
    }

    /// The largest peak `seen`-set size (reliable-multicast duplicate
    /// suppression) observed at any server — bounded by the epoch-watermark
    /// aging, like `payloads`.
    pub fn peak_seen(&self) -> u64 {
        self.servers
            .iter()
            .map(|&s| {
                self.world
                    .process_ref::<OarServer<S>>(s)
                    .stats()
                    .seen
                    .peak()
            })
            .max()
            .unwrap_or(0)
    }

    /// The largest *current* `seen`-set size across alive servers.
    pub fn current_seen(&self) -> u64 {
        self.servers
            .iter()
            .filter(|&&s| !self.world.is_crashed(s))
            .map(|&s| self.world.process_ref::<OarServer<S>>(s).seen_len() as u64)
            .max()
            .unwrap_or(0)
    }

    /// The largest peak retained-`A_delivered` length observed at any
    /// server — with [`OarConfig::snapshot_every`] set this is bounded by
    /// the snapshot window instead of growing with the run.
    pub fn peak_a_delivered_len(&self) -> u64 {
        self.servers
            .iter()
            .map(|&s| {
                self.world
                    .process_ref::<OarServer<S>>(s)
                    .stats()
                    .a_delivered_len
                    .peak()
            })
            .max()
            .unwrap_or(0)
    }

    /// The deepest optimistic undo stack observed at any server.
    pub fn peak_undo_depth(&self) -> u64 {
        self.servers
            .iter()
            .map(|&s| {
                self.world
                    .process_ref::<OarServer<S>>(s)
                    .stats()
                    .undo_depth
                    .peak()
            })
            .max()
            .unwrap_or(0)
    }

    /// Total snapshots captured (each also compacted the log) across all
    /// servers.
    pub fn total_snapshots(&self) -> u64 {
        self.sum_stats(|st| st.snapshots_taken)
    }

    /// Total `A_delivered` entries pruned by log compaction across all
    /// servers.
    pub fn total_compacted(&self) -> u64 {
        self.sum_stats(|st| st.compacted)
    }

    /// Total `CatchUpRequest` wires sent (rejoin attempts) across all
    /// servers.
    pub fn total_catch_up_requests(&self) -> u64 {
        self.sum_stats(|st| st.catch_up_requests)
    }

    /// Total `CatchUpReply` transfers served across all servers.
    pub fn total_catch_up_replies(&self) -> u64 {
        self.sum_stats(|st| st.catch_up_replies)
    }

    /// Total `PayloadFetch` repair wires sent across all servers.
    pub fn total_payload_fetches(&self) -> u64 {
        self.sum_stats(|st| st.payload_fetches)
    }

    /// The largest *current* `payloads` size across alive servers.
    pub fn current_payloads(&self) -> u64 {
        self.servers
            .iter()
            .filter(|&&s| !self.world.is_crashed(s))
            .map(|&s| self.world.process_ref::<OarServer<S>>(s).payloads_len() as u64)
            .max()
            .unwrap_or(0)
    }

    /// Checks the server-side safety properties across all *alive* servers
    /// (replicas still mid-catch-up are skipped — they deliberately hold
    /// blank state until the transfer installs):
    ///
    /// * the committed sequences (stable + current optimistic deliveries) of
    ///   any two servers are prefix-compatible (Proposition 5, total order).
    ///   With log compaction a replica no longer retains its full settled
    ///   prefix, so the comparison is **compaction-aware**: the settled
    ///   prefixes are compared through the chained order-hash at the highest
    ///   common settled position, and the retained suffixes element-wise
    ///   from the higher of the two compaction bases;
    /// * no request appears twice in a retained committed sequence
    ///   (Propositions 2–3, at-most-once);
    /// * servers that delivered the same total number of requests
    ///   (compacted prefix included) have identical state-machine digests
    ///   (determinism + total order).
    pub fn check_replica_consistency(&self) -> Result<(), String> {
        let alive: Vec<&OarServer<S>> = self
            .checkable()
            .iter()
            .map(|&p| self.world.process_ref::<OarServer<S>>(p))
            .collect();
        crate::consistency::check_server_consistency(&alive)
    }

    /// Checks external consistency (Proposition 7): every response adopted by a
    /// client matches, at every alive server that delivered the request without
    /// undoing it, the position at which that server processed the request.
    pub fn check_external_consistency(&self) -> Result<(), String> {
        let alive: Vec<&OarServer<S>> = self
            .checkable()
            .iter()
            .map(|&p| self.world.process_ref::<OarServer<S>>(p))
            .collect();
        let completed: Vec<&[CompletedRequest<S::Response>]> = self
            .clients
            .iter()
            .map(|&c| self.world.process_ref::<OarClient<S>>(c).completed())
            .collect();
        crate::consistency::check_external_consistency(&alive, &completed)
    }

    /// Collects every delivery record of every server, annotated with the
    /// server index — handy for figure-style timelines.
    pub fn delivery_logs(&self) -> Vec<(usize, Vec<DeliveryRecord>)> {
        self.servers
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                (
                    i,
                    self.world
                        .process_ref::<OarServer<S>>(s)
                        .delivery_log()
                        .to_vec(),
                )
            })
            .collect()
    }
}

/// The world-level core of [`Cluster::inject_replace`], usable without a
/// [`Cluster`] (the model checker drives a bare [`World`]): spawns the
/// replacement replica — built with [`OarServer::recovering`] over the
/// post-replacement roster, so it joins through the ordinary `CatchUp*`
/// wires — and injects the [`ReconfigCmd::Replace`] fence request into the
/// surviving members, which settle it through the conservative order.
/// `servers` is the *pre*-replacement roster; the caller is responsible for
/// tracking the new one. Returns the replacement's process id.
pub fn spawn_replacement<S: StateMachine>(
    world: &mut World<OarWire<S::Command, S::Response>>,
    servers: &[ProcessId],
    old_index: usize,
    oar: OarConfig,
    fence_command: S::Command,
    sm: S,
) -> ProcessId {
    let old = servers[old_index];
    let new = ProcessId::new(world.num_processes());
    let mut roster = servers.to_vec();
    roster[old_index] = new;
    let spawned = world.add_process(OarServer::recovering(new, roster, oar, sm));
    debug_assert_eq!(spawned, new);
    // The fence rides an ordinary request, R-multicast to the surviving
    // members; the replacement's pid doubles as the admin "client" (it
    // exists, and servers ignore stray `Replies` wires).
    let id = RequestId::new(new, u64::MAX);
    let wire = CastWire {
        id,
        origin: new,
        payload: Request {
            id,
            client: new,
            group: oar.group,
            txn: None,
            reconfig: Some(ReconfigCmd::Replace { old, new }),
            route_epoch: 0,
            command: fence_command,
        },
    };
    for &s in servers {
        if s != old && !world.is_crashed(s) {
            world.send_external(new, s, OarWire::Request(wire.clone()));
        }
    }
    new
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state_machine::{CounterCommand, CounterMachine};

    fn workload(n: usize) -> Vec<CounterCommand> {
        (0..n).map(|i| CounterCommand::Add(i as i64 + 1)).collect()
    }

    #[test]
    fn failure_free_run_completes_and_is_consistent() {
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: 2,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |_| workload(5));
        let done = cluster.run_to_completion(SimTime::from_secs(10));
        assert!(done, "clients did not finish");
        assert_eq!(cluster.completed_requests().len(), 10);
        cluster.check_replica_consistency().unwrap();
        cluster.check_external_consistency().unwrap();
        // No failures: phase 2 never runs, nothing is undone.
        assert_eq!(cluster.total_phase2_entries(), 0);
        assert_eq!(cluster.total_undeliveries(), 0);
        // All replies were optimistic with weight 2 (p + sequencer) or 1.
        for r in cluster.completed_requests() {
            assert!(r.adopted_weight <= 3);
        }
    }

    #[test]
    fn latencies_are_recorded() {
        let config = ClusterConfig::default();
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |_| workload(3));
        cluster.run_to_completion(SimTime::from_secs(10));
        let lat = cluster.latencies();
        assert_eq!(lat.len(), 3);
        assert!(lat.mean().unwrap() > 0.0);
    }

    #[test]
    fn sequencer_crash_is_tolerated() {
        let config = ClusterConfig {
            num_servers: 3,
            num_clients: 1,
            ..ClusterConfig::default()
        };
        let mut cluster: Cluster<CounterMachine> =
            Cluster::build(&config, CounterMachine::default, |_| workload(10));
        // Crash the initial sequencer (server 0) shortly after the run starts.
        let victim = cluster.servers[0];
        cluster
            .world
            .schedule_crash(victim, SimTime::from_millis(3));
        let done = cluster.run_to_completion(SimTime::from_secs(30));
        assert!(done, "workload did not complete after sequencer crash");
        cluster.check_replica_consistency().unwrap();
        cluster.check_external_consistency().unwrap();
        assert!(
            cluster.total_phase2_entries() > 0,
            "phase 2 should have run"
        );
    }
}
