//! Merkle tree over settled state, for anti-entropy.
//!
//! The consistency checks so far compare replicas by a single flat digest —
//! enough to *detect* divergence, useless to *find* it. Anti-entropy (the
//! Dynamo/Cassandra repair idiom) upgrades the comparison to a Merkle tree:
//! two replicas whose roots differ exchange O(log n) interior nodes to
//! localise the divergent leaves, then repair exactly those keys instead of
//! re-shipping the whole state.
//!
//! The tree is an implicit binary heap over the sorted leaf set: leaf `i` of
//! `p` (the leaf count padded to a power of two) lives at heap index `p + i`,
//! the children of interior node `i` are `2i` and `2i+1`, the root is node 1.
//! Both sides sort their leaves by key, so equal states build bit-identical
//! trees and a single divergent key perturbs exactly one root-to-leaf path.
//!
//! The server's repair loop ([`crate::server`]) drives the descent over the
//! `SyncProbe` / `SyncNodeRequest` / `SyncNodeReply` wires and settles each
//! localised leaf by majority vote among the group members.

use std::fmt;

/// One node of a Merkle tree, as shipped in a `SyncNodeReply`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncNode {
    /// An interior node: the hashes of its two children.
    Inner {
        /// Hash of the left child (heap index `2i`).
        left: u64,
        /// Hash of the right child (heap index `2i + 1`).
        right: u64,
    },
    /// A leaf holding one key of the settled state.
    Leaf {
        /// The key.
        key: String,
        /// The leaf hash (key and value hashed together).
        hash: u64,
    },
    /// A padding leaf beyond the last key (the leaf row is padded to a power
    /// of two).
    Empty,
}

impl fmt::Display for SyncNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncNode::Inner { left, right } => write!(f, "inner({left:016x},{right:016x})"),
            SyncNode::Leaf { key, hash } => write!(f, "leaf({key},{hash:016x})"),
            SyncNode::Empty => write!(f, "empty"),
        }
    }
}

/// FNV-1a over a byte slice, the repo's standard cheap digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hash of a leaf: key bytes and value hash, domain-separated from interior
/// nodes so a leaf can never collide with the combination of two children.
fn leaf_hash(key: &str, value_hash: u64) -> u64 {
    let mut bytes = Vec::with_capacity(key.len() + 9);
    bytes.push(0x00);
    bytes.extend_from_slice(key.as_bytes());
    bytes.extend_from_slice(&value_hash.to_le_bytes());
    fnv1a(&bytes)
}

/// Hash of an interior node from its children.
fn inner_hash(left: u64, right: u64) -> u64 {
    let mut bytes = [0u8; 17];
    bytes[0] = 0x01;
    bytes[1..9].copy_from_slice(&left.to_le_bytes());
    bytes[9..17].copy_from_slice(&right.to_le_bytes());
    fnv1a(&bytes)
}

/// A Merkle tree over a replica's settled key/value-hash pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleTree {
    /// Heap of node hashes, 1-based (`nodes[0]` unused). `nodes[pad + i]` is
    /// leaf `i`; padding leaves hash to 0.
    nodes: Vec<u64>,
    /// The leaves in key order, as `(key, value_hash)`.
    leaves: Vec<(String, u64)>,
    /// The padded leaf-row width (a power of two, ≥ 1).
    pad: usize,
}

impl MerkleTree {
    /// Builds the tree over `leaves` (sorted internally by key; keys must be
    /// distinct — the settled state is a map).
    pub fn build(mut leaves: Vec<(String, u64)>) -> Self {
        leaves.sort_by(|a, b| a.0.cmp(&b.0));
        let pad = leaves.len().next_power_of_two().max(1);
        let mut nodes = vec![0u64; 2 * pad];
        for (i, (key, value_hash)) in leaves.iter().enumerate() {
            nodes[pad + i] = leaf_hash(key, *value_hash);
        }
        for i in (1..pad).rev() {
            nodes[i] = inner_hash(nodes[2 * i], nodes[2 * i + 1]);
        }
        if pad == 1 && leaves.is_empty() {
            nodes[1] = 0;
        }
        MerkleTree { nodes, leaves, pad }
    }

    /// The root hash (node 1). Two replicas with equal settled state have
    /// equal roots; a single divergent key flips the root.
    pub fn root(&self) -> u64 {
        self.nodes[1]
    }

    /// Number of real (non-padding) leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Whether a peer tree with `peer_leaves` real leaves pads to the same
    /// leaf-row width as this tree. Heap indices are only meaningful between
    /// same-width trees: an index that is interior here may be a leaf (or out
    /// of range) in a differently padded tree, so the descent must not cross
    /// a shape mismatch — the repair loop falls back to a full key-set
    /// exchange instead.
    pub fn same_shape(&self, peer_leaves: u64) -> bool {
        (peer_leaves as usize).next_power_of_two().max(1) == self.pad
    }

    /// Tree depth: root-to-leaf path length, `log2(pad)`.
    pub fn depth(&self) -> u32 {
        self.pad.trailing_zeros()
    }

    /// Hash of the node at heap `index`, if in range.
    pub fn hash_at(&self, index: u64) -> Option<u64> {
        let i = index as usize;
        (1..self.nodes.len()).contains(&i).then(|| self.nodes[i])
    }

    /// The node at heap `index` in wire form, if in range.
    pub fn node(&self, index: u64) -> Option<SyncNode> {
        let i = index as usize;
        if i < 1 || i >= self.nodes.len() {
            return None;
        }
        if i < self.pad {
            return Some(SyncNode::Inner {
                left: self.nodes[2 * i],
                right: self.nodes[2 * i + 1],
            });
        }
        Some(match self.leaves.get(i - self.pad) {
            Some((key, value_hash)) => SyncNode::Leaf {
                key: key.clone(),
                hash: leaf_hash(key, *value_hash),
            },
            None => SyncNode::Empty,
        })
    }

    /// Given a peer's node at `index`, the child indices (or this tree's
    /// divergent leaf keys) to descend into: indices of children whose
    /// hashes differ, and — when `index` is a leaf — the key(s) involved on
    /// either side. Drives the O(log n) descent: at each level at most the
    /// differing children are followed.
    pub fn diff_step(&self, index: u64, peer: &SyncNode) -> (Vec<u64>, Vec<String>) {
        let mut descend = Vec::new();
        let mut keys = Vec::new();
        match (self.node(index), peer) {
            (
                Some(SyncNode::Inner { left, right }),
                SyncNode::Inner {
                    left: pl,
                    right: pr,
                },
            ) => {
                if left != *pl {
                    descend.push(2 * index);
                }
                if right != *pr {
                    descend.push(2 * index + 1);
                }
            }
            (Some(SyncNode::Leaf { key, hash }), SyncNode::Leaf { key: pk, hash: ph }) => {
                if key == *pk {
                    if hash != *ph {
                        keys.push(key);
                    }
                } else {
                    // Key sets differ at this position: both keys are
                    // candidates for repair voting.
                    keys.push(key);
                    keys.push(pk.clone());
                }
            }
            (Some(SyncNode::Leaf { key, .. }), SyncNode::Empty) => keys.push(key),
            (Some(SyncNode::Empty), SyncNode::Leaf { key, .. }) => keys.push(key.clone()),
            _ => {}
        }
        (descend, keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_leaves(pairs: &[(&str, &str)]) -> Vec<(String, u64)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), fnv1a(v.as_bytes())))
            .collect()
    }

    #[test]
    fn equal_states_build_equal_trees_regardless_of_leaf_order() {
        let a = MerkleTree::build(kv_leaves(&[("a", "1"), ("b", "2"), ("c", "3")]));
        let b = MerkleTree::build(kv_leaves(&[("c", "3"), ("a", "1"), ("b", "2")]));
        assert_eq!(a.root(), b.root());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let t = MerkleTree::build(Vec::new());
        assert_eq!(t.root(), 0);
        assert_eq!(t.leaf_count(), 0);
        assert_eq!(t.node(1), Some(SyncNode::Empty));
    }

    #[test]
    fn any_single_key_change_flips_the_root() {
        let base = MerkleTree::build(kv_leaves(&[("a", "1"), ("b", "2"), ("c", "3")]));
        let value_changed = MerkleTree::build(kv_leaves(&[("a", "1"), ("b", "X"), ("c", "3")]));
        let key_missing = MerkleTree::build(kv_leaves(&[("a", "1"), ("c", "3")]));
        assert_ne!(base.root(), value_changed.root());
        assert_ne!(base.root(), key_missing.root());
    }

    /// The descent localises a single divergent key in exactly `depth`
    /// steps, following one node per level — the O(log n) bound the
    /// anti-entropy gate measures on the wire.
    #[test]
    fn descent_localises_single_divergence_in_depth_steps() {
        let n = 64;
        let healthy: Vec<(String, u64)> = (0..n)
            .map(|i| (format!("key{i:03}"), fnv1a(format!("v{i}").as_bytes())))
            .collect();
        let mut corrupted = healthy.clone();
        corrupted[17].1 = fnv1a(b"corrupted");
        let good = MerkleTree::build(healthy);
        let bad = MerkleTree::build(corrupted);
        assert_ne!(good.root(), bad.root());

        let mut frontier = vec![1u64];
        let mut found = Vec::new();
        let mut steps = 0;
        while let Some(index) = frontier.pop() {
            steps += 1;
            let peer = good.node(index).expect("same shape");
            let (descend, keys) = bad.diff_step(index, &peer);
            frontier.extend(descend);
            found.extend(keys);
        }
        assert_eq!(found, vec!["key017".to_string()]);
        // Root + one interior node per level + the leaf.
        assert_eq!(steps as u32, bad.depth() + 1);
    }

    #[test]
    fn diff_step_reports_key_set_divergence_at_leaves() {
        // Both trees pad their leaf row to 4, so heap shapes match; `b` is
        // missing `d` and pads the slot with an empty leaf.
        let a = MerkleTree::build(kv_leaves(&[("a", "1"), ("b", "2"), ("c", "3"), ("d", "4")]));
        let b = MerkleTree::build(kv_leaves(&[("a", "1"), ("b", "2"), ("c", "3")]));
        let slot = 4 + 3; // heap index of leaf position 3
        let (_, keys) = a.diff_step(slot, &b.node(slot).expect("in range"));
        assert_eq!(keys, vec!["d".to_string()]);
        let (_, keys) = b.diff_step(slot, &a.node(slot).expect("in range"));
        assert_eq!(keys, vec!["d".to_string()]);
        // Same position, different keys: both are repair candidates.
        let c = MerkleTree::build(kv_leaves(&[("a", "1"), ("b", "2"), ("c", "3"), ("e", "5")]));
        let (_, keys) = a.diff_step(slot, &c.node(slot).expect("in range"));
        assert_eq!(keys, vec!["d".to_string(), "e".to_string()]);
    }

    /// Shape compatibility: the descent is only meaningful between trees
    /// whose leaf rows pad to the same power of two — 9 leaves pad to 16
    /// while 8 pad to 8, so a single removed key can make heap indices
    /// incomparable even at equal settled counts.
    #[test]
    fn same_shape_tracks_the_padded_width() {
        let nine = MerkleTree::build(
            (0..9)
                .map(|i| (format!("k{i}"), fnv1a(b"v")))
                .collect::<Vec<_>>(),
        );
        assert!(nine.same_shape(9), "equal counts always match");
        assert!(nine.same_shape(10), "10 pads to 16 like 9 does");
        assert!(nine.same_shape(16));
        assert!(!nine.same_shape(8), "8 pads to 8, not 16");
        assert!(!nine.same_shape(17), "17 pads to 32");
        let empty = MerkleTree::build(Vec::new());
        assert!(empty.same_shape(0));
        assert!(empty.same_shape(1), "0 and 1 both pad to width 1");
        assert!(!empty.same_shape(2));
    }

    #[test]
    fn node_accessors_are_bounded() {
        let t = MerkleTree::build(kv_leaves(&[("a", "1")]));
        assert!(t.node(0).is_none());
        assert!(t.hash_at(99).is_none());
        assert_eq!(t.hash_at(1), Some(t.root()));
    }
}
