//! Sharded multi-group OAR: several independent replication groups over one
//! simulated network, a key → group router, and clients that fan requests to
//! the group owning each key.
//!
//! With the per-group hot path linear and the per-batch traffic amortised, a
//! single sequencer is the scalability ceiling of a one-group deployment.
//! This module partitions the *key space* over `N` OAR groups — each with
//! its own sequencer, consensus instance and failure detector — following
//! the parallel-SMR observation that commands touching disjoint state need
//! not share one total order.
//!
//! # What is (and is not) ordered
//!
//! * **Inside a group**: the full OAR guarantees — total order, at-most-once,
//!   external consistency — hold per group, unchanged. Since the router is a
//!   pure function of the key, *per-key* ordering is exactly the owning
//!   group's total order.
//! * **Across groups**: nothing. Two requests routed to different groups are
//!   processed with no ordering relation whatsoever; there is no cross-group
//!   agreement on the critical path (or anywhere else). Workloads needing
//!   cross-key atomicity must place those keys in one group (range
//!   partitioning) or run on a single group.
//!
//! Misrouting is a safety hazard (a request ordered against the wrong key
//! space), so every request carries its intended [`GroupId`] and servers
//! drop + count mismatches ([`ServerStats::misrouted`]); the experiment
//! harness gates on the count staying zero.

use std::collections::{BTreeMap, HashMap, VecDeque};

use oar_channels::CastWire;
use oar_sequence::Seq;
use oar_simnet::{
    GroupId, NetConfig, NetStats, Process, ProcessId, Runtime, Samples, SimDuration, SimTime,
    Timer, TimerTag, World,
};

use crate::adaptive::{PipelineController, PipelineStats};
use crate::client::{CompletedRequest, QuorumTracker};
use crate::config::OarConfig;
use crate::config::{ClientConfig, PipelineMode};
use crate::message::{majority, OarWire, ReconfigCmd, Reply, ReplyBatch, Request, RequestId};
use crate::server::{OarServer, ServerStats};
use crate::shard::{KeyRange, MigrationRecord, ShardKey, ShardRouter};
use crate::state_machine::StateMachine;

/// Timer tag used for the think-time delay between two requests.
const NEXT_REQUEST: TimerTag = TimerTag::NextRequest;

/// Parameters of a sharded deployment.
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Number of OAR groups the key space is partitioned over.
    pub num_groups: usize,
    /// Replicas per group (`|Π|` of each group).
    pub servers_per_group: usize,
    /// Number of client processes; every client may talk to every group.
    pub num_clients: usize,
    /// The key → group router, replicated at every client.
    /// Must agree with `num_groups`.
    pub router: ShardRouter,
    /// Network configuration (shared by all groups: sharding splits the key
    /// space, not the network).
    pub net: NetConfig,
    /// Protocol configuration template; each group's servers get it stamped
    /// with their [`GroupId`] via [`OarConfig::for_group`].
    pub oar: OarConfig,
    /// Seed of the deterministic simulation.
    pub seed: u64,
    /// Client think time between requests.
    pub think_time: SimDuration,
    /// Static pipelines: the maximum outstanding requests per client,
    /// across all groups. With `adaptive_pipeline` set it is instead the cap
    /// of each **per-group** window, so a client may hold up to
    /// `num_groups × client_pipeline` requests once every group's window has
    /// opened fully.
    pub client_pipeline: usize,
    /// When `true`, each client keeps one
    /// [`PipelineController`] per group
    /// and adapts that group's window to its reported delivery-batch sizes —
    /// groups under different load converge to different windows.
    pub adaptive_pipeline: bool,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            num_groups: 2,
            servers_per_group: 3,
            num_clients: 2,
            router: ShardRouter::hash(2),
            net: NetConfig::lan(),
            oar: OarConfig::default(),
            seed: 1,
            think_time: SimDuration::ZERO,
            client_pipeline: 1,
            adaptive_pipeline: false,
        }
    }
}

#[derive(Debug)]
struct Outstanding<C, R> {
    group: GroupId,
    index: usize,
    sent_at: SimTime,
    quorum: QuorumTracker<R>,
    /// The command itself, retained so a [`OarWire::Redirect`] can re-route
    /// the request to the group that now owns its key.
    command: C,
    /// The routing-boundary epoch the request was last sent under. Used to
    /// de-duplicate redirects: once a request was re-sent under the current
    /// epoch, further `Redirect`s naming it (one per group member that
    /// door-dropped a first-hand copy) are ignored.
    route_epoch: u64,
}

/// Per-group adaptive pipeline state of a [`ShardedClient`]: one window
/// controller and in-flight count per group, so each group's window tracks
/// *its* sequencer's batching independently (skewed per-group load converges
/// to skewed windows).
#[derive(Debug)]
struct GroupPipelines {
    controllers: Vec<PipelineController>,
    in_flight: Vec<usize>,
    /// Which group each server belongs to, for attributing reply wires.
    server_group: HashMap<ProcessId, usize>,
}

impl GroupPipelines {
    fn new(groups: &[Vec<ProcessId>], cap: usize) -> Self {
        let server_group = groups
            .iter()
            .enumerate()
            .flat_map(|(g, servers)| servers.iter().map(move |&s| (s, g)))
            .collect();
        GroupPipelines {
            controllers: groups
                .iter()
                .map(|_| PipelineController::new(cap))
                .collect(),
            in_flight: vec![0; groups.len()],
            server_group,
        }
    }
}

/// A request completed by a sharded client: the group that served it plus
/// the per-request bookkeeping of the single-group client.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardCompleted<R> {
    /// The group the request was routed to (and answered by).
    pub group: GroupId,
    /// The adopted reply and its bookkeeping.
    pub request: CompletedRequest<R>,
}

/// A client of a sharded deployment: it routes every command of its workload
/// to the group owning the command's key, R-multicasts it to that group, and
/// applies the Fig. 5 weighted-quorum adoption rule *per owning group* — the
/// optimistic/conservative reply semantics of each request are exactly those
/// of a single-group client, with the majority threshold of the group that
/// serves it.
#[derive(Debug)]
pub struct ShardedClient<S: StateMachine> {
    id: ProcessId,
    /// Server ids per group, indexed by [`GroupId`].
    groups: Vec<Vec<ProcessId>>,
    router: ShardRouter,
    workload: VecDeque<S::Command>,
    /// Requests get ids `(self.id, seq)` from one counter across all groups,
    /// so ids stay unique however commands are routed.
    next_seq: u64,
    next_index: usize,
    think_time: SimDuration,
    start_delay: SimDuration,
    pipeline: usize,
    /// Present when each group's window adapts to its delivery-batch hints.
    adaptive: Option<GroupPipelines>,
    outstanding: BTreeMap<RequestId, Outstanding<S::Command, S::Response>>,
    completed: Vec<ShardCompleted<S::Response>>,
}

impl<S: StateMachine> ShardedClient<S>
where
    S::Command: ShardKey,
{
    /// Creates a client submitting `workload` to the deployment described by
    /// `groups` (server ids per group) and `router`.
    ///
    /// # Panics
    ///
    /// Panics if the router's group count differs from `groups.len()`.
    pub fn new(
        id: ProcessId,
        groups: Vec<Vec<ProcessId>>,
        router: ShardRouter,
        workload: Vec<S::Command>,
        config: ClientConfig,
    ) -> Self {
        assert_eq!(
            router.num_groups(),
            groups.len(),
            "router and deployment disagree on the group count"
        );
        let adaptive = match config.pipeline {
            PipelineMode::Fixed(_) => None,
            // One adaptive window per group, each driven by that group's
            // reported delivery-batch sizes, so a heavily loaded group
            // pipelines deeply while a light one stays closed-loop.
            PipelineMode::Adaptive(cap) => Some(GroupPipelines::new(&groups, cap)),
        };
        ShardedClient {
            id,
            groups,
            router,
            workload: workload.into(),
            next_seq: 0,
            next_index: 0,
            think_time: config.think_time,
            start_delay: config.start_delay,
            pipeline: config.initial_window().max(1),
            adaptive,
            outstanding: BTreeMap::new(),
            completed: Vec::new(),
        }
    }

    /// Convergence counters of group `g`'s adaptive window (`None` for a
    /// static pipeline).
    pub fn group_pipeline_stats(&self, g: usize) -> Option<PipelineStats> {
        self.adaptive
            .as_ref()
            .and_then(|a| a.controllers.get(g))
            .map(|c| c.stats())
    }

    /// The client's process identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The requests completed so far, in completion order.
    pub fn completed(&self) -> &[ShardCompleted<S::Response>] {
        &self.completed
    }

    /// Whether the whole workload has been submitted and answered.
    pub fn is_done(&self) -> bool {
        self.workload.is_empty() && self.outstanding.is_empty()
    }

    /// Submits requests until the pipeline window is full or the workload is
    /// exhausted. Each request is R-multicast to the servers of its owning
    /// group only (the client is not a member, so the group's internal relay
    /// provides Agreement).
    ///
    /// With a static pipeline the window is global; with adaptive pipelining
    /// the head-of-line command must fit its *owning group's* window —
    /// commands stay FIFO, so a light group's shallow window can briefly
    /// hold back traffic for a deep one, which keeps per-key submission
    /// order trivially intact.
    fn fill_pipeline(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        loop {
            let Some(command) = self.workload.front() else {
                return;
            };
            let group = self.router.route(command);
            match &self.adaptive {
                None => {
                    if self.outstanding.len() >= self.pipeline {
                        return;
                    }
                }
                Some(a) => {
                    let g = group.index();
                    if a.in_flight[g] >= a.controllers[g].window() {
                        return;
                    }
                }
            }
            let command = self.workload.pop_front().expect("peeked above");
            if let Some(a) = self.adaptive.as_mut() {
                a.in_flight[group.index()] += 1;
            }
            let id = RequestId::new(self.id, self.next_seq);
            self.next_seq += 1;
            let wire = CastWire {
                id,
                origin: self.id,
                payload: Request {
                    id,
                    client: self.id,
                    group,
                    txn: None,
                    reconfig: None,
                    route_epoch: self.router.route_epoch(),
                    command: command.clone(),
                },
            };
            ctx.send_all(&self.groups[group.index()], OarWire::Request(wire));
            ctx.annotate(format!("OAR-multicast({id}, {group})"));
            self.outstanding.insert(
                id,
                Outstanding {
                    group,
                    index: self.next_index,
                    sent_at: ctx.now(),
                    quorum: QuorumTracker::new(),
                    command,
                    route_epoch: self.router.route_epoch(),
                },
            );
            self.next_index += 1;
        }
    }

    fn handle_reply_batch(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        batch: ReplyBatch<S::Response>,
    ) {
        // Adapt the sending group's window before unpacking, so the refills
        // triggered by the adoptions below see the adjusted pipeline.
        if let Some(a) = self.adaptive.as_mut() {
            if let Some(&g) = a.server_group.get(&batch.from) {
                a.controllers[g].observe_batch(batch.batch_hint);
            }
        }
        for reply in batch.unpack() {
            self.handle_reply(ctx, reply);
        }
    }

    /// The Fig. 5 adoption rule, with the majority threshold of the request's
    /// owning group.
    fn handle_reply(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        reply: Reply<S::Response>,
    ) {
        let request = reply.request;
        let Some(outstanding) = self.outstanding.get_mut(&request) else {
            return; // stale reply for an already-completed request
        };
        let threshold = majority(self.groups[outstanding.group.index()].len());
        let Some((epoch, reply)) = outstanding.quorum.absorb(reply, threshold) else {
            return;
        };
        let outstanding = self.outstanding.remove(&request).expect("outstanding");
        if let Some(a) = self.adaptive.as_mut() {
            a.in_flight[outstanding.group.index()] -= 1;
        }
        ctx.annotate(format!(
            "adopt({}, {}, pos={}, |W|={})",
            request,
            outstanding.group,
            reply.position,
            reply.weight.len()
        ));
        self.completed.push(ShardCompleted {
            group: outstanding.group,
            request: CompletedRequest {
                id: request,
                index: outstanding.index,
                response: reply.response,
                position: reply.position,
                epoch,
                adopted_weight: reply.weight.len(),
                replies_seen: outstanding.quorum.replies_seen(),
                sent_at: outstanding.sent_at,
                completed_at: ctx.now(),
            },
        });
        if self.workload.is_empty() {
            return;
        }
        if self.think_time.is_zero() {
            self.fill_pipeline(ctx);
        } else {
            ctx.set_timer(self.think_time, NEXT_REQUEST);
        }
    }

    /// Handles a routing redirect from a donor group: advance the local
    /// router past the migrations the redirect carries, then re-send exactly
    /// the requests the redirect names as **dropped** — under their
    /// *original* [`RequestId`]s, so the servers' at-most-once guarantee
    /// (and the cross-group leak check) still holds.
    ///
    /// Only dropped requests may be re-sent. An outstanding request the
    /// donor already ordered is *not* dropped: its effect travels in the
    /// migrated hand-off and its replies are still in flight, so re-sending
    /// it to the recipient group — whose seen-set has never met its id —
    /// would order and execute it a second time. The servers name a request
    /// in `dropped` only when no copy of it can settle anywhere (door-drop
    /// before the caster, or fence prune with the seen entry retained), so
    /// the re-send is the request's only path to settlement.
    fn handle_redirect(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        records: Vec<MigrationRecord>,
        dropped: Vec<RequestId>,
    ) {
        for record in &records {
            self.router.apply_record(record);
        }
        let route_epoch = self.router.route_epoch();
        for id in dropped {
            let Some(outstanding) = self.outstanding.get_mut(&id) else {
                continue; // already completed (a racing group answered)
            };
            if outstanding.route_epoch >= route_epoch {
                continue; // already re-sent under the current boundary
            }
            let group = self.router.route(&outstanding.command);
            if group != outstanding.group {
                if let Some(a) = self.adaptive.as_mut() {
                    a.in_flight[outstanding.group.index()] -= 1;
                    a.in_flight[group.index()] += 1;
                }
                // Partial optimistic weight from the donor group must not be
                // mixed with the recipient's replies (epoch numbers are
                // per-group), so the tracker restarts from scratch.
                outstanding.group = group;
                outstanding.quorum = QuorumTracker::new();
            }
            // Same group: the first-hand copy was door-dropped for the stale
            // stamp alone, so re-send under the fresh one; if a pre-fence
            // relay spread it after all, the group's seen-set absorbs the
            // duplicate.
            outstanding.route_epoch = route_epoch;
            let wire = CastWire {
                id,
                origin: self.id,
                payload: Request {
                    id,
                    client: self.id,
                    group,
                    txn: None,
                    reconfig: None,
                    route_epoch,
                    command: outstanding.command.clone(),
                },
            };
            ctx.send_all(&self.groups[group.index()], OarWire::Request(wire));
            ctx.annotate(format!("OAR-redirect({id}, {group})"));
        }
    }
}

impl<S: StateMachine> Process<OarWire<S::Command, S::Response>> for ShardedClient<S>
where
    S::Command: ShardKey,
{
    fn on_start(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        if self.start_delay.is_zero() {
            self.fill_pipeline(ctx);
        } else {
            ctx.set_timer(self.start_delay, NEXT_REQUEST);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        _from: ProcessId,
        msg: OarWire<S::Command, S::Response>,
    ) {
        match msg {
            OarWire::Replies(batch) => self.handle_reply_batch(ctx, batch),
            OarWire::Redirect { records, dropped } => self.handle_redirect(ctx, records, dropped),
            // Clients ignore every other message kind.
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>, timer: Timer) {
        if timer.tag == NEXT_REQUEST
            && (self.adaptive.is_some() || self.outstanding.len() < self.pipeline)
        {
            self.fill_pipeline(ctx);
        }
    }

    fn name(&self) -> String {
        format!("sharded-client-{}", self.id.index())
    }
}

/// A fully assembled sharded OAR deployment: `num_groups` independent server
/// groups plus routing clients, in one simulated world.
pub struct ShardedCluster<S: StateMachine> {
    /// The simulation world. Exposed so experiments can inject crashes,
    /// partitions and custom calls.
    pub world: World<OarWire<S::Command, S::Response>>,
    /// Server identifiers per group, indexed by [`GroupId`].
    pub groups: Vec<Vec<ProcessId>>,
    /// Identifiers of the client processes.
    pub clients: Vec<ProcessId>,
    /// The router shared by all clients.
    pub router: ShardRouter,
    /// The protocol configuration the groups were built with (before
    /// [`OarConfig::for_group`] stamping) — kept for replacement spawns.
    oar: OarConfig,
}

impl<S: StateMachine> ShardedCluster<S>
where
    S::Command: ShardKey,
{
    /// Builds a sharded cluster. `make_sm` creates each replica's initial
    /// state (identical per group — and, as groups own disjoint key ranges,
    /// in practice identical everywhere); `workload_for(client_index)` is
    /// each client's command list, routed per command.
    ///
    /// # Panics
    ///
    /// Panics if the router's group count differs from `config.num_groups`.
    pub fn build(
        config: &ShardedConfig,
        mut make_sm: impl FnMut() -> S,
        mut workload_for: impl FnMut(usize) -> Vec<S::Command>,
    ) -> Self {
        assert_eq!(
            config.router.num_groups(),
            config.num_groups,
            "router and config disagree on the group count"
        );
        let mut world: World<OarWire<S::Command, S::Response>> =
            World::new(config.net.clone(), config.seed);
        let groups = build_group_servers(&mut world, config, &mut make_sm);
        let first_client = config.num_groups * config.servers_per_group;
        let mut clients = Vec::with_capacity(config.num_clients);
        for c in 0..config.num_clients {
            let mut builder = ClientConfig::builder()
                .think_time(config.think_time)
                .start_delay(SimDuration::from_micros(10 * c as u64));
            builder = if config.adaptive_pipeline {
                builder.adaptive_pipeline(config.client_pipeline)
            } else {
                builder.pipeline(config.client_pipeline)
            };
            let client: ShardedClient<S> = ShardedClient::new(
                ProcessId::new(first_client + c),
                groups.clone(),
                config.router.clone(),
                workload_for(c),
                builder.build(),
            );
            clients.push(world.add_process(client));
        }
        ShardedCluster {
            world,
            groups,
            clients,
            router: config.router.clone(),
            oar: config.oar,
        }
    }

    /// Runs the simulation until every client finished its workload or the
    /// horizon is reached. Returns `true` if all clients finished.
    pub fn run_to_completion(&mut self, horizon: SimTime) -> bool {
        let slice = SimDuration::from_millis(50);
        let mut next = self.world.now() + slice;
        loop {
            self.world.run_until(next);
            if self.all_clients_done() {
                return true;
            }
            if self.world.now() >= horizon {
                return self.all_clients_done();
            }
            next = self.world.now() + slice;
        }
    }

    /// Whether every client finished its workload.
    pub fn all_clients_done(&self) -> bool {
        self.clients
            .iter()
            .all(|&c| self.world.process_ref::<ShardedClient<S>>(c).is_done())
    }

    /// Read access to server `i` of group `g`.
    pub fn server(&self, g: usize, i: usize) -> &OarServer<S> {
        self.world.process_ref::<OarServer<S>>(self.groups[g][i])
    }

    /// Read access to client `i`.
    pub fn client(&self, i: usize) -> &ShardedClient<S> {
        self.world.process_ref::<ShardedClient<S>>(self.clients[i])
    }

    /// All completed requests of all clients, with their owning group.
    pub fn completed_requests(&self) -> Vec<&ShardCompleted<S::Response>> {
        self.clients
            .iter()
            .flat_map(|&c| {
                self.world
                    .process_ref::<ShardedClient<S>>(c)
                    .completed()
                    .iter()
            })
            .collect()
    }

    /// Client-observed latencies (milliseconds) of all completed requests.
    pub fn latencies(&self) -> Samples {
        let mut samples = Samples::new();
        for r in self.completed_requests() {
            samples.record_duration(r.request.latency());
        }
        samples
    }

    /// Simulated time of the last completion (zero if nothing completed).
    pub fn last_completion(&self) -> SimTime {
        self.completed_requests()
            .iter()
            .map(|r| r.request.completed_at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Sums `f` over the server stats of group `g` (crashed servers
    /// included — their counters froze at crash time).
    pub fn sum_group_stats(&self, g: usize, f: impl Fn(&ServerStats) -> u64) -> u64 {
        self.groups[g]
            .iter()
            .map(|&s| f(&self.world.process_ref::<OarServer<S>>(s).stats()))
            .sum()
    }

    /// Sums `f` over the server stats of every group.
    pub fn sum_stats(&self, f: impl Fn(&ServerStats) -> u64 + Copy) -> u64 {
        (0..self.groups.len())
            .map(|g| self.sum_group_stats(g, f))
            .sum()
    }

    /// The maximum of `f` over the server stats of group `g` (used for
    /// per-group gauges like the converged batch target, where only the
    /// group's sequencer carries the signal).
    pub fn max_group_stat(&self, g: usize, f: impl Fn(&ServerStats) -> u64) -> u64 {
        self.groups[g]
            .iter()
            .map(|&s| f(&self.world.process_ref::<OarServer<S>>(s).stats()))
            .max()
            .unwrap_or(0)
    }

    /// Total requests stamped for one group that arrived at another — the
    /// misroute count the sharded experiments gate at zero.
    pub fn total_misroutes(&self) -> u64 {
        self.sum_stats(|st| st.misrouted)
    }

    /// The largest peak `seen`-set size observed at any server (bounded by
    /// the epoch-watermark aging).
    pub fn peak_seen(&self) -> u64 {
        self.all_servers()
            .map(|s| {
                self.world
                    .process_ref::<OarServer<S>>(s)
                    .stats()
                    .seen
                    .peak()
            })
            .max()
            .unwrap_or(0)
    }

    /// The largest peak `payloads` size observed at any server.
    pub fn peak_payloads(&self) -> u64 {
        self.all_servers()
            .map(|s| {
                self.world
                    .process_ref::<OarServer<S>>(s)
                    .stats()
                    .payloads
                    .peak()
            })
            .max()
            .unwrap_or(0)
    }

    /// Network statistics attributed to group `g` (message sends by its
    /// servers: ordering, relays, replies, consensus, heartbeats).
    pub fn group_net_stats(&self, g: usize) -> NetStats {
        self.world.group_stats(GroupId::new(g))
    }

    fn all_servers(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.groups.iter().flatten().copied()
    }

    /// Migrates `range` from group `from` to group `to` online: injects one
    /// [`ReconfigCmd::Migrate`] fence request into *each* of the two groups
    /// (each settles it through its own conservative order — there is no
    /// cross-group agreement), advancing the routing-boundary epoch. The
    /// donor replicas then ship the settled range to every recipient member
    /// over `MigrateState` wires and door-redirect stale traffic.
    /// `fence_command` is the no-op application command carrying each fence.
    ///
    /// The cluster's own router copy advances immediately; the *clients*
    /// learn the new boundary only through `Redirect` wires, like real
    /// stale-routed clients. Returns the settled migration record.
    pub fn inject_migrate(
        &mut self,
        range: KeyRange,
        from: usize,
        to: usize,
        fence_command: S::Command,
    ) -> MigrationRecord {
        assert_ne!(from, to, "migration needs two distinct groups");
        let record = MigrationRecord {
            range,
            from_group: GroupId::new(from),
            to_group: GroupId::new(to),
            route_epoch: self.router.route_epoch() + 1,
        };
        assert!(
            self.router.apply_record(&record),
            "freshly minted record must advance the router"
        );
        // The first client doubles as the admin origin; its ids count down
        // from `u64::MAX` so they can never collide with its own workload
        // sequence, and it ignores the fences' replies as stale.
        let admin = self.clients[0];
        let to_members = self.groups[to].clone();
        for (k, g) in [from, to].into_iter().enumerate() {
            let id = RequestId::new(admin, u64::MAX - 2 * record.route_epoch - k as u64);
            let wire = CastWire {
                id,
                origin: admin,
                payload: Request {
                    id,
                    client: admin,
                    group: GroupId::new(g),
                    txn: None,
                    reconfig: Some(ReconfigCmd::Migrate {
                        record: record.clone(),
                        to_members: to_members.clone(),
                    }),
                    route_epoch: record.route_epoch - 1,
                    command: fence_command.clone(),
                },
            };
            for &s in &self.groups[g] {
                if !self.world.is_crashed(s) {
                    self.world
                        .send_external(admin, s, OarWire::Request(wire.clone()));
                }
            }
        }
        record
    }

    /// Replaces server `old_index` of group `g` by a fresh replica: spawns
    /// the replacement over the post-replacement roster (it joins through
    /// the ordinary `CatchUp*` wires) and injects a [`ReconfigCmd::Replace`]
    /// fence into the group's survivors, which settle it through their
    /// conservative order. Other groups are untouched. Returns the
    /// replacement's process id; `self.groups[g]` tracks the new roster.
    pub fn inject_replace(
        &mut self,
        g: usize,
        old_index: usize,
        fence_command: S::Command,
        make_sm: impl FnOnce() -> S,
    ) -> ProcessId {
        let new = crate::cluster::spawn_replacement(
            &mut self.world,
            &self.groups[g],
            old_index,
            self.oar.for_group(GroupId::new(g)),
            fence_command,
            make_sm(),
        );
        self.world.assign_group(new, GroupId::new(g));
        self.groups[g][old_index] = new;
        new
    }

    /// Injects a divergent value for `key` into server `i` of group `g`
    /// (`None` removes the key) — the fault the Merkle anti-entropy loop
    /// heals. Returns whether the state actually changed.
    pub fn inject_divergence(
        &mut self,
        g: usize,
        i: usize,
        key: &str,
        value: Option<&str>,
    ) -> bool {
        let id = self.groups[g][i];
        self.world
            .process_mut::<OarServer<S>>(id)
            .inject_divergence(key, value)
    }

    /// Total requests door-dropped and redirected for stale routing.
    pub fn total_redirected(&self) -> u64 {
        self.sum_stats(|st| st.redirected)
    }

    /// Total settled reconfiguration fences applied across all servers.
    pub fn total_reconfigs_applied(&self) -> u64 {
        self.sum_stats(|st| st.reconfigs_applied)
    }

    /// Total `CatchUpReply` transfers served across all servers.
    pub fn total_catch_up_replies(&self) -> u64 {
        self.sum_stats(|st| st.catch_up_replies)
    }

    /// Total `MigrateState` transfer wires sent across all servers.
    pub fn total_migrate_state_wires(&self) -> u64 {
        self.sum_stats(|st| st.migrate_state_wires)
    }

    /// Total anti-entropy descent wires (node requests + replies) across all
    /// servers.
    pub fn total_sync_node_wires(&self) -> u64 {
        self.sum_stats(|st| st.sync_node_wires)
    }

    /// Total divergent keys repaired by majority vote across all servers.
    pub fn total_sync_repairs(&self) -> u64 {
        self.sum_stats(|st| st.sync_repairs)
    }

    /// The settled-state digest of `range` at every server of group `g`
    /// (`None` for servers whose machine does not expose range digests or
    /// are crashed).
    pub fn range_digests(&self, g: usize, range: &KeyRange) -> Vec<Option<u64>> {
        self.groups[g]
            .iter()
            .map(|&s| {
                if self.world.is_crashed(s) {
                    None
                } else {
                    self.world
                        .process_ref::<OarServer<S>>(s)
                        .range_digest(range)
                }
            })
            .collect()
    }

    /// Checks the single-group safety properties (total order, at-most-once,
    /// digest agreement) *inside every group*, plus cross-group isolation:
    /// no request settled by one group ever appears in another group's
    /// sequence. Cross-group *ordering* is explicitly not checked — it is
    /// not a property of the sharded deployment.
    pub fn check_per_group_consistency(&self) -> Result<(), String> {
        check_groups_consistency::<S>(&self.world, &self.groups)
    }

    /// Checks external consistency per group (Proposition 7): every adopted
    /// reply matches, at every alive server of the *owning* group that
    /// settled the request, the position at which that server processed it.
    pub fn check_external_consistency(&self) -> Result<(), String> {
        // Final settled position of every request, per server, per group.
        let mut per_group: Vec<Vec<HashMap<RequestId, u64>>> = Vec::new();
        for servers in &self.groups {
            let mut maps = Vec::new();
            for &s in servers {
                if self.world.is_crashed(s) {
                    maps.push(HashMap::new());
                    continue;
                }
                let server = self.world.process_ref::<OarServer<S>>(s);
                let mut positions = HashMap::new();
                for (i, id) in server.committed_sequence().iter().enumerate() {
                    positions.insert(*id, (i + 1) as u64);
                }
                maps.push(positions);
            }
            per_group.push(maps);
        }
        for (c_idx, &c) in self.clients.iter().enumerate() {
            let client = self.world.process_ref::<ShardedClient<S>>(c);
            for done in client.completed() {
                for (s_idx, positions) in per_group[done.group.index()].iter().enumerate() {
                    if let Some(&pos) = positions.get(&done.request.id) {
                        if pos != done.request.position {
                            return Err(format!(
                                "client {c_idx} adopted position {} for {} but server {} of {} settled it at {}",
                                done.request.position, done.request.id, s_idx, done.group, pos
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builds the per-group server layout shared by [`ShardedCluster`] and
/// [`crate::txn::TxnCluster`]: `num_groups` groups of `servers_per_group`
/// consecutive process ids, each server stamped with its group identity and
/// registered with the tracer. The two deployments differ only in the
/// client processes added afterwards.
pub(crate) fn build_group_servers<S: StateMachine>(
    world: &mut World<OarWire<S::Command, S::Response>>,
    config: &ShardedConfig,
    make_sm: &mut impl FnMut() -> S,
) -> Vec<Vec<ProcessId>> {
    let mut groups = Vec::with_capacity(config.num_groups);
    for g in 0..config.num_groups {
        let base = g * config.servers_per_group;
        let ids: Vec<ProcessId> = (base..base + config.servers_per_group)
            .map(ProcessId::new)
            .collect();
        for &id in &ids {
            let server = OarServer::new(
                id,
                ids.clone(),
                config.oar.for_group(GroupId::new(g)),
                make_sm(),
            );
            let assigned = world.add_process(server);
            debug_assert_eq!(assigned, id);
            world.assign_group(assigned, GroupId::new(g));
        }
        groups.push(ids);
    }
    groups
}

/// The per-group safety properties (total order, at-most-once, digest
/// agreement) plus cross-group isolation, over any world holding `groups` of
/// [`OarServer`]s — shared by [`ShardedCluster`] and
/// [`crate::txn::TxnCluster`], whose worlds differ only in their client
/// processes.
pub(crate) fn check_groups_consistency<S: StateMachine>(
    world: &World<OarWire<S::Command, S::Response>>,
    groups: &[Vec<ProcessId>],
) -> Result<(), String> {
    let mut owner_of: HashMap<RequestId, GroupId> = HashMap::new();
    for (g, servers) in groups.iter().enumerate() {
        let alive: Vec<ProcessId> = servers
            .iter()
            .copied()
            .filter(|&s| !world.is_crashed(s))
            .collect();
        let sequences: Vec<(ProcessId, Seq<RequestId>)> = alive
            .iter()
            .map(|&s| (s, world.process_ref::<OarServer<S>>(s).committed_sequence()))
            .collect();
        for (p, seq) in &sequences {
            let mut seen = std::collections::HashSet::new();
            for id in seq.iter() {
                if !seen.insert(*id) {
                    return Err(format!("group {g}: server {p} delivered {id} twice"));
                }
                match owner_of.insert(*id, GroupId::new(g)) {
                    Some(other) if other != GroupId::new(g) => {
                        return Err(format!(
                            "cross-group leak: {id} delivered by groups {other} and g{g}"
                        ));
                    }
                    _ => {}
                }
            }
        }
        for (i, (p, sp)) in sequences.iter().enumerate() {
            for (q, sq) in sequences.iter().skip(i + 1) {
                if !(sp.is_prefix_of(sq) || sq.is_prefix_of(sp)) {
                    return Err(format!(
                        "group {g}: total order violated between {p} and {q}: {sp} vs {sq}"
                    ));
                }
            }
        }
        // Digest equality for equal-length sequences.
        let mut by_len: HashMap<usize, (ProcessId, u64)> = HashMap::new();
        for &s in &alive {
            let server = world.process_ref::<OarServer<S>>(s);
            let len = server.committed_sequence().len();
            let digest = server.state_machine().digest();
            if let Some((other, other_digest)) = by_len.get(&len) {
                if *other_digest != digest {
                    return Err(format!(
                        "group {g}: servers {other} and {s} delivered {len} requests but diverge"
                    ));
                }
            } else {
                by_len.insert(len, (s, digest));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state_machine::StateMachine;

    /// A minimal keyed service for the sharded tests: per-key counters.
    #[derive(Clone, Debug, Default, PartialEq, Eq)]
    struct KeyedCounters {
        counts: BTreeMap<String, i64>,
    }

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct AddTo {
        key: String,
        delta: i64,
    }

    impl ShardKey for AddTo {
        fn shard_key(&self) -> &str {
            &self.key
        }
    }

    impl StateMachine for KeyedCounters {
        type Command = AddTo;
        type Response = i64;
        type Undo = (String, i64);

        fn apply(&mut self, command: &AddTo) -> (i64, (String, i64)) {
            let entry = self.counts.entry(command.key.clone()).or_insert(0);
            let before = *entry;
            *entry += command.delta;
            (*entry, (command.key.clone(), before))
        }

        fn undo(&mut self, (key, before): (String, i64)) {
            self.counts.insert(key, before);
        }

        fn digest(&self) -> u64 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for (k, v) in &self.counts {
                for b in k.bytes().chain(v.to_le_bytes()) {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
            h
        }
    }

    fn workload(client: usize, n: usize) -> Vec<AddTo> {
        (0..n)
            .map(|i| AddTo {
                key: format!("k{}", (client * 7 + i) % 16),
                delta: (i % 5) as i64 + 1,
            })
            .collect()
    }

    fn config(num_groups: usize) -> ShardedConfig {
        ShardedConfig {
            num_groups,
            router: ShardRouter::hash(num_groups),
            ..ShardedConfig::default()
        }
    }

    #[test]
    fn sharded_run_completes_with_per_group_guarantees() {
        let config = config(3);
        let mut cluster: ShardedCluster<KeyedCounters> =
            ShardedCluster::build(&config, KeyedCounters::default, |c| workload(c, 12));
        assert!(cluster.run_to_completion(SimTime::from_secs(30)));
        assert_eq!(cluster.completed_requests().len(), 24);
        cluster.check_per_group_consistency().unwrap();
        cluster.check_external_consistency().unwrap();
        assert_eq!(cluster.total_misroutes(), 0);
        // The workload's 16 keys spread over all 3 groups under the hash
        // router, and every group moved traffic of its own.
        let with_requests = (0..3)
            .filter(|&g| cluster.sum_group_stats(g, |st| st.opt_delivered) > 0)
            .count();
        assert!(with_requests >= 2, "keys should spread over groups");
        for g in 0..3 {
            if cluster.sum_group_stats(g, |st| st.opt_delivered) > 0 {
                assert!(cluster.group_net_stats(g).sent > 0);
            }
        }
    }

    #[test]
    fn completions_name_the_owning_group() {
        let config = config(2);
        let mut cluster: ShardedCluster<KeyedCounters> =
            ShardedCluster::build(&config, KeyedCounters::default, |c| workload(c, 8));
        assert!(cluster.run_to_completion(SimTime::from_secs(30)));
        for done in cluster.completed_requests() {
            // The adopting group is the one the router owns the key to; the
            // settled position must exist at that group's servers.
            assert!(done.group.index() < 2);
            let settled_somewhere = cluster.groups[done.group.index()].iter().any(|&s| {
                cluster
                    .world
                    .process_ref::<OarServer<KeyedCounters>>(s)
                    .committed_sequence()
                    .contains(&done.request.id)
            });
            assert!(
                settled_somewhere,
                "{} not settled in its group",
                done.request.id
            );
        }
    }

    #[test]
    fn one_group_sequencer_crash_leaves_other_groups_undisturbed() {
        let config = config(3);
        let mut cluster: ShardedCluster<KeyedCounters> =
            ShardedCluster::build(&config, KeyedCounters::default, |c| workload(c, 10));
        // Crash group 0's initial sequencer (its first server) early.
        let victim = cluster.groups[0][0];
        cluster
            .world
            .schedule_crash(victim, SimTime::from_millis(3));
        assert!(
            cluster.run_to_completion(SimTime::from_secs(60)),
            "all groups (including the one that failed over) must finish"
        );
        cluster.check_per_group_consistency().unwrap();
        cluster.check_external_consistency().unwrap();
        assert_eq!(cluster.total_misroutes(), 0);
        // Group 0 failed over (phase 2 ran); the *other* groups never left
        // the optimistic phase — their failure detectors are independent.
        assert!(cluster.sum_group_stats(0, |st| st.phase2_entered) > 0);
        for g in 1..3 {
            assert_eq!(
                cluster.sum_group_stats(g, |st| st.phase2_entered),
                0,
                "group {g} must not react to another group's crash"
            );
        }
    }

    #[test]
    #[should_panic(expected = "disagree on the group count")]
    fn build_rejects_router_group_mismatch() {
        let config = ShardedConfig {
            num_groups: 3,
            router: ShardRouter::hash(2),
            ..ShardedConfig::default()
        };
        let _cluster: ShardedCluster<KeyedCounters> =
            ShardedCluster::build(&config, KeyedCounters::default, |_| Vec::new());
    }

    /// Runs `f` against the client with a throwaway runtime context and
    /// returns the actions it produced.
    fn drive(
        client: &mut ShardedClient<KeyedCounters>,
        f: impl FnOnce(&mut ShardedClient<KeyedCounters>, &mut dyn Runtime<OarWire<AddTo, i64>>),
    ) -> Vec<oar_simnet::Action<OarWire<AddTo, i64>>> {
        let mut rng = oar_simnet::SimRng::new(1);
        let mut actions = Vec::new();
        let mut next_timer = 0u64;
        {
            let mut ctx = oar_simnet::Context::new(
                SimTime::from_millis(1),
                client.id(),
                &mut rng,
                &mut actions,
                &mut next_timer,
            );
            f(client, &mut ctx);
        }
        actions
    }

    /// The `(destination, request)` pairs among `actions`.
    fn requests_sent(
        actions: &[oar_simnet::Action<OarWire<AddTo, i64>>],
    ) -> Vec<(ProcessId, &Request<AddTo>)> {
        actions
            .iter()
            .filter_map(|a| match a {
                oar_simnet::Action::Send { to, msg } => {
                    let wire = match msg {
                        oar_simnet::Payload::Owned(m) => m,
                        oar_simnet::Payload::Shared(s) => s.as_ref(),
                    };
                    match wire {
                        OarWire::Request(cast) => Some((*to, &cast.payload)),
                        _ => None,
                    }
                }
                _ => None,
            })
            .collect()
    }

    /// The REVIEW regression: a `Redirect` re-sends exactly the requests it
    /// names as dropped — an outstanding request the donor group already
    /// ordered (whose effect travels in the hand-off) must NOT be re-sent
    /// to the recipient, whose seen-set would execute it a second time.
    #[test]
    fn redirect_re_sends_only_the_dropped_requests() {
        let groups: Vec<Vec<ProcessId>> = vec![
            (0..3).map(ProcessId::new).collect(),
            (3..6).map(ProcessId::new).collect(),
        ];
        // Keys below "m" start at group 0.
        let router = ShardRouter::range(vec!["m".into()]);
        let workload = vec![
            AddTo {
                key: "b".into(),
                delta: 1,
            },
            AddTo {
                key: "c".into(),
                delta: 1,
            },
        ];
        let mut client: ShardedClient<KeyedCounters> = ShardedClient::new(
            ProcessId::new(9),
            groups,
            router,
            workload,
            ClientConfig::builder().pipeline(2).build(),
        );
        let actions = drive(&mut client, |c, ctx| c.on_start(ctx));
        let initial = requests_sent(&actions);
        assert_eq!(initial.len(), 6, "two requests to three group-0 members");
        assert!(initial.iter().all(|(to, _)| to.index() < 3));
        let dropped_id = RequestId::new(ProcessId::new(9), 0); // key "b"
        let ordered_id = RequestId::new(ProcessId::new(9), 1); // key "c"

        // [b, c) migrated to group 1; the donor door-dropped only the "b"
        // request (the "c" one it had already ordered).
        let record = MigrationRecord {
            range: KeyRange::new("b", "c"),
            from_group: GroupId::new(0),
            to_group: GroupId::new(1),
            route_epoch: 1,
        };
        let actions = drive(&mut client, |c, ctx| {
            c.on_message(
                ctx,
                ProcessId::new(0),
                OarWire::Redirect {
                    records: vec![record.clone()],
                    dropped: vec![dropped_id],
                },
            );
        });
        let resent = requests_sent(&actions);
        assert_eq!(resent.len(), 3, "one request to three group-1 members");
        for (to, request) in &resent {
            assert!((3..6).contains(&to.index()), "re-sent to the recipient");
            assert_eq!(request.id, dropped_id, "only the dropped id re-sent");
            assert_eq!(request.route_epoch, 1, "re-sent under the fresh stamp");
        }
        assert!(
            resent.iter().all(|(_, r)| r.id != ordered_id),
            "the donor-ordered request must not be re-sent"
        );

        // A duplicate redirect (another donor member door-dropped the same
        // request) is absorbed by the route-epoch de-duplication.
        let actions = drive(&mut client, |c, ctx| {
            c.on_message(
                ctx,
                ProcessId::new(1),
                OarWire::Redirect {
                    records: vec![record],
                    dropped: vec![dropped_id],
                },
            );
        });
        assert!(requests_sent(&actions).is_empty(), "duplicate absorbed");
    }
}
