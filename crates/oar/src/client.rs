//! The OAR client (Fig. 5 of the paper).
//!
//! `OAR-multicast(m, Π)` R-multicasts the request to the server group and then
//! waits for replies. Unlike classic active replication, the replies need not
//! be identical: each carries a *weight* (the set of servers endorsing it). The
//! client waits until, for some epoch `k`, the union of the weights of the
//! replies received for `k` reaches the majority threshold `⌈(|Π|+1)/2⌉`, and
//! then adopts a reply with the largest individual weight. This rule is what
//! guarantees external consistency (Proposition 7): a reply that could still be
//! invalidated by an `Opt-undeliver` can never gather a majority weight.
//!
//! # Pipelining
//!
//! By default the client is closed-loop: one outstanding request at a time,
//! exactly Fig. 5. [`PipelineMode::Fixed`] (via
//! [`ClientConfigBuilder::pipeline`](crate::ClientConfigBuilder::pipeline))
//! allows up to `depth` outstanding requests, each tracked independently by
//! the same weighted quorum rule. Pipelining is what lets the servers'
//! batching layers (sequencer `OrderMsg` batches, per-client `ReplyBatch`
//! coalescing) see several requests of the same client in one batch; replies
//! arrive batched and are unpacked back into per-request accounting, so the
//! optimistic / conservative semantics of each request are unchanged.
//!
//! [`PipelineMode::Adaptive`] replaces the fixed depth with a
//! [`PipelineController`]: the window starts closed-loop and co-adapts with
//! the servers' batching, growing towards the cap while reply wires report
//! large delivery batches and decaying back when load drops.

use std::collections::{BTreeMap, VecDeque};

use oar_channels::ReliableCaster;
use oar_simnet::{GroupId, Process, ProcessId, Runtime, SimDuration, SimTime, Timer, TimerTag};

use crate::adaptive::{PipelineController, PipelineStats};
use crate::config::{ClientConfig, PipelineMode};
use crate::message::{majority, OarWire, Reply, ReplyBatch, Request, RequestId, Weight};
use crate::state_machine::StateMachine;

/// Timer tag used for the think-time delay between two requests.
const NEXT_REQUEST: TimerTag = TimerTag::NextRequest;

/// A request completed by the client: the adopted reply plus bookkeeping used
/// by the experiments.
#[derive(Clone, Debug, PartialEq)]
pub struct CompletedRequest<R> {
    /// The request identifier.
    pub id: RequestId,
    /// Index of the command in the client's workload.
    pub index: usize,
    /// The adopted response.
    pub response: R,
    /// Position reported by the adopted reply (the paper's integer reply).
    pub position: u64,
    /// Epoch of the adopted reply.
    pub epoch: u64,
    /// Size of the weight of the adopted reply.
    pub adopted_weight: usize,
    /// Number of replies received before adoption.
    pub replies_seen: usize,
    /// Time at which the request was multicast.
    pub sent_at: SimTime,
    /// Time at which the quorum was reached and the reply adopted.
    pub completed_at: SimTime,
}

impl<R> CompletedRequest<R> {
    /// Client-observed latency of the request.
    pub fn latency(&self) -> SimDuration {
        self.completed_at.duration_since(self.sent_at)
    }
}

/// Per-epoch accumulation of replies for one outstanding request.
#[derive(Debug, Clone)]
struct EpochReplies<R> {
    union_weight: Weight,
    replies: Vec<Reply<R>>,
}

impl<R> Default for EpochReplies<R> {
    fn default() -> Self {
        EpochReplies {
            union_weight: Weight::new(),
            replies: Vec::new(),
        }
    }
}

/// The per-request reply accounting of the Fig. 5 weighted-quorum rule,
/// shared by every client flavour ([`OarClient`],
/// [`crate::sharded::ShardedClient`], [`crate::txn::TxnClient`]).
///
/// Replies are grouped by the epoch they were processed in; the request is
/// adoptable once, for some epoch, the union of the reply weights reaches the
/// majority threshold of the *owning group* — at which point a reply with the
/// largest individual weight is adopted (Fig. 5 lines 3–5). The threshold is
/// passed per [`absorb`](QuorumTracker::absorb) call because the sharded and
/// transactional clients track requests owned by groups of possibly different
/// sizes.
#[derive(Debug, Clone)]
pub struct QuorumTracker<R> {
    by_epoch: BTreeMap<u64, EpochReplies<R>>,
    replies_seen: usize,
}

impl<R> Default for QuorumTracker<R> {
    fn default() -> Self {
        QuorumTracker {
            by_epoch: BTreeMap::new(),
            replies_seen: 0,
        }
    }
}

impl<R: Clone> QuorumTracker<R> {
    /// A tracker with no replies absorbed yet.
    pub fn new() -> Self {
        QuorumTracker::default()
    }

    /// Number of replies absorbed so far.
    pub fn replies_seen(&self) -> usize {
        self.replies_seen
    }

    /// Absorbs one reply. Returns `Some((epoch, adopted_reply))` as soon as
    /// the Fig. 5 rule is satisfied for some epoch with the given `majority`
    /// threshold, `None` while the quorum is still open. The caller is
    /// expected to stop feeding the tracker once it adopts.
    pub fn absorb(&mut self, reply: Reply<R>, majority: usize) -> Option<(u64, Reply<R>)> {
        self.replies_seen += 1;
        let epoch_replies = self.by_epoch.entry(reply.epoch).or_default();
        epoch_replies
            .union_weight
            .extend(reply.weight.iter().copied());
        epoch_replies.replies.push(reply);

        // Fig. 5 line 3: wait until the union of weights for some epoch k
        // reaches the majority threshold; lines 4–5: adopt a reply with the
        // largest individual weight.
        self.by_epoch.iter().find_map(|(epoch, acc)| {
            if acc.union_weight.len() >= majority {
                acc.replies
                    .iter()
                    .max_by_key(|r| r.weight.len())
                    .map(|r| (*epoch, r.clone()))
            } else {
                None
            }
        })
    }
}

#[derive(Clone, Debug)]
struct Outstanding<R> {
    index: usize,
    sent_at: SimTime,
    quorum: QuorumTracker<R>,
}

/// A closed-loop OAR client: it submits the commands of its workload with at
/// most `pipeline` requests outstanding (1 by default — the paper's Fig. 5),
/// adopting each reply per the weighted-quorum rule before refilling the
/// window (after an optional think time).
#[derive(Debug)]
pub struct OarClient<S: StateMachine> {
    id: ProcessId,
    servers: Vec<ProcessId>,
    group: GroupId,
    cast: ReliableCaster<Request<S::Command>>,
    workload: VecDeque<S::Command>,
    next_index: usize,
    think_time: SimDuration,
    start_delay: SimDuration,
    /// The current outstanding-request window. Static unless `adaptive` is
    /// set, in which case the controller updates it on every reply wire.
    pipeline: usize,
    /// Present when the window adapts to the servers' delivery-batch hints.
    adaptive: Option<PipelineController>,
    outstanding: BTreeMap<RequestId, Outstanding<S::Response>>,
    completed: Vec<CompletedRequest<S::Response>>,
    majority: usize,
}

impl<S: StateMachine> OarClient<S> {
    /// Creates a client that will submit `workload` to `servers` under the
    /// given [`ClientConfig`] (think time, start delay, pipeline policy,
    /// target group — see [`ClientConfig::builder`]).
    pub fn new(
        id: ProcessId,
        servers: Vec<ProcessId>,
        workload: Vec<S::Command>,
        config: ClientConfig,
    ) -> Self {
        let majority = majority(servers.len());
        let adaptive = match config.pipeline {
            PipelineMode::Fixed(_) => None,
            PipelineMode::Adaptive(cap) => Some(PipelineController::new(cap)),
        };
        OarClient {
            id,
            group: config.group,
            cast: ReliableCaster::new(id, servers.clone()),
            servers,
            workload: workload.into(),
            next_index: 0,
            think_time: config.think_time,
            start_delay: config.start_delay,
            pipeline: config.initial_window().max(1),
            adaptive,
            outstanding: BTreeMap::new(),
            completed: Vec::new(),
            majority,
        }
    }

    /// Convergence counters of the adaptive pipeline window (`None` for a
    /// static pipeline).
    pub fn pipeline_stats(&self) -> Option<PipelineStats> {
        self.adaptive.as_ref().map(|c| c.stats())
    }

    /// The pipeline depth of this client.
    pub fn pipeline(&self) -> usize {
        self.pipeline
    }

    /// The client's process identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The requests completed so far, in completion order.
    pub fn completed(&self) -> &[CompletedRequest<S::Response>] {
        &self.completed
    }

    /// Whether the whole workload has been submitted and answered.
    pub fn is_done(&self) -> bool {
        self.workload.is_empty() && self.outstanding.is_empty()
    }

    /// Number of requests still to submit (excluding outstanding ones).
    pub fn remaining(&self) -> usize {
        self.workload.len()
    }

    /// Submits requests until the pipeline window is full or the workload is
    /// exhausted.
    fn fill_pipeline(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        while self.outstanding.len() < self.pipeline {
            let Some(command) = self.workload.pop_front() else {
                return;
            };
            let (id, mut wire, targets) = self.cast.multicast_shared(Request {
                // The id is re-stamped below once the multicast assigns it.
                id: RequestId::new(self.id, 0),
                client: self.id,
                group: self.group,
                txn: None,
                reconfig: None,
                route_epoch: 0,
                command,
            });
            // Re-stamp the request with the multicast id so servers and client
            // agree; the wire is built once and shared across all servers.
            wire.payload.id = id;
            ctx.send_all(&targets, OarWire::Request(wire));
            ctx.annotate(format!("OAR-multicast({id})"));
            self.outstanding.insert(
                id,
                Outstanding {
                    index: self.next_index,
                    sent_at: ctx.now(),
                    quorum: QuorumTracker::new(),
                },
            );
            self.next_index += 1;
        }
    }

    fn handle_reply_batch(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        batch: ReplyBatch<S::Response>,
    ) {
        // Adapt the window before unpacking, so the refills triggered by the
        // adoptions below already see the adjusted pipeline.
        if let Some(controller) = self.adaptive.as_mut() {
            self.pipeline = controller.observe_batch(batch.batch_hint);
        }
        for reply in batch.unpack() {
            self.handle_reply(ctx, reply);
        }
    }

    fn handle_reply(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        reply: Reply<S::Response>,
    ) {
        let request = reply.request;
        let Some(outstanding) = self.outstanding.get_mut(&request) else {
            return; // stale reply for an already-completed request
        };
        let Some((epoch, reply)) = outstanding.quorum.absorb(reply, self.majority) else {
            return;
        };
        let outstanding = self.outstanding.remove(&request).expect("outstanding");
        ctx.annotate(format!(
            "adopt({}, pos={}, |W|={})",
            request,
            reply.position,
            reply.weight.len()
        ));
        self.completed.push(CompletedRequest {
            id: request,
            index: outstanding.index,
            response: reply.response,
            position: reply.position,
            epoch,
            adopted_weight: reply.weight.len(),
            replies_seen: outstanding.quorum.replies_seen(),
            sent_at: outstanding.sent_at,
            completed_at: ctx.now(),
        });
        if self.workload.is_empty() {
            return;
        }
        if self.think_time.is_zero() {
            self.fill_pipeline(ctx);
        } else {
            ctx.set_timer(self.think_time, NEXT_REQUEST);
        }
    }

    /// The majority threshold this client uses (`⌈(|Π|+1)/2⌉`).
    pub fn majority_threshold(&self) -> usize {
        self.majority
    }

    /// The server group this client talks to.
    pub fn servers(&self) -> &[ProcessId] {
        &self.servers
    }

    /// Deep copy for [`Process::fork`]: every field is `Clone` except the
    /// workload commands, which are (`S::Command: Clone`).
    fn fork_self(&self) -> Self {
        OarClient {
            id: self.id,
            servers: self.servers.clone(),
            group: self.group,
            cast: self.cast.clone(),
            workload: self.workload.clone(),
            next_index: self.next_index,
            think_time: self.think_time,
            start_delay: self.start_delay,
            pipeline: self.pipeline,
            adaptive: self.adaptive.clone(),
            outstanding: self.outstanding.clone(),
            completed: self.completed.clone(),
            majority: self.majority,
        }
    }

    /// Digest of the client's protocol-relevant state, for
    /// [`Process::state_digest`]. Timestamps (`sent_at`, `completed_at`) are
    /// excluded: the model checker abstracts time, and two states differing
    /// only in when things happened behave identically.
    fn mc_digest(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.id.index().hash(&mut h);
        self.workload.len().hash(&mut h);
        self.next_index.hash(&mut h);
        self.pipeline.hash(&mut h);
        self.cast.digest_view().hash(&mut h);
        for (id, outstanding) in &self.outstanding {
            id.hash(&mut h);
            outstanding.index.hash(&mut h);
            outstanding.quorum.replies_seen().hash(&mut h);
            format!("{:?}", outstanding.quorum).hash(&mut h);
        }
        for completed in &self.completed {
            completed.id.hash(&mut h);
            completed.index.hash(&mut h);
            completed.position.hash(&mut h);
            completed.epoch.hash(&mut h);
            format!("{:?}", completed.response).hash(&mut h);
        }
        h.finish()
    }
}

impl<S: StateMachine> Process<OarWire<S::Command, S::Response>> for OarClient<S> {
    fn on_start(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        if self.start_delay.is_zero() {
            self.fill_pipeline(ctx);
        } else {
            ctx.set_timer(self.start_delay, NEXT_REQUEST);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        _from: ProcessId,
        msg: OarWire<S::Command, S::Response>,
    ) {
        if let OarWire::Replies(batch) = msg {
            self.handle_reply_batch(ctx, batch);
        }
        // Clients ignore every other message kind.
    }

    fn on_timer(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>, timer: Timer) {
        if timer.tag == NEXT_REQUEST && self.outstanding.len() < self.pipeline {
            self.fill_pipeline(ctx);
        }
    }

    fn fork(&self) -> Option<Box<dyn Process<OarWire<S::Command, S::Response>>>> {
        Some(Box::new(self.fork_self()))
    }

    fn state_digest(&self) -> Option<u64> {
        Some(self.mc_digest())
    }

    fn name(&self) -> String {
        format!("oar-client-{}", self.id.index())
    }
}
