//! Load-driven batching and pipelining controllers.
//!
//! Static `OarConfig::max_batch` leaves throughput on the table: the right
//! batch size is a function of offered load, not configuration. A fixed
//! threshold of 8 is *slower* than unbatched at one client (partial batches
//! wait for a flush) yet clearly faster at eight. This module closes the loop:
//!
//! * [`BatchController`] runs inside the **sequencer** and drives the
//!   effective `OrderMsg` batch threshold from the observed request arrival
//!   rate (a sliding window of inter-arrival gaps) and the current ordering
//!   backlog. Under light load the target converges to 1 — every request is
//!   ordered immediately, the paper's Fig. 6 behaviour, no added latency.
//!   Under pressure the target grows multiplicatively (AIMD-style: fast
//!   ramp, geometric decay) so the reliable-multicast cost of ordering is
//!   amortised over many requests. A flush **deadline**
//!   ([`AdaptiveConfig::max_delay`]) bounds the worst-case added ordering
//!   latency of a partial batch, independent of the maintenance-tick cadence.
//! * [`PipelineController`] runs inside the **clients** and drives the
//!   outstanding-request window from the delivery-batch sizes the servers
//!   report on every [`crate::message::ReplyBatch`] (`batch_hint`). When the
//!   group is batching, a deeper window lets one `OrderMsg` swallow several
//!   of the client's requests and one `ReplyBatch` answer them; when load
//!   drops the window decays back so a light client stays closed-loop. In a
//!   sharded deployment each group's sequencer adapts on its own arrivals and
//!   each client keeps one controller per group, so groups converge
//!   independently under skewed load.
//!
//! Both controllers are plain deterministic state machines — no randomness,
//! no wall clock — so simulations containing them stay reproducible.

use std::collections::VecDeque;

use oar_simnet::{SimDuration, SimTime};

/// Tuning knobs of the sequencer's [`BatchController`], carried by
/// [`crate::OarConfig::adaptive`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Upper bound of the adaptive batch target (and of the batch the
    /// controller ever advises). Must be at least 1.
    pub max_batch_cap: usize,
    /// Flush deadline: a partial batch older than this is ordered even if the
    /// target is not reached, bounding the latency cost of batching. Must be
    /// non-zero.
    pub max_delay: SimDuration,
    /// Idle decay: after `idle_decay_factor × max_delay` without an arrival
    /// the target halves, so a load drop converges back towards 1.
    pub idle_decay_factor: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            max_batch_cap: 64,
            // Must stay below a closed-loop client's inter-arrival time
            // (~one LAN round trip, 300–400µs): the rate target is the
            // arrivals expected within one deadline, so a longer horizon
            // would make even a single slow client look batchable and
            // re-introduce exactly the idle latency batching must not add.
            max_delay: SimDuration::from_micros(200),
            idle_decay_factor: 4,
        }
    }
}

/// Number of inter-arrival gaps the rate estimate averages over.
const RATE_WINDOW: usize = 16;

/// The sequencer-side batch controller: converts observed inter-arrival gaps
/// and ordering backlog into the batch size Task 1a should flush at.
///
/// The smoothed `target` ramps by doubling while the rate estimate calls for
/// a bigger batch and decays geometrically towards the estimate when load
/// drops, so it converges within O(log cap) flushes of a load step. The
/// advised batch ([`BatchController::target_batch`]) is always within
/// `[1, max_batch_cap]` and monotone in the backlog — a sequencer that has
/// already queued more than the target has no reason to wait.
#[derive(Clone, Debug)]
pub struct BatchController {
    config: AdaptiveConfig,
    /// Smoothed batch target, in `[1, max_batch_cap]`.
    target: usize,
    /// Instant of the most recent arrival (rate-estimate anchor).
    last_arrival: Option<SimTime>,
    /// Sliding window of the last [`RATE_WINDOW`] inter-arrival gaps.
    gaps: VecDeque<SimDuration>,
    /// Sum of `gaps`, maintained incrementally.
    gap_sum: SimDuration,
    raises: u64,
    drops: u64,
}

impl BatchController {
    /// Creates a controller at the no-batching starting point (target 1).
    ///
    /// # Panics
    ///
    /// Panics if `config.max_batch_cap` is 0 or `config.max_delay` is zero —
    /// [`crate::config::OarConfigBuilder`] validates both before a server is
    /// ever built.
    pub fn new(config: AdaptiveConfig) -> Self {
        assert!(config.max_batch_cap >= 1, "batch cap must be at least 1");
        assert!(
            !config.max_delay.is_zero(),
            "flush deadline must be non-zero"
        );
        BatchController {
            config,
            target: 1,
            last_arrival: None,
            gaps: VecDeque::with_capacity(RATE_WINDOW),
            gap_sum: SimDuration::ZERO,
            raises: 0,
            drops: 0,
        }
    }

    /// The configuration this controller runs under.
    pub fn config(&self) -> AdaptiveConfig {
        self.config
    }

    /// The current smoothed batch target (the flush threshold), in
    /// `[1, max_batch_cap]`.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Times the controller raised its target (convergence counter).
    pub fn raises(&self) -> u64 {
        self.raises
    }

    /// Times the controller lowered its target (convergence counter).
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Records one request arrival at `now`, feeding the rate estimate.
    pub fn record_arrival(&mut self, now: SimTime) {
        if let Some(last) = self.last_arrival {
            let gap = now.duration_since(last);
            if self.gaps.len() == RATE_WINDOW {
                let old = self.gaps.pop_front().expect("window non-empty");
                self.gap_sum = SimDuration::from_micros(
                    self.gap_sum.as_micros().saturating_sub(old.as_micros()),
                );
            }
            self.gaps.push_back(gap);
            self.gap_sum += gap;
        }
        self.last_arrival = Some(now);
    }

    /// The batch size the rate estimate calls for: the number of arrivals
    /// expected within one flush deadline, clamped to `[1, max_batch_cap]`.
    fn desired(&self) -> usize {
        if self.gaps.len() < 2 {
            return 1;
        }
        let sum = self.gap_sum.as_micros();
        if sum == 0 {
            // A burst of simultaneous arrivals: the rate is effectively
            // unbounded, ask for the cap.
            return self.config.max_batch_cap;
        }
        let rate = self.gaps.len() as f64 / sum as f64; // arrivals per µs
        let expected = rate * self.config.max_delay.as_micros() as f64;
        (expected.ceil() as usize).clamp(1, self.config.max_batch_cap)
    }

    /// Feedback after the sequencer flushed a batch: re-aims the smoothed
    /// target at the current rate estimate. Doubling up and averaging down
    /// keeps convergence within a handful of batches in both directions.
    pub fn note_flush(&mut self) {
        let desired = self.desired();
        if desired > self.target {
            self.target = self
                .target
                .saturating_mul(2)
                .min(desired)
                .min(self.config.max_batch_cap);
            self.raises += 1;
        } else if desired < self.target {
            self.target = ((self.target + desired) / 2).max(1);
            self.drops += 1;
        }
    }

    /// Idle decay, invoked from the maintenance tick: if no request arrived
    /// for `idle_decay_factor × max_delay`, halve the target and forget the
    /// stale rate window, so a load drop converges back to 1 even when no
    /// flush happens any more.
    pub fn maybe_decay(&mut self, now: SimTime) {
        let Some(last) = self.last_arrival else {
            return;
        };
        let idle_after = self
            .config
            .max_delay
            .saturating_mul(self.config.idle_decay_factor.max(1));
        if now.duration_since(last) > idle_after {
            self.gaps.clear();
            self.gap_sum = SimDuration::ZERO;
            if self.target > 1 {
                self.target = (self.target / 2).max(1);
                self.drops += 1;
            }
            // Re-anchor so the next tick measures idleness from here, not
            // from the stale arrival (one halving per idle period).
            self.last_arrival = Some(now);
        }
    }

    /// The batch size to use given the current ordering `backlog`: the
    /// smoothed target, or the whole backlog once it already exceeds the
    /// target (capped). Always in `[1, max_batch_cap]` and monotone
    /// non-decreasing in `backlog`; the sequencer flushes when
    /// `backlog >= target_batch(backlog)`, which reduces to
    /// `backlog >= target`.
    pub fn target_batch(&self, backlog: usize) -> usize {
        self.target
            .max(backlog.min(self.config.max_batch_cap))
            .clamp(1, self.config.max_batch_cap)
    }
}

/// Convergence bookkeeping of a [`PipelineController`], exposed to the
/// experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// The current window.
    pub window: u64,
    /// The largest window ever adopted.
    pub window_peak: u64,
    /// Times the window was raised.
    pub raises: u64,
    /// Times the window was lowered.
    pub drops: u64,
}

/// The client-side pipeline controller: adapts the outstanding-request window
/// to the delivery-batch sizes the servers report
/// ([`crate::message::ReplyBatch::batch_hint`]).
///
/// Additive increase (one step per observation towards the hint) keeps the
/// ramp smooth; a halving decrease tracks load drops. The window always stays
/// in `[1, cap]`, where `cap` is the deployment's configured pipeline depth.
#[derive(Clone, Debug)]
pub struct PipelineController {
    cap: usize,
    window: usize,
    window_peak: usize,
    raises: u64,
    drops: u64,
}

impl PipelineController {
    /// Creates a controller starting closed-loop (window 1) with the given
    /// upper bound (clamped to at least 1).
    pub fn new(cap: usize) -> Self {
        PipelineController {
            cap: cap.max(1),
            window: 1,
            window_peak: 1,
            raises: 0,
            drops: 0,
        }
    }

    /// The configured upper bound of the window.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The current window, in `[1, cap]`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Convergence counters.
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            window: self.window as u64,
            window_peak: self.window_peak as u64,
            raises: self.raises,
            drops: self.drops,
        }
    }

    /// Observes the delivery-batch size a server reported on a reply wire and
    /// returns the adjusted window. A hint above the window raises it by one
    /// (additive increase, several observations per round trip make this a
    /// fast ramp); a hint below halves it towards the hint (multiplicative
    /// decrease).
    pub fn observe_batch(&mut self, hint: u64) -> usize {
        let desired = (hint.max(1) as usize).min(self.cap);
        if desired > self.window {
            self.window += 1;
            self.raises += 1;
            self.window_peak = self.window_peak.max(self.window);
        } else if desired < self.window {
            let next = (self.window / 2).max(desired).max(1);
            if next < self.window {
                self.window = next;
                self.drops += 1;
            }
        }
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micros(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn light_load_keeps_target_at_one() {
        let mut c = BatchController::new(AdaptiveConfig::default());
        // One closed-loop client: arrivals one round trip (~700µs) apart,
        // slower than the flush deadline.
        for i in 0..50u64 {
            c.record_arrival(micros(i * 700));
            c.note_flush();
        }
        assert_eq!(c.target(), 1);
        assert_eq!(c.raises(), 0);
    }

    #[test]
    fn heavy_load_ramps_the_target_within_a_few_batches() {
        let mut c = BatchController::new(AdaptiveConfig::default());
        // 8 pipelined clients: bursts of arrivals ~10µs apart.
        let mut now = 0u64;
        let mut flushes_to_converge = None;
        for flush in 0..20u64 {
            for _ in 0..8 {
                now += 10;
                c.record_arrival(micros(now));
            }
            c.note_flush();
            if c.target() >= 16 && flushes_to_converge.is_none() {
                flushes_to_converge = Some(flush + 1);
            }
        }
        // 200µs deadline / 10µs gaps → desired ~20: the doubling ramp gets
        // there within ~5 flushes.
        assert!(c.target() >= 16, "target {} should have ramped", c.target());
        assert!(flushes_to_converge.expect("converged") <= 6);
        assert!(c.raises() > 0);
    }

    #[test]
    fn target_decays_when_load_drops() {
        let mut c = BatchController::new(AdaptiveConfig::default());
        let mut now = 0u64;
        for _ in 0..5 {
            for _ in 0..8 {
                now += 5;
                c.record_arrival(micros(now));
            }
            c.note_flush();
        }
        let ramped = c.target();
        assert!(ramped > 1);
        // Load drops to one slow client: flush feedback pulls the target
        // back down geometrically.
        for _ in 0..10 {
            now += 700;
            c.record_arrival(micros(now));
            c.note_flush();
        }
        assert!(c.target() < ramped);
        assert_eq!(c.target(), 1);
        assert!(c.drops() > 0);
    }

    #[test]
    fn idle_decay_halves_without_flushes() {
        let mut c = BatchController::new(AdaptiveConfig::default());
        let mut now = 0u64;
        for _ in 0..6 {
            for _ in 0..8 {
                now += 5;
                c.record_arrival(micros(now));
            }
            c.note_flush();
        }
        let ramped = c.target();
        assert!(ramped >= 4);
        // Silence: ticks keep firing, arrivals stop entirely. One halving
        // per idle period (the decay re-anchors), so give it a few.
        let mut t = now;
        for _ in 0..30 {
            t += 1000;
            c.maybe_decay(micros(t));
        }
        assert_eq!(c.target(), 1, "idle decay must converge back to 1");
    }

    #[test]
    fn simultaneous_burst_asks_for_the_cap() {
        let mut c = BatchController::new(AdaptiveConfig::default());
        for _ in 0..RATE_WINDOW + 1 {
            c.record_arrival(micros(42));
        }
        c.note_flush();
        assert!(c.target() > 1);
        assert!(c.target() <= c.config().max_batch_cap);
    }

    #[test]
    fn target_batch_is_bounded_and_uses_backlog() {
        let cfg = AdaptiveConfig {
            max_batch_cap: 8,
            ..AdaptiveConfig::default()
        };
        let c = BatchController::new(cfg);
        assert_eq!(c.target_batch(0), 1);
        assert_eq!(c.target_batch(1), 1);
        // Backlog beyond the target is taken whole, up to the cap.
        assert_eq!(c.target_batch(5), 5);
        assert_eq!(c.target_batch(100), 8);
    }

    #[test]
    fn pipeline_window_ramps_and_decays_with_hints() {
        let mut p = PipelineController::new(8);
        assert_eq!(p.window(), 1);
        // Servers report growing delivery batches: additive ramp to the cap.
        for _ in 0..12 {
            p.observe_batch(64);
        }
        assert_eq!(p.window(), 8);
        assert_eq!(p.stats().window_peak, 8);
        // Load drops: hints shrink, the window halves towards them.
        p.observe_batch(1);
        assert_eq!(p.window(), 4);
        p.observe_batch(1);
        assert_eq!(p.window(), 2);
        p.observe_batch(1);
        assert_eq!(p.window(), 1);
        assert!(p.stats().drops >= 3);
        // And never leaves [1, cap].
        p.observe_batch(0);
        assert_eq!(p.window(), 1);
    }

    #[test]
    fn pipeline_cap_clamps() {
        let mut p = PipelineController::new(0);
        assert_eq!(p.cap(), 1);
        assert_eq!(p.observe_batch(1000), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// An arbitrary controller history: a cap, a deadline, and a trace of
    /// arrival gaps driven through the controller (with a flush after every
    /// arrival and idle decay after long gaps).
    fn driven_controller() -> impl Strategy<Value = BatchController> {
        (
            1usize..128,
            1u64..2_000,
            proptest::collection::vec(0u64..5_000, 0..60),
        )
            .prop_map(|(cap, delay_us, gaps)| {
                let mut c = BatchController::new(AdaptiveConfig {
                    max_batch_cap: cap,
                    max_delay: SimDuration::from_micros(delay_us),
                    idle_decay_factor: 4,
                });
                let mut now = 0u64;
                for gap in gaps {
                    now += gap;
                    c.record_arrival(SimTime::from_micros(now));
                    c.note_flush();
                    if gap > 3_000 {
                        c.maybe_decay(SimTime::from_micros(now));
                    }
                }
                c
            })
    }

    proptest! {
        /// Whatever load history the controller has seen, its advised batch
        /// stays within `[1, max_batch_cap]` for any backlog.
        #[test]
        fn output_always_within_bounds(
            c in driven_controller(),
            backlog in 0usize..10_000,
        ) {
            let out = c.target_batch(backlog);
            prop_assert!(out >= 1);
            prop_assert!(out <= c.config().max_batch_cap);
            // The smoothed target obeys the same bounds.
            prop_assert!(c.target() >= 1 && c.target() <= c.config().max_batch_cap);
        }

        /// The advised batch is monotone non-decreasing in the backlog: more
        /// queued work never shrinks the batch.
        #[test]
        fn output_monotone_in_backlog(
            c in driven_controller(),
            a in 0usize..10_000,
            b in 0usize..10_000,
        ) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(c.target_batch(lo) <= c.target_batch(hi));
        }

        /// The pipeline window stays within `[1, cap]` under any hint trace.
        #[test]
        fn pipeline_window_always_within_bounds(
            cap in 1usize..64,
            hints in proptest::collection::vec(0u64..10_000, 0..200),
        ) {
            let mut p = PipelineController::new(cap);
            for h in hints {
                let w = p.observe_batch(h);
                prop_assert!(w >= 1 && w <= cap);
            }
        }
    }
}
