//! The replicated-service abstraction.
//!
//! Active replication requires the service to be a **deterministic state
//! machine**: every replica applies the same commands in the same order and
//! therefore produces the same responses. The OAR twist is that optimistic
//! deliveries may later be *undone* (the paper's `Opt-undeliver`), so the state
//! machine must also be able to roll back its most recent commands — the paper
//! suggests transactions / save-points (§6); here the contract is an explicit
//! undo token returned by [`StateMachine::apply`].

use std::fmt;

/// A deterministic, undoable replicated state machine.
///
/// Implementations must be deterministic: two instances that apply the same
/// sequence of commands must produce identical responses and identical
/// [`digest`](StateMachine::digest) values. `apply` followed by `undo` of the
/// returned token must restore the previous state exactly.
///
/// # Examples
///
/// ```
/// use oar::state_machine::{CounterMachine, CounterCommand, StateMachine};
///
/// let mut sm = CounterMachine::default();
/// let (response, token) = sm.apply(&CounterCommand::Add(5));
/// assert_eq!(response, 5);
/// sm.undo(token);
/// assert_eq!(sm.value(), 0);
/// ```
pub trait StateMachine: fmt::Debug + 'static {
    /// The request type submitted by clients.
    type Command: Clone + fmt::Debug + PartialEq + 'static;
    /// The response returned to clients.
    type Response: Clone + fmt::Debug + PartialEq + 'static;
    /// The token that allows one `apply` to be rolled back.
    type Undo: fmt::Debug + 'static;

    /// Applies `command`, returning the response for the client and an undo
    /// token. Determinism is required.
    fn apply(&mut self, command: &Self::Command) -> (Self::Response, Self::Undo);

    /// Rolls back a previous `apply`. Undo tokens are always applied in the
    /// reverse order of the corresponding `apply` calls (LIFO), as required by
    /// footnote 2 of the paper.
    fn undo(&mut self, token: Self::Undo);

    /// A deterministic digest of the current state, used by tests and the
    /// experiment harness to compare replica states.
    fn digest(&self) -> u64;
}

// ---------------------------------------------------------------------------
// A tiny built-in state machine used by unit tests, doc tests and benches.
// Domain-specific services (stack, key-value store, bank) live in `oar-apps`.
// ---------------------------------------------------------------------------

/// Commands of the built-in counter service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterCommand {
    /// Add the given amount and return the new value.
    Add(i64),
    /// Return the current value without modifying it.
    Get,
}

/// A replicated counter: the smallest useful deterministic, undoable service.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterMachine {
    value: i64,
    applied: u64,
}

impl CounterMachine {
    /// The current counter value.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Number of commands applied (and not undone).
    pub fn applied(&self) -> u64 {
        self.applied
    }
}

/// Undo token of [`CounterMachine`].
#[derive(Debug)]
pub struct CounterUndo {
    delta: i64,
}

impl StateMachine for CounterMachine {
    type Command = CounterCommand;
    type Response = i64;
    type Undo = CounterUndo;

    fn apply(&mut self, command: &CounterCommand) -> (i64, CounterUndo) {
        match *command {
            CounterCommand::Add(delta) => {
                self.value += delta;
                self.applied += 1;
                (self.value, CounterUndo { delta })
            }
            CounterCommand::Get => {
                self.applied += 1;
                (self.value, CounterUndo { delta: 0 })
            }
        }
    }

    fn undo(&mut self, token: CounterUndo) {
        self.value -= token.delta;
        self.applied -= 1;
    }

    fn digest(&self) -> u64 {
        // Simple mix of the two fields; deterministic and collision-resistant
        // enough for replica comparison in tests.
        (self.value as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_applies_and_replies_new_value() {
        let mut sm = CounterMachine::default();
        assert_eq!(sm.apply(&CounterCommand::Add(3)).0, 3);
        assert_eq!(sm.apply(&CounterCommand::Add(-1)).0, 2);
        assert_eq!(sm.apply(&CounterCommand::Get).0, 2);
        assert_eq!(sm.value(), 2);
        assert_eq!(sm.applied(), 3);
    }

    #[test]
    fn undo_restores_previous_state() {
        let mut sm = CounterMachine::default();
        let before = sm.digest();
        let (_, t1) = sm.apply(&CounterCommand::Add(10));
        let (_, t2) = sm.apply(&CounterCommand::Add(7));
        sm.undo(t2);
        sm.undo(t1);
        assert_eq!(sm.value(), 0);
        assert_eq!(sm.digest(), before);
    }

    #[test]
    fn determinism_same_commands_same_digest() {
        let commands = [
            CounterCommand::Add(4),
            CounterCommand::Get,
            CounterCommand::Add(-9),
        ];
        let mut a = CounterMachine::default();
        let mut b = CounterMachine::default();
        for c in &commands {
            let (ra, _) = a.apply(c);
            let (rb, _) = b.apply(c);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_states_have_different_digests() {
        let mut a = CounterMachine::default();
        let b = CounterMachine::default();
        a.apply(&CounterCommand::Add(1));
        assert_ne!(a.digest(), b.digest());
    }
}
