//! The replicated-service abstraction.
//!
//! Active replication requires the service to be a **deterministic state
//! machine**: every replica applies the same commands in the same order and
//! therefore produces the same responses. The OAR twist is that optimistic
//! deliveries may later be *undone* (the paper's `Opt-undeliver`), so the state
//! machine must also be able to roll back its most recent commands — the paper
//! suggests transactions / save-points (§6); here the contract is an explicit
//! undo token returned by [`StateMachine::apply`].

use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// The set of state keys one command reads or writes, used by the parallel
/// apply scheduler ([`crate::parallel`]) to decide which commands of a
/// delivery batch may execute concurrently.
///
/// Two commands **conflict** iff their key sets intersect; a command whose
/// footprint is unknown ([`KeySet::All`]) conflicts with every other command
/// and therefore always executes alone, in delivery order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeySet<'a> {
    /// Unknown footprint: conflicts with everything (the safe default).
    All,
    /// The command touches exactly these keys (duplicates are harmless).
    Keys(Vec<&'a str>),
}

impl KeySet<'_> {
    /// Whether the two key sets intersect — i.e. whether the owning commands
    /// conflict and must respect the delivery order.
    pub fn intersects(&self, other: &KeySet<'_>) -> bool {
        match (self, other) {
            (KeySet::All, _) | (_, KeySet::All) => true,
            (KeySet::Keys(a), KeySet::Keys(b)) => a.iter().any(|k| b.contains(k)),
        }
    }
}

/// Commands that can declare the keys they touch.
///
/// This is the conflict relation of Marandi & Pedone's *Optimistic Parallel
/// State-Machine Replication*: non-conflicting commands commute, so a replica
/// may apply them in parallel without breaking determinism. The key space is
/// the same one [`crate::shard::ShardKey`] routes by — a single-key command
/// returns its shard key; a multi-op ([`crate::txn::MultiOp`]) must return
/// the **union** of its members' keys, not one representative.
///
/// Implementations must be conservative: every key the command might read or
/// write has to be listed, and [`KeySet::All`] is always a correct (serial)
/// answer.
pub trait ConflictKeys {
    /// The keys this command reads or writes.
    fn conflict_keys(&self) -> KeySet<'_>;
}

/// The outcome of [`StateMachine::apply_batch`]: per-command results in
/// delivery order, plus the wave partition the applier used (all singleton
/// waves for serial application).
#[derive(Debug)]
pub struct AppliedBatch<S: StateMachine + ?Sized> {
    /// `(response, undo)` per command, in the order passed to `apply_batch`.
    pub results: Vec<(S::Response, S::Undo)>,
    /// Number of commands in each execution wave, in wave order.
    pub wave_sizes: Vec<u64>,
}

/// A deterministic, undoable replicated state machine.
///
/// Implementations must be deterministic: two instances that apply the same
/// sequence of commands must produce identical responses and identical
/// [`digest`](StateMachine::digest) values. `apply` followed by `undo` of the
/// returned token must restore the previous state exactly.
///
/// # Examples
///
/// ```
/// use oar::state_machine::{CounterMachine, CounterCommand, StateMachine};
///
/// let mut sm = CounterMachine::default();
/// let (response, token) = sm.apply(&CounterCommand::Add(5));
/// assert_eq!(response, 5);
/// sm.undo(token);
/// assert_eq!(sm.value(), 0);
/// ```
pub trait StateMachine: fmt::Debug + 'static {
    /// The request type submitted by clients.
    type Command: Clone + fmt::Debug + PartialEq + 'static;
    /// The response returned to clients.
    type Response: Clone + fmt::Debug + PartialEq + 'static;
    /// The token that allows one `apply` to be rolled back. `Clone` so a
    /// server's undo stack can be copied when the model checker forks a
    /// replica mid-epoch.
    type Undo: Clone + fmt::Debug + 'static;

    /// Applies `command`, returning the response for the client and an undo
    /// token. Determinism is required.
    fn apply(&mut self, command: &Self::Command) -> (Self::Response, Self::Undo);

    /// Rolls back a previous `apply`. Undo tokens are always applied in the
    /// reverse order of the corresponding `apply` calls (LIFO), as required by
    /// footnote 2 of the paper.
    fn undo(&mut self, token: Self::Undo);

    /// A deterministic digest of the current state, used by tests and the
    /// experiment harness to compare replica states.
    fn digest(&self) -> u64;

    /// Applies one delivery batch in delivery order, returning per-command
    /// results plus the wave partition used.
    ///
    /// The default applies serially and ignores `workers`. Machines whose
    /// commands implement [`ConflictKeys`] can override it with
    /// [`crate::parallel::wave_apply`] to execute non-conflicting commands
    /// across a worker pool. Any override must stay **bit-identical** to
    /// this serial default — same responses, same undo tokens, same final
    /// state — because replicas mix both paths freely and the protocol's
    /// propositions are checked against the serial semantics.
    fn apply_batch(&mut self, commands: &[&Self::Command], workers: usize) -> AppliedBatch<Self>
    where
        Self: Sized,
    {
        let _ = workers;
        AppliedBatch {
            results: commands.iter().map(|c| self.apply(c)).collect(),
            wave_sizes: vec![1; commands.len()],
        }
    }

    /// Serializes the current state into a type-erased [`StateImage`], or
    /// `None` if the machine does not support snapshots.
    ///
    /// The default returns `None`; machines implementing [`Snapshottable`]
    /// should forward to [`Snapshottable::erased_snapshot`]. A machine
    /// without snapshots still recovers after a restart — just by full
    /// command replay instead of snapshot + delta, and without log
    /// compaction.
    fn snapshot(&self) -> Option<StateImage> {
        None
    }

    /// Replaces the current state with the one captured in `image`. Returns
    /// `false` (leaving the state untouched) if the machine does not support
    /// snapshots or the image is of a different concrete type.
    fn install(&mut self, image: &StateImage) -> bool {
        let _ = image;
        false
    }

    /// A deep copy of the machine, used when the model checker forks a
    /// replica at a scheduling choice. The default returns `None` ("not
    /// forkable"); clonable machines override it with `Some(self.clone())`.
    fn fork(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    // -- Online shard migration hooks (all optional) ------------------------
    //
    // A machine that wants to participate in `Reconfig::Migrate` (key-range
    // hand-off between groups) implements the three methods below; machines
    // without a string key space (e.g. `CounterMachine`) keep the `None`
    // defaults and migration is simply unavailable for them.

    /// The shard key `command` is about, if the command space is keyed —
    /// mirrors [`crate::shard::ShardKey`] at the state-machine level, where
    /// the server (which is generic over `S`, not over the command's traits)
    /// can reach it. `None` = unkeyed (never door-checked against migrated
    /// ranges).
    fn command_key(command: &Self::Command) -> Option<&str> {
        let _ = command;
        None
    }

    /// Extracts the settled `(key, value)` pairs of `range` from the current
    /// state, in key order, and **removes them** — the donor half of a range
    /// hand-off, executed by every donor replica at the same point of the
    /// total order (the migration fence's epoch close), so donor digests
    /// stay aligned. `None` = migration unsupported.
    fn extract_range(&mut self, range: &crate::shard::KeyRange) -> Option<Vec<(String, String)>> {
        let _ = range;
        None
    }

    /// The command that installs extracted `entries` on the recipient group,
    /// fed through the recipient's **own total order** like any client
    /// request (so all recipient replicas install at the same position).
    /// Must be insert-if-absent: a redirected write ordered before the
    /// install wins over the migrated value. `None` = migration unsupported.
    fn install_range_command(entries: Vec<(String, String)>) -> Option<Self::Command> {
        let _ = entries;
        None
    }

    /// Deterministic digest over the `(key, value)` pairs of `range`
    /// currently in the state — the end-to-end check that donor and
    /// recipient agree on the migrated data. `None` = unsupported.
    fn range_digest(&self, range: &crate::shard::KeyRange) -> Option<u64> {
        let _ = range;
        None
    }

    // -- Merkle anti-entropy hooks (all optional) ---------------------------

    /// The `(key, value_hash)` leaves a Merkle tree over the settled state
    /// is built from ([`crate::merkle::MerkleTree::build`]). `None` = the
    /// machine exposes no keyed view and anti-entropy is unavailable.
    fn anti_entropy_leaves(&self) -> Option<Vec<(String, u64)>> {
        None
    }

    /// Overwrites `key` with the group-majority `value` (`None` = remove)
    /// decided by an anti-entropy leaf vote. Returns whether the state
    /// changed. Out-of-band by design: it repairs *corruption*, i.e. state
    /// that already departed from the replayed order.
    fn anti_entropy_repair(&mut self, key: &str, value: Option<&str>) -> bool {
        let _ = (key, value);
        false
    }

    /// The settled value of `key`, as cast in an anti-entropy leaf vote.
    /// `None` when the key is absent *or* the machine is unkeyed.
    fn anti_entropy_value(&self, key: &str) -> Option<String> {
        let _ = key;
        None
    }
}

/// The canonical digest over a migrated range's `(key, value)` entries: the
/// donor stamps it onto the `MigrateState` hand-off, the recipient recomputes
/// it over the installed range ([`StateMachine::range_digest`]) — both sides
/// must use this one fold for the end-to-end check to mean anything.
pub fn entries_digest<K: AsRef<str>, V: AsRef<str>>(entries: &[(K, V)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (k, v) in entries {
        for b in k.as_ref().bytes().chain(v.as_ref().bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h = h.rotate_left(7);
    }
    h
}

/// A serialized state-machine image, stamped by the snapshot layer with its
/// delivery position and state digest (see `OarServer`'s snapshot record).
///
/// The payload is type-erased so protocol wires ([`crate::message::OarWire`])
/// can carry images without growing another generic parameter; the concrete
/// type is recovered by [`StateMachine::install`] on a machine of the same
/// type. In a real deployment this would be a byte buffer; in the simulator
/// an `Arc` keeps transfer cheap and deterministic.
#[derive(Clone)]
pub struct StateImage(Arc<dyn Any + Send + Sync>);

impl StateImage {
    /// Wraps a concrete state value.
    pub fn new<T: Any + Send + Sync>(value: T) -> Self {
        StateImage(Arc::new(value))
    }

    /// Recovers the concrete state, if the image holds a `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.downcast_ref::<T>()
    }
}

impl fmt::Debug for StateImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StateImage(..)")
    }
}

/// Equality on images is identity of the underlying allocation: images are
/// compared for protocol bookkeeping (wire `PartialEq` derives), never for
/// state equality — state equality is what digests are for.
impl PartialEq for StateImage {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// The typed face of snapshot support: a machine picks a concrete `Image`
/// type and the blanket helpers erase/recover it for the wire layer.
///
/// Implementors override [`StateMachine::snapshot`]/[`StateMachine::install`]
/// by forwarding to [`Snapshottable::erased_snapshot`] and
/// [`Snapshottable::install_erased`]:
///
/// ```
/// use oar::state_machine::{Snapshottable, StateImage, StateMachine};
/// use oar::state_machine::{CounterCommand, CounterMachine};
///
/// let mut sm = CounterMachine::default();
/// sm.apply(&CounterCommand::Add(7));
/// let image = sm.snapshot().expect("counter supports snapshots");
/// let mut fresh = CounterMachine::default();
/// assert!(fresh.install(&image));
/// assert_eq!(fresh.digest(), sm.digest());
/// ```
pub trait Snapshottable: StateMachine {
    /// The concrete serialized form of this machine's state.
    type Image: Clone + Send + Sync + 'static;

    /// Captures the current state.
    fn snapshot_image(&self) -> Self::Image;

    /// Replaces the current state with `image`.
    fn install_image(&mut self, image: &Self::Image);

    /// Captures the current state as a type-erased [`StateImage`].
    fn erased_snapshot(&self) -> StateImage {
        StateImage::new(self.snapshot_image())
    }

    /// Installs a type-erased image; `false` if it is not a `Self::Image`.
    fn install_erased(&mut self, image: &StateImage) -> bool {
        match image.downcast_ref::<Self::Image>() {
            Some(concrete) => {
                self.install_image(concrete);
                true
            }
            None => false,
        }
    }
}

// ---------------------------------------------------------------------------
// A tiny built-in state machine used by unit tests, doc tests and benches.
// Domain-specific services (stack, key-value store, bank) live in `oar-apps`.
// ---------------------------------------------------------------------------

/// Commands of the built-in counter service.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterCommand {
    /// Add the given amount and return the new value.
    Add(i64),
    /// Return the current value without modifying it.
    Get,
}

/// A replicated counter: the smallest useful deterministic, undoable service.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterMachine {
    value: i64,
    applied: u64,
}

impl CounterMachine {
    /// The current counter value.
    pub fn value(&self) -> i64 {
        self.value
    }

    /// Number of commands applied (and not undone).
    pub fn applied(&self) -> u64 {
        self.applied
    }
}

/// Undo token of [`CounterMachine`].
#[derive(Clone, Debug)]
pub struct CounterUndo {
    delta: i64,
}

/// Every counter command touches the single shared cell, so all counter
/// commands conflict pairwise and the parallel scheduler degenerates to
/// serial waves — correct, just without speedup.
impl ConflictKeys for CounterCommand {
    fn conflict_keys(&self) -> KeySet<'_> {
        KeySet::Keys(vec!["counter"])
    }
}

impl StateMachine for CounterMachine {
    type Command = CounterCommand;
    type Response = i64;
    type Undo = CounterUndo;

    fn apply(&mut self, command: &CounterCommand) -> (i64, CounterUndo) {
        match *command {
            CounterCommand::Add(delta) => {
                self.value += delta;
                self.applied += 1;
                (self.value, CounterUndo { delta })
            }
            CounterCommand::Get => {
                self.applied += 1;
                (self.value, CounterUndo { delta: 0 })
            }
        }
    }

    fn undo(&mut self, token: CounterUndo) {
        self.value -= token.delta;
        self.applied -= 1;
    }

    fn digest(&self) -> u64 {
        // Simple mix of the two fields; deterministic and collision-resistant
        // enough for replica comparison in tests.
        (self.value as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.applied
    }

    fn snapshot(&self) -> Option<StateImage> {
        Some(self.erased_snapshot())
    }

    fn install(&mut self, image: &StateImage) -> bool {
        self.install_erased(image)
    }

    fn fork(&self) -> Option<Self> {
        Some(self.clone())
    }
}

impl Snapshottable for CounterMachine {
    type Image = CounterMachine;

    fn snapshot_image(&self) -> CounterMachine {
        self.clone()
    }

    fn install_image(&mut self, image: &CounterMachine) {
        *self = image.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_applies_and_replies_new_value() {
        let mut sm = CounterMachine::default();
        assert_eq!(sm.apply(&CounterCommand::Add(3)).0, 3);
        assert_eq!(sm.apply(&CounterCommand::Add(-1)).0, 2);
        assert_eq!(sm.apply(&CounterCommand::Get).0, 2);
        assert_eq!(sm.value(), 2);
        assert_eq!(sm.applied(), 3);
    }

    #[test]
    fn undo_restores_previous_state() {
        let mut sm = CounterMachine::default();
        let before = sm.digest();
        let (_, t1) = sm.apply(&CounterCommand::Add(10));
        let (_, t2) = sm.apply(&CounterCommand::Add(7));
        sm.undo(t2);
        sm.undo(t1);
        assert_eq!(sm.value(), 0);
        assert_eq!(sm.digest(), before);
    }

    #[test]
    fn determinism_same_commands_same_digest() {
        let commands = [
            CounterCommand::Add(4),
            CounterCommand::Get,
            CounterCommand::Add(-9),
        ];
        let mut a = CounterMachine::default();
        let mut b = CounterMachine::default();
        for c in &commands {
            let (ra, _) = a.apply(c);
            let (rb, _) = b.apply(c);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_states_have_different_digests() {
        let mut a = CounterMachine::default();
        let b = CounterMachine::default();
        a.apply(&CounterCommand::Add(1));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn key_sets_intersect_on_shared_keys_and_always_on_all() {
        let ab = KeySet::Keys(vec!["a", "b"]);
        let bc = KeySet::Keys(vec!["b", "c"]);
        let cd = KeySet::Keys(vec!["c", "d"]);
        assert!(ab.intersects(&bc));
        assert!(!ab.intersects(&cd));
        assert!(KeySet::All.intersects(&ab));
        assert!(ab.intersects(&KeySet::All));
        assert!(KeySet::All.intersects(&KeySet::All));
    }

    #[test]
    fn counter_commands_all_conflict() {
        let add = CounterCommand::Add(1).conflict_keys();
        let get = CounterCommand::Get.conflict_keys();
        assert!(add.intersects(&get));
    }

    #[test]
    fn snapshot_roundtrip_restores_digest_and_value() {
        let mut sm = CounterMachine::default();
        sm.apply(&CounterCommand::Add(42));
        sm.apply(&CounterCommand::Get);
        let image = sm.snapshot().expect("counter supports snapshots");
        let mut fresh = CounterMachine::default();
        assert!(fresh.install(&image));
        assert_eq!(fresh.value(), 42);
        assert_eq!(fresh.applied(), 2);
        assert_eq!(fresh.digest(), sm.digest());
    }

    #[test]
    fn install_rejects_an_image_of_a_different_type() {
        let mut sm = CounterMachine::default();
        sm.apply(&CounterCommand::Add(5));
        let alien = StateImage::new(String::from("not a counter"));
        assert!(!sm.install(&alien));
        assert_eq!(sm.value(), 5, "a rejected install leaves state untouched");
        assert!(alien.downcast_ref::<CounterMachine>().is_none());
    }

    #[test]
    fn state_image_equality_is_allocation_identity() {
        let sm = CounterMachine::default();
        let a = sm.snapshot().unwrap();
        let b = sm.snapshot().unwrap();
        assert_eq!(a, a.clone());
        assert_ne!(a, b, "identical state, distinct allocations");
    }

    #[test]
    fn default_apply_batch_is_serial_and_matches_apply() {
        let commands = [
            CounterCommand::Add(4),
            CounterCommand::Get,
            CounterCommand::Add(-9),
        ];
        let refs: Vec<&CounterCommand> = commands.iter().collect();
        let mut batched = CounterMachine::default();
        let mut serial = CounterMachine::default();
        let out = batched.apply_batch(&refs, 8);
        let expected: Vec<i64> = commands.iter().map(|c| serial.apply(c).0).collect();
        let got: Vec<i64> = out.results.iter().map(|(r, _)| *r).collect();
        assert_eq!(got, expected);
        assert_eq!(out.wave_sizes, vec![1; commands.len()]);
        assert_eq!(batched.digest(), serial.digest());
    }
}
