//! The conservative ordering procedure (`Cnsv-order`, Fig. 7 of the paper).
//!
//! The consensus (instance = epoch) decides `Dk`, a sequence of
//! `(O_delivered, O_notdelivered)` pairs — one per contributing process. Given
//! that decision and a server's own `O_delivered` sequence, this module
//! computes the sequences `Bad` (optimistic deliveries to undo), `New`
//! (requests to A-deliver) and `Good` (optimistic deliveries confirmed by the
//! conservative order), exactly following lines 5–19 of Fig. 7.
//!
//! The function is pure, which is what makes the specification properties of
//! §5.4 (Agreement, Unicity, Non-triviality, Validity, Undo legality, Undo
//! consistency, Undo thriftiness) directly property-testable; see the tests at
//! the bottom of this file and `tests/cnsv_order_spec.rs` in the integration
//! suite.

use oar_consensus::Decision;
use oar_sequence::Seq;

use crate::message::{CnsvValue, RequestId};

/// The outcome of `Cnsv-order` for one server.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CnsvOutcome {
    /// Requests Opt-delivered in the wrong order; they must be Opt-undelivered
    /// (in reverse delivery order) and will reappear in `new`.
    pub bad: Seq<RequestId>,
    /// Requests to A-deliver, in the conservative order.
    pub new: Seq<RequestId>,
    /// Requests Opt-delivered in the right order (kept).
    pub good: Seq<RequestId>,
}

impl CnsvOutcome {
    /// The sequence of requests delivered during the epoch after the outcome
    /// is applied: `(O_delivered ⊖ Bad) ⊕ New`, which the Agreement property
    /// guarantees to be identical at every correct server.
    pub fn final_sequence(&self, o_delivered: &Seq<RequestId>) -> Seq<RequestId> {
        o_delivered.subtract(&self.bad).concat(&self.new)
    }
}

/// Computes `{Bad; New}` (and `Good`) from the server's `O_delivered` and the
/// consensus decision `Dk`, per Fig. 7 lines 5–19.
///
/// Runs in O(|decision| + |O_delivered|): the indexed [`Seq`] makes every
/// membership probe O(1), and lines 12–14 (the `⊎` merge of the pending
/// sequences followed by the `⊖ dlv_max` filter and the `⊕` append) are fused
/// into a single accumulation pass over the decision instead of building
/// three intermediate sequences.
pub fn cnsv_order_outcome(
    o_delivered: &Seq<RequestId>,
    decision: &Decision<CnsvValue>,
) -> CnsvOutcome {
    // Line 5: dlv_max ← longest dlv_i in the decision. By Lemma 2 the dlv_i are
    // prefixes of one another, so "longest" is unambiguous.
    let dlv_max: Seq<RequestId> = decision
        .iter()
        .map(|(_, v)| &v.o_delivered)
        .max_by_key(|s| s.len())
        .cloned()
        .unwrap_or_default();

    let mut bad = Seq::new();
    let mut new = Seq::new();
    let good;

    if o_delivered.is_prefix_of(&dlv_max) {
        // Lines 6–8: our optimistic deliveries are all confirmed.
        new = dlv_max.subtract(o_delivered);
        good = o_delivered.clone();
    } else {
        // Lines 9–11: we delivered beyond (or diverging from) the decision.
        good = o_delivered.common_prefix(&dlv_max);
        bad = o_delivered.subtract(&good);
    }

    // Lines 12–14 fused: append every contributor's pending requests in
    // decision order (identical at every process by consensus agreement),
    // skipping anything already delivered by `dlv_max` or already appended.
    // `new` acts as its own dedup accumulator — elements added from lines 6–8
    // are members of `dlv_max`, so the two skip conditions cannot overlap.
    for (_, v) in decision {
        for m in v.o_notdelivered.iter() {
            if !dlv_max.contains(m) && !new.contains(m) {
                new.push(*m);
            }
        }
    }

    // Lines 15–19 (undo thriftiness): if Bad and New share a prefix, those
    // requests would be undone and immediately redelivered in the same order;
    // keep them delivered instead.
    let prefix = bad.common_prefix(&new);
    if !prefix.is_empty() {
        let good = good.concat(&prefix);
        let bad = bad.subtract(&prefix);
        let new = new.subtract(&prefix);
        return CnsvOutcome { bad, new, good };
    }

    CnsvOutcome { bad, new, good }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oar_simnet::ProcessId;

    fn rid(n: u64) -> RequestId {
        RequestId::new(ProcessId::new(9), n)
    }

    fn seq(ids: &[u64]) -> Seq<RequestId> {
        ids.iter().map(|&n| rid(n)).collect()
    }

    fn val(dlv: &[u64], notdlv: &[u64]) -> CnsvValue {
        CnsvValue {
            o_delivered: seq(dlv),
            o_notdelivered: seq(notdlv),
        }
    }

    fn decision(values: Vec<CnsvValue>) -> Decision<CnsvValue> {
        values
            .into_iter()
            .enumerate()
            .map(|(i, v)| (ProcessId::new(i), v))
            .collect()
    }

    #[test]
    fn all_in_agreement_nothing_to_do() {
        // Every process delivered {1,2}; nothing pending.
        let d = decision(vec![
            val(&[1, 2], &[]),
            val(&[1, 2], &[]),
            val(&[1, 2], &[]),
        ]);
        let out = cnsv_order_outcome(&seq(&[1, 2]), &d);
        assert_eq!(out.bad, seq(&[]));
        assert_eq!(out.new, seq(&[]));
        assert_eq!(out.good, seq(&[1, 2]));
        assert_eq!(out.final_sequence(&seq(&[1, 2])), seq(&[1, 2]));
    }

    #[test]
    fn figure3_scenario_no_undelivery() {
        // Paper Fig. 3: p2 Opt-delivered {1,2,3,4}; p3 only {1,2} with {3,4}
        // pending. A majority saw {1,2,3,4}, so p3 just A-delivers {3,4}.
        let d = decision(vec![val(&[1, 2, 3, 4], &[]), val(&[1, 2], &[4, 3])]);
        // p2's point of view
        let out_p2 = cnsv_order_outcome(&seq(&[1, 2, 3, 4]), &d);
        assert_eq!(out_p2.bad, seq(&[]));
        assert_eq!(out_p2.new, seq(&[]));
        // p3's point of view
        let out_p3 = cnsv_order_outcome(&seq(&[1, 2]), &d);
        assert_eq!(out_p3.bad, seq(&[]));
        assert_eq!(out_p3.new, seq(&[3, 4]));
        assert_eq!(
            out_p2.final_sequence(&seq(&[1, 2, 3, 4])),
            out_p3.final_sequence(&seq(&[1, 2]))
        );
    }

    #[test]
    fn figure4_scenario_with_undelivery() {
        // Paper Fig. 4: p2 Opt-delivered {1,2,3,4}, but the decision only
        // contains the values of p3 and p4, which both have dlv = {1,2} and
        // pending {4,3}. The conservative order is {1,2,4,3}: p2 must undo
        // {3,4} and redeliver {4,3}.
        let d = decision(vec![val(&[1, 2], &[4, 3]), val(&[1, 2], &[3, 4])]);
        let out_p2 = cnsv_order_outcome(&seq(&[1, 2, 3, 4]), &d);
        assert_eq!(out_p2.good, seq(&[1, 2]));
        assert_eq!(out_p2.bad, seq(&[3, 4]));
        assert_eq!(out_p2.new, seq(&[4, 3]));
        // p3 and p4 simply A-deliver in the decided order.
        let out_p3 = cnsv_order_outcome(&seq(&[1, 2]), &d);
        assert_eq!(out_p3.bad, seq(&[]));
        assert_eq!(out_p3.new, seq(&[4, 3]));
        assert_eq!(
            out_p2.final_sequence(&seq(&[1, 2, 3, 4])),
            out_p3.final_sequence(&seq(&[1, 2]))
        );
    }

    #[test]
    fn undo_thriftiness_rescues_same_order_redelivery() {
        // p's extra deliveries {3,4} are not in any dlv_i, but the merged
        // pending sequence happens to schedule them in the same order: lines
        // 15–19 must cancel the undo.
        let d = decision(vec![val(&[1, 2], &[3, 4]), val(&[1, 2], &[3, 4])]);
        let out = cnsv_order_outcome(&seq(&[1, 2, 3, 4]), &d);
        assert_eq!(out.bad, seq(&[]));
        assert_eq!(out.new, seq(&[]));
        assert_eq!(out.good, seq(&[1, 2, 3, 4]));
    }

    #[test]
    fn partial_thriftiness_keeps_common_prefix_only() {
        // p delivered {1,2,3,4,5}; decision dlv_max = {1,2}; pending merge
        // gives {3,6,4,5}: the common prefix of Bad={3,4,5} and New={3,6,4,5}
        // is {3}, so 3 stays delivered, 4 and 5 are undone.
        let d = decision(vec![val(&[1, 2], &[3, 6, 4, 5]), val(&[1, 2], &[3, 6])]);
        let out = cnsv_order_outcome(&seq(&[1, 2, 3, 4, 5]), &d);
        assert_eq!(out.good, seq(&[1, 2, 3]));
        assert_eq!(out.bad, seq(&[4, 5]));
        assert_eq!(out.new, seq(&[6, 4, 5]));
    }

    #[test]
    fn empty_decision_undoes_everything_unconfirmed() {
        let d: Decision<CnsvValue> = vec![];
        let out = cnsv_order_outcome(&seq(&[1, 2]), &d);
        assert_eq!(out.bad, seq(&[1, 2]));
        assert_eq!(out.new, seq(&[]));
        assert_eq!(out.good, seq(&[]));
    }

    #[test]
    fn pending_only_process_delivers_merged_pending() {
        let d = decision(vec![val(&[], &[2, 1]), val(&[], &[1, 3])]);
        let out = cnsv_order_outcome(&seq(&[]), &d);
        assert_eq!(out.bad, seq(&[]));
        // ⊎({2,1},{1,3}) = {2,1,3}
        assert_eq!(out.new, seq(&[2, 1, 3]));
    }

    #[test]
    fn final_sequence_is_good_concat_new() {
        let d = decision(vec![val(&[1], &[5]), val(&[1, 2, 3], &[])]);
        let own = seq(&[1, 2, 3, 4]);
        let out = cnsv_order_outcome(&own, &d);
        assert_eq!(out.final_sequence(&own), out.good.concat(&out.new));
    }
}

#[cfg(test)]
mod spec_proptests {
    //! Property tests of the §5.4 specification of `Cnsv-order`, over randomly
    //! generated epoch states. Generation mirrors the protocol's guarantees:
    //! all `O_delivered` sequences are prefixes of a common sequencer order
    //! (Lemma 2), and the decision aggregates the values of a random majority.

    use super::*;
    use oar_sequence::Seq;
    use oar_simnet::ProcessId;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct EpochCase {
        /// One (o_delivered, o_notdelivered) pair per process.
        values: Vec<CnsvValue>,
        /// Indices of the processes whose values form the decision.
        contributors: Vec<usize>,
    }

    fn rid(n: u64) -> RequestId {
        RequestId::new(ProcessId::new(50), n)
    }

    fn arb_case() -> impl Strategy<Value = EpochCase> {
        // n processes, a sequencer order over `total` distinct requests, a
        // per-process prefix length, and per-process extra pending requests.
        (3usize..=7, 0usize..=8).prop_flat_map(|(n, total)| {
            let prefix_lens = proptest::collection::vec(0usize..=total, n);
            let pending_extra =
                proptest::collection::vec(proptest::collection::vec(0u64..20, 0..5), n);
            let contributors = proptest::collection::vec(0usize..n, (n / 2 + 1)..=n);
            (
                Just(n),
                Just(total),
                prefix_lens,
                pending_extra,
                contributors,
            )
                .prop_map(
                    |(n, total, prefix_lens, pending_extra, mut contributors)| {
                        contributors.sort_unstable();
                        contributors.dedup();
                        let order: Vec<RequestId> = (0..total as u64).map(rid).collect();
                        let values = (0..n)
                            .map(|i| {
                                let len = prefix_lens[i].min(total);
                                let o_delivered: Seq<RequestId> =
                                    order[..len].iter().copied().collect();
                                // pending = some later requests of the order plus extras,
                                // excluding what this process already delivered
                                let mut pending: Vec<RequestId> = order[len..]
                                    .iter()
                                    .copied()
                                    .filter(|_| i % 2 == 0)
                                    .collect();
                                for &e in &pending_extra[i] {
                                    let id = rid(100 + e);
                                    if !pending.contains(&id) {
                                        pending.push(id);
                                    }
                                }
                                CnsvValue {
                                    o_delivered,
                                    o_notdelivered: pending.into_iter().collect(),
                                }
                            })
                            .collect();
                        EpochCase {
                            values,
                            contributors,
                        }
                    },
                )
        })
    }

    fn decision_of(case: &EpochCase) -> Decision<CnsvValue> {
        case.contributors
            .iter()
            .map(|&i| (ProcessId::new(i), case.values[i].clone()))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Agreement: (O_delivered_p ⊖ Bad_p) ⊕ New_p identical at every process.
        #[test]
        fn agreement(case in arb_case()) {
            let d = decision_of(&case);
            let finals: Vec<Seq<RequestId>> = case
                .values
                .iter()
                .map(|v| cnsv_order_outcome(&v.o_delivered, &d).final_sequence(&v.o_delivered))
                .collect();
            for f in &finals {
                prop_assert_eq!(f.clone(), finals[0].clone());
            }
        }

        /// Unicity: New_p ∩ (O_delivered_p ⊖ Bad_p) = ∅.
        #[test]
        fn unicity(case in arb_case()) {
            let d = decision_of(&case);
            for v in &case.values {
                let out = cnsv_order_outcome(&v.o_delivered, &d);
                let kept = v.o_delivered.subtract(&out.bad);
                prop_assert!(out.new.is_disjoint(&kept));
            }
        }

        /// Non-triviality: a request present at a majority of processes
        /// (delivered or pending) is delivered during the epoch — provided the
        /// decision contains the values of a majority, as guaranteed by the
        /// default consensus configuration.
        #[test]
        fn non_triviality(case in arb_case()) {
            let n = case.values.len();
            let d = decision_of(&case);
            prop_assume!(case.contributors.len() > n / 2);
            // requests held by a majority
            let mut counts: std::collections::HashMap<RequestId, usize> = Default::default();
            for v in &case.values {
                for m in v.o_delivered.iter().chain(v.o_notdelivered.iter()) {
                    *counts.entry(*m).or_default() += 1;
                }
            }
            for v in &case.values {
                let out = cnsv_order_outcome(&v.o_delivered, &d);
                let final_seq = out.final_sequence(&v.o_delivered);
                for (m, c) in &counts {
                    if *c > n / 2 {
                        prop_assert!(
                            final_seq.contains(m),
                            "majority-held request {m:?} missing from final sequence"
                        );
                    }
                }
            }
        }

        /// Validity: every request in New_p was delivered or pending at some
        /// process contributing to the decision.
        #[test]
        fn validity(case in arb_case()) {
            let d = decision_of(&case);
            for v in &case.values {
                let out = cnsv_order_outcome(&v.o_delivered, &d);
                for m in out.new.iter() {
                    let known = d.iter().any(|(_, dv)| {
                        dv.o_delivered.contains(m) || dv.o_notdelivered.contains(m)
                    });
                    prop_assert!(known, "request {m:?} in New came from nowhere");
                }
            }
        }

        /// Undo legality: Bad_p is a suffix of O_delivered_p, i.e.
        /// (O_delivered_p ⊖ Bad_p) ⊕ Bad_p = O_delivered_p.
        #[test]
        fn undo_legality(case in arb_case()) {
            let d = decision_of(&case);
            for v in &case.values {
                let out = cnsv_order_outcome(&v.o_delivered, &d);
                prop_assert_eq!(
                    v.o_delivered.subtract(&out.bad).concat(&out.bad),
                    v.o_delivered.clone()
                );
                prop_assert!(out.bad.is_suffix_of(&v.o_delivered));
            }
        }

        /// Undo consistency: a request undone by p was not Opt-delivered by a
        /// majority of processes — provided the decision contains a majority
        /// of values.
        #[test]
        fn undo_consistency(case in arb_case()) {
            let n = case.values.len();
            let d = decision_of(&case);
            prop_assume!(case.contributors.len() > n / 2);
            for v in &case.values {
                let out = cnsv_order_outcome(&v.o_delivered, &d);
                for m in out.bad.iter() {
                    let delivered_by = case
                        .values
                        .iter()
                        .filter(|q| q.o_delivered.contains(m))
                        .count();
                    prop_assert!(
                        delivered_by < n / 2 + 1,
                        "undone request {m:?} was Opt-delivered by a majority"
                    );
                }
            }
        }

        /// Undo thriftiness: Bad_p and New_p never share a prefix.
        #[test]
        fn undo_thriftiness(case in arb_case()) {
            let d = decision_of(&case);
            for v in &case.values {
                let out = cnsv_order_outcome(&v.o_delivered, &d);
                prop_assert!(out.bad.common_prefix(&out.new).is_empty());
            }
        }

        /// Good is always the confirmed prefix: Good_p ⊕ Bad_p = O_delivered_p
        /// and Good_p is a prefix of the common final sequence.
        #[test]
        fn good_is_confirmed_prefix(case in arb_case()) {
            let d = decision_of(&case);
            for v in &case.values {
                let out = cnsv_order_outcome(&v.o_delivered, &d);
                prop_assert_eq!(out.good.concat(&out.bad), v.o_delivered.clone());
                prop_assert!(out.good.is_prefix_of(&out.final_sequence(&v.o_delivered)));
            }
        }
    }
}
