//! Parallel command execution on replicas.
//!
//! Total order says *in which order* conflicting commands must take effect,
//! not that every command must execute alone. Following Marandi & Pedone's
//! *Optimistic Parallel State-Machine Replication*, a replica may execute
//! non-conflicting commands of one delivery batch concurrently and still be
//! deterministic, because non-conflicting commands commute.
//!
//! The machinery here has two halves:
//!
//! * [`plan_waves`] — a per-batch dependency-graph scheduler. Commands
//!   declare their footprint via [`ConflictKeys`]; the planner assigns each
//!   command the earliest **wave** that respects every conflict edge towards
//!   earlier commands (its level in the batch's dependency DAG). Commands in
//!   one wave are pairwise non-conflicting by construction; a command with an
//!   unknown footprint ([`KeySet::All`]) gets a wave of its own, acting as a
//!   barrier.
//! * [`wave_apply`] — the executor. Each multi-command wave is **staged** in
//!   parallel across a [`std::thread::scope`] worker pool (std only): workers
//!   compute every command's response, undo token and write-effect against
//!   the immutable wave-start state ([`ParallelStateMachine::stage`]), then
//!   the effects are committed serially in delivery order
//!   ([`ParallelStateMachine::commit`]). Singleton waves (and `workers <= 1`)
//!   fall back to plain [`StateMachine::apply`].
//!
//! Because commands in a wave touch disjoint keys, staging against the
//! wave-start state reads exactly what a serial execution would have read,
//! so responses, undo tokens and the final state are **bit-identical** to
//! serial apply — replies, the protocol propositions, and the deterministic
//! simnet twin cannot tell the difference (the differential proptests in
//! `oar-apps` enforce this). Only the wall-clock spent in the apply stage
//! changes, which is the point.

use std::collections::HashMap;
use std::thread;

use crate::state_machine::{AppliedBatch, ConflictKeys, KeySet, StateMachine};

/// A state machine whose commands can be applied in two phases — a read-only
/// **stage** followed by a serial **commit** — so that a wave of pairwise
/// non-conflicting commands can be staged concurrently.
///
/// # Contract
///
/// For every state `s` and command `c`, `stage` followed by `commit` must be
/// indistinguishable from [`StateMachine::apply`]:
///
/// ```text
/// let (r, u, e) = s.stage(&c);  s.commit(e);
/// // ≡ (same response r, same undo u, same resulting state)
/// let (r, u) = s.apply(&c);
/// ```
///
/// `stage` must not observe anything but the current state and `c` (it runs
/// concurrently with other stages of the same wave, all reading the same
/// wave-start snapshot), and `commit` must not read state that another
/// command of the same wave could have written — both hold automatically
/// when the effect only writes keys from `c`'s [`ConflictKeys`] set.
///
/// Commands reporting [`KeySet::All`] never reach `stage`: the planner
/// isolates them in singleton waves, which the executor runs through
/// `apply`.
pub trait ParallelStateMachine: StateMachine {
    /// The staged write-set of one command, replayed by
    /// [`commit`](ParallelStateMachine::commit). `Send` so it can travel
    /// back from a worker thread.
    type Effect: Send;

    /// Computes `command`'s response, undo token and write-effect against
    /// the current state **without mutating it**.
    fn stage(&self, command: &Self::Command) -> (Self::Response, Self::Undo, Self::Effect);

    /// Applies a staged effect. Called serially, in delivery order.
    fn commit(&mut self, effect: Self::Effect);
}

/// Partitions a delivery batch into waves of pairwise non-conflicting
/// commands, preserving delivery order between conflicting pairs.
///
/// Returns the waves in execution order; each wave holds command indices in
/// delivery order. Every command lands in the earliest wave consistent with
/// its conflicts (its level in the dependency DAG), so the number of waves
/// equals the length of the batch's longest conflict chain:
///
/// ```
/// use oar::parallel::plan_waves;
/// use oar::state_machine::{ConflictKeys, KeySet};
///
/// struct Touch(&'static [&'static str]);
/// impl ConflictKeys for Touch {
///     fn conflict_keys(&self) -> KeySet<'_> {
///         KeySet::Keys(self.0.to_vec())
///     }
/// }
///
/// let batch = [Touch(&["a"]), Touch(&["b"]), Touch(&["a", "c"])];
/// let refs: Vec<&Touch> = batch.iter().collect();
/// // 0 and 1 are disjoint; 2 shares "a" with 0 and must wait.
/// assert_eq!(plan_waves(&refs), vec![vec![0, 1], vec![2]]);
/// ```
pub fn plan_waves<C: ConflictKeys>(commands: &[&C]) -> Vec<Vec<usize>> {
    let mut waves: Vec<Vec<usize>> = Vec::new();
    // First wave each key is free in again (last toucher's wave + 1).
    let mut key_free: HashMap<&str, usize> = HashMap::new();
    // First wave allowed after the latest unknown-footprint barrier.
    let mut barrier = 0usize;
    // One past the highest wave assigned so far.
    let mut frontier = 0usize;
    for (i, command) in commands.iter().enumerate() {
        let wave = match command.conflict_keys() {
            // Unknown footprint: conflicts with everything before (run after
            // all of it) and everything after (nothing may join or pass it).
            KeySet::All => {
                let w = frontier;
                barrier = w + 1;
                w
            }
            KeySet::Keys(keys) => {
                let mut w = barrier;
                for key in &keys {
                    if let Some(&free) = key_free.get(key) {
                        w = w.max(free);
                    }
                }
                for key in keys {
                    key_free.insert(key, w + 1);
                }
                w
            }
        };
        frontier = frontier.max(wave + 1);
        if waves.len() <= wave {
            waves.resize_with(wave + 1, Vec::new);
        }
        waves[wave].push(i);
    }
    waves
}

/// Applies one delivery batch with conflict-graph wave scheduling, staging
/// each multi-command wave across at most `workers` scoped threads.
///
/// Responses, undo tokens and the resulting state are bit-identical to the
/// serial [`StateMachine::apply_batch`] default; `wave_sizes` records the
/// partition actually used. With `workers <= 1` every wave is applied
/// serially (the planner still runs, so the wave statistics stay
/// meaningful).
pub fn wave_apply<S>(sm: &mut S, commands: &[&S::Command], workers: usize) -> AppliedBatch<S>
where
    S: ParallelStateMachine + Sync,
    S::Command: ConflictKeys + Sync,
    S::Response: Send,
    S::Undo: Send,
{
    let waves = plan_waves(commands);
    let mut results: Vec<Option<(S::Response, S::Undo)>> = Vec::with_capacity(commands.len());
    results.resize_with(commands.len(), || None);
    let mut wave_sizes = Vec::with_capacity(waves.len());
    for wave in &waves {
        wave_sizes.push(wave.len() as u64);
        if workers <= 1 || wave.len() <= 1 {
            for &i in wave {
                results[i] = Some(sm.apply(commands[i]));
            }
            continue;
        }
        // Stage the wave in parallel against the immutable wave-start state…
        type Staged<S> = (
            usize,
            <S as StateMachine>::Response,
            <S as StateMachine>::Undo,
            <S as ParallelStateMachine>::Effect,
        );
        let shared: &S = sm;
        let mut staged: Vec<Staged<S>> = Vec::with_capacity(wave.len());
        thread::scope(|scope| {
            let handles: Vec<_> = chunk(wave, workers)
                .into_iter()
                .map(|indices| {
                    scope.spawn(move || {
                        indices
                            .iter()
                            .map(|&i| {
                                let (response, undo, effect) = shared.stage(commands[i]);
                                (i, response, undo, effect)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                staged.extend(handle.join().expect("apply worker panicked"));
            }
        });
        // …then commit the effects serially, in delivery order. The chunks
        // are contiguous in-order slices, so `staged` is already sorted.
        debug_assert!(staged.windows(2).all(|w| w[0].0 < w[1].0));
        for (i, response, undo, effect) in staged {
            sm.commit(effect);
            results[i] = Some((response, undo));
        }
    }
    AppliedBatch {
        results: results
            .into_iter()
            .map(|r| r.expect("every command is in exactly one wave"))
            .collect(),
        wave_sizes,
    }
}

/// Splits a wave into at most `workers` contiguous, near-equal chunks.
fn chunk(wave: &[usize], workers: usize) -> Vec<&[usize]> {
    let parts = workers.min(wave.len()).max(1);
    let base = wave.len() / parts;
    let extra = wave.len() % parts;
    let mut chunks = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        chunks.push(&wave[start..start + len]);
        start += len;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test machine over a few named slots: each command adds to one or
    /// more slots (conflict keys = the slot names) or declares an unknown
    /// footprint. Staging is slot-local, so the stage/commit contract holds.
    #[derive(Debug, Default, PartialEq, Clone)]
    struct SlotMachine {
        slots: HashMap<String, i64>,
        applied: u64,
    }

    #[derive(Clone, Debug, PartialEq)]
    enum SlotCommand {
        /// Add `1` to each named slot, returning the new sums.
        Bump(Vec<String>),
        /// Unknown footprint: sum every slot.
        SumAll,
    }

    impl ConflictKeys for SlotCommand {
        fn conflict_keys(&self) -> KeySet<'_> {
            match self {
                SlotCommand::Bump(slots) => {
                    KeySet::Keys(slots.iter().map(String::as_str).collect())
                }
                SlotCommand::SumAll => KeySet::All,
            }
        }
    }

    impl StateMachine for SlotMachine {
        type Command = SlotCommand;
        type Response = Vec<i64>;
        type Undo = Vec<String>;

        fn apply(&mut self, command: &SlotCommand) -> (Vec<i64>, Vec<String>) {
            let (response, undo, effect) = self.stage(command);
            self.commit(effect);
            (response, undo)
        }

        fn undo(&mut self, token: Vec<String>) {
            for slot in token {
                let value = self.slots.get_mut(&slot).expect("bumped slot exists");
                *value -= 1;
                // Slots only exist while positive, so undoing the bump that
                // created one removes it and restores the exact prior state.
                if *value == 0 {
                    self.slots.remove(&slot);
                }
            }
            self.applied -= 1;
        }

        fn digest(&self) -> u64 {
            let mut pairs: Vec<_> = self.slots.iter().collect();
            pairs.sort();
            let mut h = self.applied;
            for (k, v) in pairs {
                for b in k.bytes() {
                    h = h.wrapping_mul(31).wrapping_add(b as u64);
                }
                h = h.wrapping_mul(31).wrapping_add(*v as u64);
            }
            h
        }
    }

    impl ParallelStateMachine for SlotMachine {
        type Effect = Vec<String>;

        fn stage(&self, command: &SlotCommand) -> (Vec<i64>, Vec<String>, Vec<String>) {
            match command {
                SlotCommand::Bump(slots) => {
                    let mut sums = Vec::with_capacity(slots.len());
                    let mut overlay: HashMap<&str, i64> = HashMap::new();
                    for slot in slots {
                        let next = overlay
                            .get(slot.as_str())
                            .copied()
                            .unwrap_or_else(|| self.slots.get(slot).copied().unwrap_or(0))
                            + 1;
                        overlay.insert(slot, next);
                        sums.push(next);
                    }
                    (sums, slots.clone(), slots.clone())
                }
                SlotCommand::SumAll => {
                    let mut pairs: Vec<_> = self.slots.iter().collect();
                    pairs.sort();
                    (pairs.into_iter().map(|(_, v)| *v).collect(), vec![], vec![])
                }
            }
        }

        fn commit(&mut self, effect: Vec<String>) {
            for slot in effect {
                *self.slots.entry(slot).or_insert(0) += 1;
            }
            self.applied += 1;
        }
    }

    fn bump(slots: &[&str]) -> SlotCommand {
        SlotCommand::Bump(slots.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn disjoint_commands_share_one_wave() {
        let batch = [bump(&["a"]), bump(&["b"]), bump(&["c"])];
        let refs: Vec<&SlotCommand> = batch.iter().collect();
        assert_eq!(plan_waves(&refs), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn conflicting_commands_respect_delivery_order() {
        let batch = [bump(&["a"]), bump(&["a"]), bump(&["b"]), bump(&["a", "b"])];
        let refs: Vec<&SlotCommand> = batch.iter().collect();
        // 1 waits for 0 (key a); 2 shares wave 0; 3 waits for both chains.
        assert_eq!(plan_waves(&refs), vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    fn unknown_footprint_is_a_barrier_in_its_own_wave() {
        let batch = [
            bump(&["a"]),
            SlotCommand::SumAll,
            bump(&["a"]),
            bump(&["b"]),
        ];
        let refs: Vec<&SlotCommand> = batch.iter().collect();
        // SumAll runs alone: after everything before, before everything
        // after — even the disjoint "b" bump may not pass it.
        assert_eq!(plan_waves(&refs), vec![vec![0], vec![1], vec![2, 3]]);
    }

    #[test]
    fn every_wave_is_pairwise_non_conflicting() {
        let batch = [
            bump(&["a", "b"]),
            bump(&["c"]),
            bump(&["b", "c"]),
            bump(&["d"]),
            SlotCommand::SumAll,
            bump(&["a"]),
            bump(&["a", "d"]),
        ];
        let refs: Vec<&SlotCommand> = batch.iter().collect();
        for wave in plan_waves(&refs) {
            for (x, &i) in wave.iter().enumerate() {
                for &j in &wave[x + 1..] {
                    assert!(
                        !refs[i].conflict_keys().intersects(&refs[j].conflict_keys()),
                        "commands {i} and {j} conflict but share a wave"
                    );
                }
            }
        }
    }

    #[test]
    fn chunks_cover_the_wave_in_order() {
        let wave: Vec<usize> = (0..10).collect();
        for workers in 1..=12 {
            let chunks = chunk(&wave, workers);
            assert!(chunks.len() <= workers);
            let flat: Vec<usize> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(flat, wave, "workers={workers}");
        }
    }

    /// The differential check at the scheduler's own level: parallel apply
    /// must be bit-identical to serial apply for mixed batches, at every
    /// worker count (including the serial fallbacks).
    #[test]
    fn wave_apply_matches_serial_apply_bitwise() {
        let batch = [
            bump(&["a"]),
            bump(&["b", "c"]),
            bump(&["a", "c"]),
            SlotCommand::SumAll,
            bump(&["d"]),
            bump(&["d"]),
            bump(&["e", "a"]),
        ];
        let refs: Vec<&SlotCommand> = batch.iter().collect();
        let mut serial = SlotMachine::default();
        let expected: Vec<(Vec<i64>, Vec<String>)> = refs.iter().map(|c| serial.apply(c)).collect();
        for workers in [0, 1, 2, 3, 8] {
            let mut parallel = SlotMachine::default();
            let out = wave_apply(&mut parallel, &refs, workers);
            assert_eq!(out.results, expected, "workers={workers}");
            assert_eq!(parallel, serial, "workers={workers}");
            assert_eq!(
                out.wave_sizes.iter().sum::<u64>(),
                refs.len() as u64,
                "every command in exactly one wave"
            );
        }
    }

    /// Undo tokens from a parallel batch roll back exactly like serial ones.
    #[test]
    fn parallel_undo_stack_rolls_back_to_the_initial_state() {
        let mut sm = SlotMachine::default();
        sm.apply(&bump(&["a"]));
        let before = sm.clone();
        let batch = [bump(&["a"]), bump(&["b"]), bump(&["c", "a"]), bump(&["b"])];
        let refs: Vec<&SlotCommand> = batch.iter().collect();
        let out = wave_apply(&mut sm, &refs, 4);
        for (_, undo) in out.results.into_iter().rev() {
            sm.undo(undo);
        }
        assert_eq!(sm, before);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut sm = SlotMachine::default();
        let out = wave_apply(&mut sm, &[], 4);
        assert!(out.results.is_empty());
        assert!(out.wave_sizes.is_empty());
        assert_eq!(sm, SlotMachine::default());
    }
}
