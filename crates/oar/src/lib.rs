//! # oar — Optimistic Active Replication
//!
//! A faithful, executable implementation of the **OAR algorithm** of Felber &
//! Schiper, *Optimistic Active Replication* (ICDCS 2001): active replication
//! whose Atomic Broadcast is opened up ("white box") so that the protocol can
//! deliver optimistically — with sequencer-based, single-phase ordering — while
//! guaranteeing that clients never adopt a reply that could be invalidated.
//!
//! ## Protocol in one paragraph
//!
//! Clients `R-multicast` their request to the server group `Π` and wait for a
//! **weighted quorum** of replies ([`client::OarClient`], Fig. 5). Servers run
//! in epochs ([`server::OarServer`], Fig. 6): during the optimistic phase a
//! sequencer orders requests in one communication step and every server
//! `Opt-deliver`s them immediately, replying with a small weight; if the
//! sequencer is suspected, the group switches to the conservative phase, where
//! `Cnsv-order` ([`cnsv_order`]) — reduced to a Maj-validity consensus
//! ([`oar_consensus`]) — closes the epoch, possibly `Opt-undeliver`ing requests
//! that a suspected minority had delivered out of order, and `A-deliver`s the
//! agreed sequence with full weight `Π`.
//!
//! ## Crate layout
//!
//! * [`state_machine`] — the deterministic, undoable replicated-service trait,
//!   plus the [`ConflictKeys`] footprint declaration commands opt into;
//! * [`parallel`] — conflict-graph wave scheduling of `apply` across a
//!   `std::thread::scope` worker pool: non-conflicting commands of one
//!   delivery batch execute concurrently, bit-identically to serial apply;
//! * [`message`] — requests, weighted replies, ordering messages, wire enum;
//! * [`cnsv_order`] — the pure `Cnsv-order` procedure (Fig. 7) and its
//!   property-tested specification (§5.4);
//! * [`server`] / [`client`] — the protocol participants as simulator
//!   processes;
//! * [`cluster`] — a harness assembling whole deployments for tests, examples
//!   and experiments;
//! * [`shard`] / [`sharded`] — key-space partitioning over several
//!   independent OAR groups (router, sharded clients and deployments), the
//!   scale-out layer beyond one sequencer;
//! * [`txn`] — client-side multi-key transactions over the sharded
//!   deployment: single-group fast path (zero extra wires), per-group
//!   `TxnPrepare` commit for multi-group key sets;
//! * [`adaptive`] — load-driven controllers for the sequencer's batch
//!   threshold and the clients' pipeline windows, converging to the paper's
//!   unbatched behaviour under light load and amortised batches under
//!   pressure;
//! * [`config`] — protocol tuning knobs (failure-detector timeout, batching,
//!   epoch cutting, group identity) behind one validated fluent builder.
//!
//! ## Quick start
//!
//! ```
//! use oar::cluster::{Cluster, ClusterConfig};
//! use oar::state_machine::{CounterCommand, CounterMachine};
//! use oar_simnet::SimTime;
//!
//! let config = ClusterConfig { num_servers: 3, num_clients: 1, ..Default::default() };
//! let mut cluster: Cluster<CounterMachine> = Cluster::build(
//!     &config,
//!     CounterMachine::default,
//!     |_client| vec![CounterCommand::Add(1), CounterCommand::Add(2)],
//! );
//! assert!(cluster.run_to_completion(SimTime::from_secs(5)));
//! assert_eq!(cluster.completed_requests().len(), 2);
//! cluster.check_replica_consistency().unwrap();
//! cluster.check_external_consistency().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod client;
pub mod cluster;
pub mod cnsv_order;
pub mod config;
pub mod consistency;
pub mod merkle;
pub mod message;
pub mod openloop;
pub mod parallel;
pub mod server;
pub mod shard;
pub mod sharded;
pub mod state_machine;
pub mod txn;

pub use adaptive::{AdaptiveConfig, BatchController, PipelineController, PipelineStats};
pub use client::{CompletedRequest, OarClient, QuorumTracker};
pub use cluster::{spawn_replacement, Cluster, ClusterConfig};
pub use cnsv_order::{cnsv_order_outcome, CnsvOutcome};
pub use config::{ClientConfig, ClientConfigBuilder, OarConfig, OarConfigBuilder, PipelineMode};
pub use consistency::{check_external_consistency, check_server_consistency};
pub use openloop::OpenLoopClient;

pub use merkle::{MerkleTree, SyncNode};
pub use message::{
    majority, CatchUpReply, CnsvValue, DeliveryKind, OarWire, OrderMsg, PhaseIIMsg, ReconfigCmd,
    Reply, Request, RequestId, TxnEnvelope, TxnId, Weight,
};
pub use parallel::{plan_waves, wave_apply, ParallelStateMachine};
pub use server::{DeliveryRecord, OarServer, Phase, ServerStats};
pub use shard::{KeyRange, MigrationRecord, Partitioner, ShardKey, ShardRouter};
pub use sharded::{ShardCompleted, ShardedClient, ShardedCluster, ShardedConfig};
pub use state_machine::{
    AppliedBatch, ConflictKeys, KeySet, Snapshottable, StateImage, StateMachine,
};
pub use txn::{MultiOp, TxnClient, TxnCluster, TxnCompleted, TxnPart};
