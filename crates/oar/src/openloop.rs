//! An open-loop load generator: offered-rate arrivals, not closed-loop.
//!
//! The closed-loop clients ([`crate::OarClient`] and friends) couple their
//! submission rate to the service rate: a request is only submitted when a
//! window slot frees up, so a slow server *hides* its slowness by slowing
//! the offered load down with it. Real throughput/latency measurements on
//! the real-clock backend need the opposite: arrivals at a fixed offered
//! rate, submitted whether or not earlier requests have completed, so queues
//! actually build when the system falls behind (and tail latency means
//! something).
//!
//! [`OpenLoopClient`] submits one request every `interarrival` on a fixed
//! absolute schedule, tagged [`TimerTag::Arrival`]. The schedule is
//! *drift-corrected*: each timer fires at least at its deadline, and the
//! next delay is computed against the intended schedule rather than the
//! actual fire time — if a callback runs late (real clock, busy thread), the
//! generator catches up with a burst, exactly like a real open-loop
//! harness. Replies are still tracked per the Fig. 5 weighted-quorum rule,
//! so each completion carries a genuine client-observed latency.
//!
//! The generator is written against [`Runtime`] only: on the simulator it
//! produces the same arrival schedule every run; on `oar-rtnet` the schedule
//! is wall-clock.

use std::collections::{BTreeMap, VecDeque};

use oar_channels::ReliableCaster;
use oar_simnet::{GroupId, Process, ProcessId, Runtime, SimDuration, SimTime, Timer, TimerTag};

use crate::client::{CompletedRequest, QuorumTracker};
use crate::config::ClientConfig;
use crate::message::{majority, OarWire, Reply, ReplyBatch, Request, RequestId};
use crate::state_machine::StateMachine;

#[derive(Debug)]
struct Outstanding<R> {
    index: usize,
    sent_at: SimTime,
    quorum: QuorumTracker<R>,
}

/// An open-loop client: submits the commands of its workload at a fixed
/// offered rate (one every `interarrival`), regardless of how many earlier
/// requests are still outstanding.
///
/// The workload bounds the run — once it is exhausted the generator goes
/// quiet, which gives fixed-duration experiments a natural "offered load ×
/// duration" sizing and lets done probes detect drain.
#[derive(Debug)]
pub struct OpenLoopClient<S: StateMachine> {
    id: ProcessId,
    servers: Vec<ProcessId>,
    group: GroupId,
    cast: ReliableCaster<Request<S::Command>>,
    workload: VecDeque<S::Command>,
    interarrival: SimDuration,
    /// The intended submission time of the next arrival (absolute), the
    /// anchor of drift correction.
    scheduled: SimTime,
    started: bool,
    start_delay: SimDuration,
    next_index: usize,
    outstanding: BTreeMap<RequestId, Outstanding<S::Response>>,
    completed: Vec<CompletedRequest<S::Response>>,
    majority: usize,
}

impl<S: StateMachine> OpenLoopClient<S> {
    /// Creates a generator that offers one command of `workload` every
    /// `interarrival` to `servers`. Only the `start_delay` and `group` of
    /// `config` apply — think time and pipelining are closed-loop notions.
    ///
    /// # Panics
    ///
    /// Panics on a zero `interarrival` (an infinite offered rate).
    pub fn new(
        id: ProcessId,
        servers: Vec<ProcessId>,
        workload: Vec<S::Command>,
        interarrival: SimDuration,
        config: ClientConfig,
    ) -> Self {
        assert!(
            !interarrival.is_zero(),
            "open-loop interarrival must be non-zero"
        );
        let majority = majority(servers.len());
        OpenLoopClient {
            id,
            group: config.group,
            cast: ReliableCaster::new(id, servers.clone()),
            servers,
            workload: workload.into(),
            interarrival,
            scheduled: SimTime::ZERO,
            started: false,
            start_delay: config.start_delay,
            next_index: 0,
            outstanding: BTreeMap::new(),
            completed: Vec::new(),
            majority,
        }
    }

    /// The client's process identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The offered interarrival gap.
    pub fn interarrival(&self) -> SimDuration {
        self.interarrival
    }

    /// The requests completed so far, in completion order.
    pub fn completed(&self) -> &[CompletedRequest<S::Response>] {
        &self.completed
    }

    /// Number of requests submitted so far.
    pub fn submitted(&self) -> usize {
        self.next_index
    }

    /// Number of submitted requests still awaiting their quorum.
    pub fn outstanding_len(&self) -> usize {
        self.outstanding.len()
    }

    /// Whether the whole workload has been submitted and answered.
    pub fn is_done(&self) -> bool {
        self.workload.is_empty() && self.outstanding.is_empty()
    }

    /// The server group this client talks to.
    pub fn servers(&self) -> &[ProcessId] {
        &self.servers
    }

    fn submit_one(&mut self, rt: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        let Some(command) = self.workload.pop_front() else {
            return;
        };
        let (id, mut wire, targets) = self.cast.multicast_shared(Request {
            // Re-stamped below once the multicast assigns the id.
            id: RequestId::new(self.id, 0),
            client: self.id,
            group: self.group,
            txn: None,
            reconfig: None,
            route_epoch: 0,
            command,
        });
        wire.payload.id = id;
        rt.send_all(&targets, OarWire::Request(wire));
        self.outstanding.insert(
            id,
            Outstanding {
                index: self.next_index,
                sent_at: rt.now(),
                quorum: QuorumTracker::new(),
            },
        );
        self.next_index += 1;
    }

    /// Submits every arrival whose scheduled time has passed (catch-up
    /// burst included), then re-arms the arrival timer against the intended
    /// schedule.
    fn drain_schedule(&mut self, rt: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        let now = rt.now();
        while self.scheduled <= now && !self.workload.is_empty() {
            self.submit_one(rt);
            self.scheduled += self.interarrival;
        }
        if !self.workload.is_empty() {
            let delay = SimDuration::from_micros(self.scheduled.as_micros() - now.as_micros());
            rt.set_timer(delay, TimerTag::Arrival);
        }
    }

    fn handle_reply_batch(
        &mut self,
        rt: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        batch: ReplyBatch<S::Response>,
    ) {
        for reply in batch.unpack() {
            self.handle_reply(rt, reply);
        }
    }

    fn handle_reply(
        &mut self,
        rt: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        reply: Reply<S::Response>,
    ) {
        let request = reply.request;
        let Some(outstanding) = self.outstanding.get_mut(&request) else {
            return; // stale reply for an already-completed request
        };
        let Some((epoch, reply)) = outstanding.quorum.absorb(reply, self.majority) else {
            return;
        };
        let outstanding = self.outstanding.remove(&request).expect("outstanding");
        self.completed.push(CompletedRequest {
            id: request,
            index: outstanding.index,
            response: reply.response,
            position: reply.position,
            epoch,
            adopted_weight: reply.weight.len(),
            replies_seen: outstanding.quorum.replies_seen(),
            sent_at: outstanding.sent_at,
            completed_at: rt.now(),
        });
    }
}

impl<S: StateMachine> Process<OarWire<S::Command, S::Response>> for OpenLoopClient<S> {
    fn on_start(&mut self, rt: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        self.started = true;
        self.scheduled = rt.now() + self.start_delay;
        if self.start_delay.is_zero() {
            self.drain_schedule(rt);
        } else {
            rt.set_timer(self.start_delay, TimerTag::Arrival);
        }
    }

    fn on_message(
        &mut self,
        rt: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        _from: ProcessId,
        msg: OarWire<S::Command, S::Response>,
    ) {
        if let OarWire::Replies(batch) = msg {
            self.handle_reply_batch(rt, batch);
        }
        // Open-loop generators ignore every other message kind.
    }

    fn on_timer(&mut self, rt: &mut dyn Runtime<OarWire<S::Command, S::Response>>, timer: Timer) {
        if timer.tag == TimerTag::Arrival {
            self.drain_schedule(rt);
        }
    }

    fn name(&self) -> String {
        format!("openloop-client-{}", self.id.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::config::OarConfig;
    use crate::server::OarServer;
    use crate::state_machine::{CounterCommand, CounterMachine};
    use oar_simnet::World;

    type Wire = OarWire<CounterCommand, i64>;

    fn build(
        n_servers: usize,
        n_requests: usize,
        interarrival: SimDuration,
    ) -> (World<Wire>, Vec<ProcessId>, ProcessId) {
        let config = ClusterConfig {
            num_servers: n_servers,
            num_clients: 0,
            ..ClusterConfig::default()
        };
        let mut world: World<Wire> = World::new(config.net.clone(), config.seed);
        let server_ids: Vec<ProcessId> = (0..n_servers).map(ProcessId::new).collect();
        for &id in &server_ids {
            let server = OarServer::new(
                id,
                server_ids.clone(),
                OarConfig::default(),
                CounterMachine::default(),
            );
            world.add_process(server);
        }
        let workload: Vec<CounterCommand> = (0..n_requests)
            .map(|i| CounterCommand::Add(i as i64 + 1))
            .collect();
        let client = OpenLoopClient::<CounterMachine>::new(
            ProcessId::new(n_servers),
            server_ids.clone(),
            workload,
            interarrival,
            ClientConfig::default(),
        );
        let client_id = world.add_process(client);
        (world, server_ids, client_id)
    }

    #[test]
    fn open_loop_submits_on_schedule_and_completes() {
        let (mut world, _servers, client_id) = build(3, 20, SimDuration::from_micros(200));
        world.run_until_quiescent(SimTime::from_secs(5));
        let client = world.process_ref::<OpenLoopClient<CounterMachine>>(client_id);
        assert!(client.is_done(), "open-loop workload must drain");
        assert_eq!(client.completed().len(), 20);
        assert_eq!(client.submitted(), 20);
        // Arrivals follow the absolute schedule: request i was sent at
        // ~i × interarrival, never earlier.
        let mut sent: Vec<SimTime> = client.completed().iter().map(|c| c.sent_at).collect();
        sent.sort();
        for (i, at) in sent.iter().enumerate() {
            assert!(
                at.as_micros() >= (i as u64) * 200,
                "arrival {i} ran ahead of the offered schedule: {at}"
            );
        }
    }

    #[test]
    fn open_loop_does_not_wait_for_replies() {
        // With an interarrival far below the network latency, many requests
        // must be in flight at once — the definition of open loop.
        let (mut world, _servers, client_id) = build(3, 30, SimDuration::from_micros(10));
        // Run just past the last scheduled arrival, long before most quorums.
        world.run_until(SimTime::from_micros(400));
        let client = world.process_ref::<OpenLoopClient<CounterMachine>>(client_id);
        assert_eq!(client.submitted(), 30, "arrivals must not gate on replies");
        assert!(
            client.outstanding_len() > 1,
            "an open-loop generator keeps several requests in flight"
        );
    }
}
