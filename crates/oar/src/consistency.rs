//! Runtime-agnostic safety checks over a set of OAR replicas.
//!
//! The propositions of the paper are statements about *server state*, not
//! about the machinery that drove the servers — so the checks live here as
//! free functions over `&[&OarServer]`, usable identically after a simulated
//! run ([`crate::Cluster`] delegates to them) and after a real-clock run on
//! the `oar-rtnet` backend, where there is no `World` to ask.
//!
//! Callers pass only *alive* servers: a replica still mid-catch-up
//! deliberately holds blank state until the transfer installs, so including
//! it would fail every comparison vacuously
//! ([`OarServer::is_recovering`] is the filter).

use std::collections::{HashMap, HashSet};

use crate::client::CompletedRequest;
use crate::message::RequestId;
use crate::server::OarServer;
use crate::state_machine::StateMachine;

/// Checks the server-side safety properties across the given (alive)
/// replicas:
///
/// * the committed sequences (stable + current optimistic deliveries) of
///   any two servers are prefix-compatible (Proposition 5, total order).
///   With log compaction a replica no longer retains its full settled
///   prefix, so the comparison is **compaction-aware**: the settled
///   prefixes are compared through the chained order-hash at the highest
///   common settled position, and the retained suffixes element-wise from
///   the higher of the two compaction bases;
/// * no request appears twice in a retained committed sequence
///   (Propositions 2–3, at-most-once);
/// * servers that delivered the same total number of requests (compacted
///   prefix included) have identical state-machine digests (determinism +
///   total order).
///
/// # Errors
///
/// Returns a human-readable description of the first violated property.
pub fn check_server_consistency<S: StateMachine>(servers: &[&OarServer<S>]) -> Result<(), String> {
    for server in servers {
        let p = server.id();
        let seq = server.committed_sequence();
        let mut seen = HashSet::new();
        for id in seq.iter() {
            if !seen.insert(*id) {
                return Err(format!("server {p} delivered {id} twice"));
            }
        }
    }
    for (i, srv_p) in servers.iter().enumerate() {
        for srv_q in &servers[i + 1..] {
            let (p, q) = (srv_p.id(), srv_q.id());
            // Settled prefixes: both replicas can compute the chain hash at
            // the highest position both have settled, unless one compacted
            // past the other's entire settled log (only possible while the
            // laggard is still far behind — nothing comparable remains then
            // and the digest check below still guards equal-length states).
            let m = srv_p.total_settled().min(srv_q.total_settled());
            if let (Some(hp), Some(hq)) = (srv_p.order_hash_at(m), srv_q.order_hash_at(m)) {
                if hp != hq {
                    return Err(format!(
                        "settled prefixes of {p} and {q} diverge at position {m}"
                    ));
                }
            }
            // Retained suffixes from the higher compaction base onward,
            // optimistic deliveries included: element-wise prefix
            // compatibility, exactly the pre-compaction check.
            let lo = srv_p.a_base().max(srv_q.a_base());
            let sp_all = srv_p.committed_sequence();
            let sq_all = srv_q.committed_sequence();
            let sp = sp_all.suffix_from(((lo - srv_p.a_base()) as usize).min(sp_all.len()));
            let sq = sq_all.suffix_from(((lo - srv_q.a_base()) as usize).min(sq_all.len()));
            if !(sp.is_prefix_of(&sq) || sq.is_prefix_of(&sp)) {
                return Err(format!(
                    "total order violated between {p} and {q}: {sp} vs {sq}"
                ));
            }
        }
    }
    // Digest equality for equal *total* delivery counts (compacted prefix +
    // retained log + current optimistic deliveries).
    let mut by_len: HashMap<u64, (oar_simnet::ProcessId, u64)> = HashMap::new();
    for server in servers {
        let s = server.id();
        let len = server.a_base() + server.committed_sequence().len() as u64;
        let digest = server.state_machine().digest();
        if let Some((other, other_digest)) = by_len.get(&len) {
            if *other_digest != digest {
                return Err(format!(
                    "servers {other} and {s} delivered {len} requests but diverge"
                ));
            }
        } else {
            by_len.insert(len, (s, digest));
        }
    }
    Ok(())
}

/// Checks external consistency (Proposition 7) over the given (alive)
/// servers and the per-client completed-request logs: every response adopted
/// by a client matches, at every server that delivered the request without
/// undoing it, the position at which that server processed the request.
///
/// # Errors
///
/// Returns a human-readable description of the first mismatched adoption.
pub fn check_external_consistency<S: StateMachine>(
    servers: &[&OarServer<S>],
    clients: &[&[CompletedRequest<S::Response>]],
) -> Result<(), String> {
    // Build, per server, the final position of every settled request.
    // Positions are global: the retained sequence starts after the
    // compacted prefix, at `a_base + 1`.
    let per_server: Vec<(oar_simnet::ProcessId, HashMap<RequestId, u64>)> = servers
        .iter()
        .map(|server| {
            let base = server.a_base();
            let positions = server
                .committed_sequence()
                .iter()
                .enumerate()
                .map(|(i, id)| (*id, base + (i + 1) as u64))
                .collect();
            (server.id(), positions)
        })
        .collect();
    for (c_idx, completed) in clients.iter().enumerate() {
        for done in *completed {
            for (s, positions) in &per_server {
                if let Some(&pos) = positions.get(&done.id) {
                    if pos != done.position {
                        return Err(format!(
                            "client {c_idx} adopted position {} for {} but server {s} settled it at {pos}",
                            done.position, done.id
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}
