//! Key-space sharding: the router that assigns every command to the OAR
//! group owning its key.
//!
//! A sharded deployment ([`crate::sharded`]) runs several *independent* OAR
//! groups over one network, each with its own sequencer, consensus instance
//! and failure detector. Commands touching disjoint keys need not share one
//! total order (the parallel-SMR observation), so the only global component
//! is this router: a **pure, deterministic** function from a command's shard
//! key to the [`GroupId`] owning it. Everything ordered happens inside a
//! group; the router itself holds no protocol state and is replicated
//! verbatim at every client.
//!
//! Two partitioning strategies are provided:
//!
//! * [`ShardRouter::hash`] — FNV-1a over the key bytes, modulo the group
//!   count. Balanced for arbitrary (even adversarially skewed) key sets
//!   without any knowledge of the distribution.
//! * [`ShardRouter::range`] — ordered boundaries splitting the key space
//!   into contiguous intervals (group `i` owns keys in
//!   `[boundary[i-1], boundary[i])`). Preserves locality for range-friendly
//!   workloads; [`ShardRouter::range_from_keys`] derives balanced
//!   boundaries from a sample of the actual key population.

use oar_simnet::GroupId;

/// Commands that can be routed to a shard: they expose the key whose owning
/// group must order them.
///
/// Commands of the same key are always routed to the same group, so per-key
/// ordering is exactly the owning group's total order. Commands of different
/// keys may land in different groups, whose orders are **not** related — see
/// the "Sharded deployment" section of the crate README.
pub trait ShardKey {
    /// The key this command is about.
    fn shard_key(&self) -> &str;
}

/// A half-open key interval `[start, end)`; `end = None` means unbounded
/// above. The unit of online shard migration: a [`MigrationRecord`] moves
/// exactly one `KeyRange` between groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyRange {
    /// Inclusive lower bound.
    pub start: String,
    /// Exclusive upper bound; `None` = up to the end of the key space.
    pub end: Option<String>,
}

impl KeyRange {
    /// The range `[start, end)`.
    pub fn new(start: impl Into<String>, end: impl Into<String>) -> Self {
        let (start, end) = (start.into(), end.into());
        assert!(start < end, "key range must be non-empty");
        KeyRange {
            start,
            end: Some(end),
        }
    }

    /// The unbounded range `[start, +∞)`.
    pub fn from(start: impl Into<String>) -> Self {
        KeyRange {
            start: start.into(),
            end: None,
        }
    }

    /// Whether `key` falls inside this range.
    pub fn contains(&self, key: &str) -> bool {
        key >= self.start.as_str()
            && match &self.end {
                Some(end) => key < end.as_str(),
                None => true,
            }
    }

    /// Whether the two half-open ranges share at least one key.
    pub fn intersects(&self, other: &KeyRange) -> bool {
        let other_starts_below_our_end = match &self.end {
            Some(end) => other.start < *end,
            None => true,
        };
        let we_start_below_other_end = match &other.end {
            Some(end) => self.start < *end,
            None => true,
        };
        other_starts_below_our_end && we_start_below_other_end
    }

    /// Whether every key of `other` falls inside this range.
    pub fn contains_range(&self, other: &KeyRange) -> bool {
        self.start <= other.start
            && match (&self.end, &other.end) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(our_end), Some(other_end)) => other_end <= our_end,
            }
    }
}

/// One settled shard migration: from `route_epoch` on, the keys of `range`
/// are owned by `to_group` instead of `from_group`. Records are created by
/// [`ShardRouter::migrate`] on the admin side, carried inside the
/// `Reconfig::Migrate` fence command, and replayed onto stale routers (via
/// [`ShardRouter::apply_record`]) when a server door-drops a request with an
/// outdated routing epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationRecord {
    /// The migrated key interval.
    pub range: KeyRange,
    /// The donor group (owner before `route_epoch`).
    pub from_group: GroupId,
    /// The recipient group (owner from `route_epoch` on).
    pub to_group: GroupId,
    /// The routing epoch this migration establishes (strictly increasing).
    pub route_epoch: u64,
}

/// The partitioning strategy of a [`ShardRouter`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Partitioner {
    /// FNV-1a hash of the key bytes, modulo the number of groups.
    Hash,
    /// Contiguous key ranges: group `i` owns the keys `k` with
    /// `boundaries[i-1] <= k < boundaries[i]` (first group: everything below
    /// `boundaries[0]`; last group: everything at or above the last
    /// boundary). Boundaries are strictly increasing.
    Range {
        /// The `num_groups - 1` split points, strictly increasing.
        boundaries: Vec<String>,
    },
}

/// FNV-1a, the same cheap byte hash used elsewhere in the repo for digests.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The key → group router of a sharded deployment.
///
/// Total (every key maps to a group), deterministic (a pure function of the
/// key and the router's own configuration) and cheap (O(1) for hash, O(log
/// groups) for range). Clients clone the router; servers never see it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    num_groups: usize,
    partitioner: Partitioner,
    /// Routing epoch: bumped by every settled migration. Requests are
    /// stamped with the sender's epoch; servers door-drop-and-redirect
    /// requests stamped with an older epoch than their own.
    route_epoch: u64,
    /// Settled migrations, oldest first. The newest override covering a key
    /// wins; keys covered by none fall through to the base partitioner.
    overrides: Vec<MigrationRecord>,
}

impl ShardRouter {
    /// A hash router over `num_groups` groups (clamped to at least 1).
    pub fn hash(num_groups: usize) -> Self {
        ShardRouter {
            num_groups: num_groups.max(1),
            partitioner: Partitioner::Hash,
            route_epoch: 0,
            overrides: Vec::new(),
        }
    }

    /// A range router with the given split points; `boundaries.len() + 1`
    /// groups.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries are not strictly increasing.
    pub fn range(boundaries: Vec<String>) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "range boundaries must be strictly increasing"
        );
        ShardRouter {
            num_groups: boundaries.len() + 1,
            partitioner: Partitioner::Range { boundaries },
            route_epoch: 0,
            overrides: Vec::new(),
        }
    }

    /// A range router over *up to* `num_groups` groups whose boundaries are
    /// the even quantiles of `sample` — the distinct keys of a workload
    /// sample. The resulting router balances the *sampled* population
    /// within one key of ideal; keys outside the sample land in the
    /// interval covering them.
    ///
    /// When the sample has fewer distinct keys than `num_groups` (or
    /// quantile boundaries collide), the router covers **fewer** groups
    /// than requested — check [`ShardRouter::num_groups`] before pairing it
    /// with a deployment config, which asserts the counts agree.
    pub fn range_from_keys<I, K>(sample: I, num_groups: usize) -> Self
    where
        I: IntoIterator<Item = K>,
        K: Into<String>,
    {
        let num_groups = num_groups.max(1);
        let mut keys: Vec<String> = sample.into_iter().map(Into::into).collect();
        keys.sort();
        keys.dedup();
        let mut boundaries = Vec::with_capacity(num_groups.saturating_sub(1));
        for g in 1..num_groups {
            // First key of the g-th of `num_groups` even slices.
            let idx = g * keys.len() / num_groups;
            if idx < keys.len() {
                let b = keys[idx].clone();
                if boundaries.last() != Some(&b) {
                    boundaries.push(b);
                }
            }
        }
        ShardRouter::range(boundaries)
    }

    /// The number of groups this router spreads keys over.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// The partitioning strategy.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// The current routing epoch (0 before any migration).
    pub fn route_epoch(&self) -> u64 {
        self.route_epoch
    }

    /// The settled migrations known to this router, oldest first.
    pub fn migrations(&self) -> &[MigrationRecord] {
        &self.overrides
    }

    /// Moves `range` to `to_group`, bumping the routing epoch, and returns
    /// the record describing the migration (to be carried by the
    /// `Reconfig::Migrate` fence command). The donor is whichever group
    /// owned `range.start` before the bump; online migration moves ranges
    /// that are wholly owned by one group, which
    /// [`ShardRouter::owns_whole_range`] checks.
    ///
    /// # Panics
    ///
    /// Panics if `to_group` is out of range or already owns `range.start`.
    pub fn migrate(&mut self, range: KeyRange, to_group: GroupId) -> MigrationRecord {
        assert!(
            to_group.index() < self.num_groups,
            "unknown recipient group"
        );
        let from_group = self.route_key(&range.start);
        assert_ne!(from_group, to_group, "range already owned by recipient");
        self.route_epoch += 1;
        let record = MigrationRecord {
            range,
            from_group,
            to_group,
            route_epoch: self.route_epoch,
        };
        self.overrides.push(record.clone());
        record
    }

    /// Whether every key of `range` currently routes to the same group.
    ///
    /// Exact for the range partitioner and for ranges decided by a settled
    /// migration; conservative (`false`) for a multi-group hash partitioner —
    /// whose interior keys hash independently of the bounds — and for ranges
    /// a migration override covers only partially.
    pub fn owns_whole_range(&self, range: &KeyRange) -> bool {
        // The newest override intersecting the range decides: if it contains
        // the whole range, every key's newest covering record is that
        // override (nothing newer intersects), so the range has one owner. A
        // partial intersection splits ownership at the override's bound —
        // conservatively false even if both sides happen to agree.
        for record in self.overrides.iter().rev() {
            if record.range.intersects(range) {
                return record.range.contains_range(range);
            }
        }
        match &self.partitioner {
            // Interior keys hash independently of the bounds, so no
            // multi-key range has a single owner across several groups.
            Partitioner::Hash => self.num_groups == 1,
            Partitioner::Range { boundaries } => {
                // A boundary strictly inside the range splits it; `b ==
                // start` does not (the whole range sits at or above `b`),
                // and `b >= end` does not (the end is exclusive).
                boundaries.iter().all(|b| {
                    *b <= range.start
                        || match &range.end {
                            Some(end) => b >= end,
                            None => false,
                        }
                })
            }
        }
    }

    /// Adopts a migration record learned from a server redirect (the server
    /// settled the migration fence; this router is stale). Returns whether
    /// the record was news — records at or below the current epoch are
    /// duplicates and ignored.
    pub fn apply_record(&mut self, record: &MigrationRecord) -> bool {
        if record.route_epoch <= self.route_epoch {
            return false;
        }
        self.route_epoch = record.route_epoch;
        self.overrides.push(record.clone());
        true
    }

    /// The group owning `key`.
    pub fn route_key(&self, key: &str) -> GroupId {
        // Newest settled migration covering the key wins; otherwise the base
        // partitioner decides.
        for record in self.overrides.iter().rev() {
            if record.range.contains(key) {
                return record.to_group;
            }
        }
        match &self.partitioner {
            Partitioner::Hash => GroupId::new((fnv1a(key) % self.num_groups as u64) as usize),
            Partitioner::Range { boundaries } => {
                GroupId::new(boundaries.partition_point(|b| b.as_str() <= key))
            }
        }
    }

    /// The group owning `command`'s key.
    pub fn route<C: ShardKey>(&self, command: &C) -> GroupId {
        self.route_key(command.shard_key())
    }

    /// The set of groups owning at least one of `keys` — the *participant
    /// set* of a transaction touching those keys ([`crate::txn`]).
    ///
    /// Sorted and deduplicated; empty iff `keys` is empty. Because the
    /// router is a pure function of each key, the participant set is itself
    /// total and deterministic — the precondition the transaction layer's
    /// commit rule (quorum in *every* participating group) rests on. The
    /// router proptests check this for arbitrary key sets.
    pub fn groups_for_keys<I, K>(&self, keys: I) -> Vec<GroupId>
    where
        I: IntoIterator<Item = K>,
        K: AsRef<str>,
    {
        let mut groups: Vec<GroupId> = keys
            .into_iter()
            .map(|k| self.route_key(k.as_ref()))
            .collect();
        groups.sort_by_key(|g| g.index());
        groups.dedup();
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_router_is_total_and_deterministic() {
        let router = ShardRouter::hash(4);
        assert_eq!(router.num_groups(), 4);
        for key in ["", "a", "k0", "some-long-key", "☃"] {
            let g = router.route_key(key);
            assert!(g.index() < 4, "{key} routed out of range");
            assert_eq!(g, router.route_key(key), "routing must be a function");
            assert_eq!(g, router.clone().route_key(key));
        }
    }

    #[test]
    fn hash_router_clamps_to_one_group() {
        let router = ShardRouter::hash(0);
        assert_eq!(router.num_groups(), 1);
        assert_eq!(router.route_key("anything"), GroupId::new(0));
    }

    #[test]
    fn range_router_routes_by_interval() {
        let router = ShardRouter::range(vec!["h".into(), "p".into()]);
        assert_eq!(router.num_groups(), 3);
        assert_eq!(router.route_key("apple"), GroupId::new(0));
        assert_eq!(
            router.route_key("h"),
            GroupId::new(1),
            "boundary owns upward"
        );
        assert_eq!(router.route_key("melon"), GroupId::new(1));
        assert_eq!(router.route_key("p"), GroupId::new(2));
        assert_eq!(router.route_key("zebra"), GroupId::new(2));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn range_router_rejects_unsorted_boundaries() {
        let _ = ShardRouter::range(vec!["p".into(), "h".into()]);
    }

    #[test]
    fn range_from_keys_balances_the_sample() {
        let keys: Vec<String> = (0..100).map(|i| format!("key{i:03}")).collect();
        let router = ShardRouter::range_from_keys(keys.clone(), 4);
        assert_eq!(router.num_groups(), 4);
        let mut counts = [0usize; 4];
        for k in &keys {
            counts[router.route_key(k).index()] += 1;
        }
        assert_eq!(counts, [25, 25, 25, 25]);
    }

    #[test]
    fn groups_for_keys_is_sorted_and_deduplicated() {
        let router = ShardRouter::range(vec!["h".into(), "p".into()]);
        // Keys listed in reverse ownership order, with duplicates.
        let groups = router.groups_for_keys(["zebra", "apple", "melon", "ant"]);
        assert_eq!(
            groups,
            vec![GroupId::new(0), GroupId::new(1), GroupId::new(2)]
        );
        assert!(router.groups_for_keys(Vec::<String>::new()).is_empty());
        assert_eq!(router.groups_for_keys(["a", "b"]), vec![GroupId::new(0)]);
    }

    #[test]
    fn migrate_moves_exactly_the_range_and_bumps_epoch() {
        let mut router = ShardRouter::range(vec!["h".into(), "p".into()]);
        assert_eq!(router.route_epoch(), 0);
        let record = router.migrate(KeyRange::new("h", "k"), GroupId::new(2));
        assert_eq!(record.route_epoch, 1);
        assert_eq!(record.from_group, GroupId::new(1));
        assert_eq!(record.to_group, GroupId::new(2));
        assert_eq!(router.route_epoch(), 1);
        // Exactly [h, k) changed owner.
        assert_eq!(router.route_key("h"), GroupId::new(2));
        assert_eq!(router.route_key("i"), GroupId::new(2));
        assert_eq!(router.route_key("k"), GroupId::new(1), "end is exclusive");
        assert_eq!(router.route_key("apple"), GroupId::new(0));
        assert_eq!(router.route_key("zebra"), GroupId::new(2));
    }

    #[test]
    fn apply_record_is_idempotent_and_ordered() {
        let mut admin = ShardRouter::range(vec!["m".into()]);
        let record = admin.migrate(KeyRange::new("a", "c"), GroupId::new(1));
        let mut stale = ShardRouter::range(vec!["m".into()]);
        assert!(stale.apply_record(&record));
        assert!(!stale.apply_record(&record), "duplicate redirect ignored");
        assert_eq!(stale.route_epoch(), 1);
        assert_eq!(stale.route_key("b"), GroupId::new(1));
        assert_eq!(stale, admin);
    }

    #[test]
    fn owns_whole_range_checks_interval_containment() {
        let router = ShardRouter::range(vec!["h".into(), "p".into()]);
        assert!(router.owns_whole_range(&KeyRange::new("h", "k")));
        assert!(
            !router.owns_whole_range(&KeyRange::new("g", "k")),
            "crosses h"
        );
        assert!(
            !router.owns_whole_range(&KeyRange::from("a")),
            "unbounded ranges crossing a boundary are split"
        );
        assert!(
            router.owns_whole_range(&KeyRange::from("x")),
            "the last interval owns its unbounded tail"
        );
    }

    #[test]
    fn owns_whole_range_sees_overrides_strictly_inside_the_range() {
        // The REVIEW scenario: after migrating [b, c) away, a range
        // enclosing it has two owners even though both its bounds still
        // route to the original group.
        let mut router = ShardRouter::range(vec!["m".into()]);
        assert!(router.owns_whole_range(&KeyRange::new("a", "d")));
        router.migrate(KeyRange::new("b", "c"), GroupId::new(1));
        assert_eq!(router.route_key("a"), router.route_key("c")); // bounds agree...
        assert!(
            !router.owns_whole_range(&KeyRange::new("a", "d")),
            "...but [b, c) inside belongs to group 1"
        );
        // The migrated range itself, and sub-ranges of it, have one owner.
        assert!(router.owns_whole_range(&KeyRange::new("b", "c")));
        assert!(router.owns_whole_range(&KeyRange::new("ba", "bb")));
        // Partial overlap with the override is conservatively split.
        assert!(!router.owns_whole_range(&KeyRange::new("bz", "e")));
    }

    #[test]
    fn owns_whole_range_is_conservative_under_hash() {
        // Interior keys hash independently of the bounds: only a one-group
        // deployment owns a whole range.
        assert!(!ShardRouter::hash(4).owns_whole_range(&KeyRange::new("a", "b")));
        assert!(ShardRouter::hash(1).owns_whole_range(&KeyRange::new("a", "b")));
        // An override containing the range still decides exactly.
        let mut router = ShardRouter::hash(4);
        router.migrate(KeyRange::new("a", "c"), GroupId::new(2));
        assert!(router.owns_whole_range(&KeyRange::new("a", "b")));
    }

    #[test]
    fn key_range_intersection_and_containment() {
        let mid = KeyRange::new("b", "d");
        assert!(mid.intersects(&KeyRange::new("c", "e")));
        assert!(!mid.intersects(&KeyRange::new("d", "e")), "ends exclusive");
        assert!(!mid.intersects(&KeyRange::from("d")));
        assert!(mid.intersects(&KeyRange::from("a")));
        assert!(KeyRange::from("a").contains_range(&mid));
        assert!(mid.contains_range(&KeyRange::new("b", "d")));
        assert!(mid.contains_range(&KeyRange::new("c", "d")));
        assert!(!mid.contains_range(&KeyRange::new("c", "e")));
        assert!(!mid.contains_range(&KeyRange::from("c")));
    }

    #[test]
    fn range_from_tiny_sample_still_total() {
        // Fewer distinct keys than groups: some groups own empty ranges but
        // every key still routes somewhere in range.
        let router = ShardRouter::range_from_keys(["b".to_string()], 4);
        assert!(router.num_groups() >= 1);
        for key in ["a", "b", "c"] {
            assert!(router.route_key(key).index() < router.num_groups());
        }
    }
}

#[cfg(test)]
mod proptests {
    //! The router contract under randomised (and deliberately skewed) key
    //! populations: total, deterministic, and balanced within 2× of the
    //! ideal per-group share of distinct keys.

    use super::*;
    use proptest::prelude::*;

    /// Skewed keys: a heavy shared prefix with a short discriminating tail
    /// (listed twice to skew the draw), plus occasional long outliers — the
    /// adversarial shape for naive "first byte" routers.
    fn skewed_key() -> impl Strategy<Value = String> {
        prop_oneof![
            "user:[a-c]{1,3}[0-9]{1,4}",
            "user:[a-c]{1,3}[0-9]{1,4}",
            "k[0-9]{1,3}",
            "[a-z]{8,24}",
        ]
    }

    fn distinct(mut keys: Vec<String>) -> Vec<String> {
        keys.sort();
        keys.dedup();
        keys
    }

    /// Max distinct keys owned by one group must stay within 2× of the
    /// ideal share (checked only with enough keys per group for the bound
    /// to be statistically meaningful).
    fn assert_balanced(router: &ShardRouter, keys: &[String]) {
        let groups = router.num_groups();
        if keys.len() < 64 * groups {
            return;
        }
        let mut counts = vec![0usize; groups];
        for k in keys {
            counts[router.route_key(k).index()] += 1;
        }
        let ideal = keys.len() as f64 / groups as f64;
        let max = *counts.iter().max().expect("at least one group") as f64;
        assert!(
            max <= 2.0 * ideal,
            "imbalanced: max load {max} vs ideal {ideal} over {groups} groups ({counts:?})"
        );
    }

    proptest! {
        /// Hash router: total, deterministic, balanced on skewed keys.
        #[test]
        fn hash_router_contract(
            keys in proptest::collection::vec(skewed_key(), 1..600),
            groups in 1usize..8,
        ) {
            let router = ShardRouter::hash(groups);
            for k in &keys {
                let g = router.route_key(k);
                prop_assert!(g.index() < groups);
                prop_assert_eq!(g, router.route_key(k));
            }
            assert_balanced(&router, &distinct(keys));
        }

        /// Range router with sample-derived boundaries: total, deterministic,
        /// balanced on the population the boundaries were derived from.
        #[test]
        fn range_router_contract(
            keys in proptest::collection::vec(skewed_key(), 1..600),
            groups in 1usize..8,
        ) {
            let keys = distinct(keys);
            let router = ShardRouter::range_from_keys(keys.clone(), groups);
            for k in &keys {
                let g = router.route_key(k);
                prop_assert!(g.index() < router.num_groups());
                prop_assert_eq!(g, router.route_key(k));
            }
            assert_balanced(&router, &keys);
        }

        /// Online-migration contract: across a migration epoch bump the
        /// router stays total and deterministic, and **exactly** the
        /// migrated range changes owner — every key outside it routes as
        /// before, every key inside routes to the recipient.
        #[test]
        fn migration_epoch_bump_contract(
            keys in proptest::collection::vec(skewed_key(), 1..300),
            sample in proptest::collection::vec(skewed_key(), 8..64),
            groups in 2usize..6,
            lo in "[a-z][0-9a-z]{0,3}",
            span in "[0-9a-z]{1,3}",
        ) {
            let before = ShardRouter::range_from_keys(sample, groups);
            prop_assume!(before.num_groups() >= 2);
            let range = KeyRange::new(lo.clone(), format!("{lo}{span}"));
            let donor = before.route_key(&range.start);
            let recipient = GroupId::new((donor.index() + 1) % before.num_groups());
            let mut after = before.clone();
            let record = after.migrate(range.clone(), recipient);
            prop_assert_eq!(record.route_epoch, before.route_epoch() + 1);
            prop_assert_eq!(after.route_epoch(), record.route_epoch);
            for k in &keys {
                let old = before.route_key(k);
                let new = after.route_key(k);
                // Total and deterministic on both sides of the bump.
                prop_assert!(new.index() < after.num_groups());
                prop_assert_eq!(new, after.route_key(k));
                prop_assert_eq!(new, after.clone().route_key(k));
                if range.contains(k) {
                    prop_assert_eq!(new, recipient, "migrated key {} must move", k);
                } else {
                    prop_assert_eq!(new, old, "unmigrated key {} must not move", k);
                }
            }
            // A stale replica of the pre-migration router converges by
            // applying the record carried in the redirect.
            let mut stale = before.clone();
            prop_assert!(stale.apply_record(&record));
            prop_assert_eq!(stale, after);
        }

        /// The transaction layer's routing precondition: for an arbitrary
        /// key set (a transaction's keys), the participant group set is
        /// total (covers exactly the groups the per-key routes name, within
        /// range), deterministic (the same key set always yields the same
        /// set), and canonical (sorted, no duplicates) — under both
        /// partitioners.
        #[test]
        fn txn_group_set_contract(
            keys in proptest::collection::vec(skewed_key(), 0..80),
            groups in 1usize..8,
            hash in any::<bool>(),
        ) {
            let router = if hash {
                ShardRouter::hash(groups)
            } else {
                ShardRouter::range_from_keys(keys.clone(), groups)
            };
            let set = router.groups_for_keys(keys.iter());
            // Deterministic: recomputing (even on a clone, even with the
            // keys permuted) yields the identical participant set.
            prop_assert_eq!(&set, &router.groups_for_keys(keys.iter()));
            let mut reversed = keys.clone();
            reversed.reverse();
            prop_assert_eq!(&set, &router.clone().groups_for_keys(reversed.iter()));
            // Total: exactly the per-key routes, each within range.
            let mut expected: Vec<GroupId> = keys.iter().map(|k| router.route_key(k)).collect();
            expected.sort_by_key(|g| g.index());
            expected.dedup();
            prop_assert_eq!(&set, &expected);
            prop_assert!(set.iter().all(|g| g.index() < router.num_groups()));
            // Canonical: sorted, deduplicated, empty iff no keys.
            prop_assert!(set.windows(2).all(|w| w[0].index() < w[1].index()));
            prop_assert_eq!(set.is_empty(), keys.is_empty());
        }
    }
}
