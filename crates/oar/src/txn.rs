//! Client-side multi-key transactions over a sharded OAR deployment.
//!
//! A sharded deployment ([`crate::sharded`]) deliberately orders nothing
//! across groups; multi-key operations spanning shards are the first workload
//! that boundary excludes. This module adds them back **without any
//! cross-group agreement on the critical path**, in the spirit of
//! Sutra–Shapiro's asynchronous decentralised commitment: the commit decision
//! is a pure client-side observation over per-group quorums, never a wire
//! protocol of its own.
//!
//! # The commit protocol
//!
//! A transaction is a non-empty list of commands. [`TxnClient`] routes the
//! transaction's key set with the [`ShardRouter`]:
//!
//! * **Single-group fast path.** If every key is owned by one group, the ops
//!   collapse into one atomic command ([`MultiOp::multi`]) submitted exactly
//!   like a plain sharded request — same single `R-multicast` to the owning
//!   group, no envelope, no extra wire anywhere. The `txn-smoke` harness
//!   gate counts this: a single-group transactional workload produces wire
//!   traffic *identical* to the equivalent
//!   [`ShardedClient`](crate::sharded::ShardedClient) workload.
//! * **Multi-group commit.** Otherwise the client sends one `TxnPrepare`
//!   request per participating group — the group's partition of the ops as
//!   one atomic command, stamped with a [`TxnEnvelope`] naming the
//!   transaction and all participants. Each group orders its prepare through
//!   its **own** OAR total order and applies it optimistically like any other
//!   request (one command, one [`StateMachine::apply`], so the partition is
//!   atomic within the group's delivery by construction). The client runs the
//!   Fig. 5 weighted-quorum rule *per participating group* and declares the
//!   transaction **committed** once the rule holds in every one of them.
//!
//! # Why this is atomic, and what it is not
//!
//! There is no abort path: once the prepares are multicast, the reliable
//! multicast (Agreement) plus each group's total order guarantee every
//! participating group eventually orders and applies its partition — the
//! transaction is *deterministically committed* the moment it is submitted;
//! the client-side quorum observation only decides **when it is safe to
//! report** the commit. A group whose sequencer crashes mid-transaction
//! answers through the conservative phase instead (replies with full weight
//! `Π`), so the confirmation survives any single group's fail-over — the
//! quorum rule does not care which phase produced the replies.
//!
//! What multi-group transactions do **not** get is cross-group
//! serialisability: two groups may interleave two concurrent transactions in
//! different relative orders (there is nothing to order them *by*). What
//! holds is per-group total order, all-or-nothing application, and
//! read-your-committed-writes: a transaction submitted after a commit was
//! reported observes that commit's writes in every group, because each
//! group's sequencer had already delivered them (the optimistic weight
//! `{p, s}` contains the sequencer; the conservative weight is all of `Π`).

use std::collections::{BTreeMap, HashMap, VecDeque};

use oar_channels::CastWire;
use oar_simnet::{
    GroupId, Process, ProcessId, Runtime, Samples, SimDuration, SimTime, Timer, TimerTag, World,
};

use crate::adaptive::{PipelineController, PipelineStats};
use crate::client::QuorumTracker;
use crate::config::{ClientConfig, PipelineMode};
use crate::message::{
    majority, OarWire, Reply, ReplyBatch, Request, RequestId, TxnEnvelope, TxnId,
};
use crate::server::{OarServer, ServerStats};
use crate::shard::{MigrationRecord, ShardKey, ShardRouter};
use crate::sharded::{build_group_servers, check_groups_consistency, ShardedConfig};
use crate::state_machine::StateMachine;

/// Timer tag used for the think-time delay between two transactions.
const NEXT_TXN: TimerTag = TimerTag::NextRequest;

/// Commands that can carry a whole per-group transaction partition: several
/// ops combined into **one** command, applied atomically by one
/// [`StateMachine::apply`].
///
/// The transaction layer relies on two properties implementors must uphold:
///
/// * applying `multi(ops)` is equivalent to applying each op of `ops` in
///   order, with no observable intermediate state (the state machine applies
///   one command at a time, so this holds for free when `multi` simply
///   wraps the list);
/// * `multi(ops).shard_key()` routes to the same group as every op in `ops`
///   (the transaction layer only ever combines ops it has already routed to
///   one group, so returning the first op's key suffices).
///
/// `multi` is never called with an empty list; `multi(vec![op])` may return
/// `op` unchanged.
pub trait MultiOp: ShardKey + Sized {
    /// Combines `ops` (non-empty, all owned by one group) into one command
    /// that applies them in order, atomically.
    fn multi(ops: Vec<Self>) -> Self;
}

/// One per-group leg of a committed transaction: which group served it, the
/// prepare request's bookkeeping, and the group's response to the partition.
#[derive(Clone, Debug, PartialEq)]
pub struct TxnPart<R> {
    /// The participating group this part was ordered by.
    pub group: GroupId,
    /// The per-group prepare request (one [`RequestId`] per participant).
    pub request: RequestId,
    /// Epoch of the adopted reply in the owning group.
    pub epoch: u64,
    /// Position of the prepare in the owning group's delivery order.
    pub position: u64,
    /// Size of the adopted reply's weight (2 = optimistic `{p, s}`,
    /// `|Π|` = conservative — the fail-over case).
    pub adopted_weight: usize,
    /// Replies received for this part before its quorum closed.
    pub replies_seen: usize,
    /// The group's response to its partition of the ops.
    pub response: R,
}

/// A transaction completed by a [`TxnClient`]: the commit was observed, i.e.
/// the Fig. 5 quorum rule held in every participating group.
#[derive(Clone, Debug, PartialEq)]
pub struct TxnCompleted<R> {
    /// The transaction identifier.
    pub id: TxnId,
    /// Index of the transaction in the client's workload.
    pub index: usize,
    /// One part per participating group, sorted by group.
    pub parts: Vec<TxnPart<R>>,
    /// Time at which the prepares were multicast.
    pub sent_at: SimTime,
    /// Time at which the last participating group's quorum closed.
    pub completed_at: SimTime,
}

impl<R> TxnCompleted<R> {
    /// Client-observed commit latency of the transaction.
    pub fn latency(&self) -> SimDuration {
        self.completed_at.duration_since(self.sent_at)
    }

    /// Whether the transaction spanned more than one group (i.e. paid the
    /// multi-group commit instead of the fast path).
    pub fn is_multi_group(&self) -> bool {
        self.parts.len() > 1
    }
}

/// One not-yet-adopted per-group leg of an outstanding transaction.
#[derive(Debug)]
struct PendingPart<C, R> {
    group: GroupId,
    quorum: QuorumTracker<R>,
    /// The partition command, retained so a [`OarWire::Redirect`] can
    /// re-send the prepare (to the group that now owns its shard key).
    command: C,
    /// The routing-boundary epoch the prepare was last sent under; redirects
    /// naming an already re-sent prepare are de-duplicated against it.
    route_epoch: u64,
}

#[derive(Debug)]
struct OutstandingTxn<C, R> {
    index: usize,
    sent_at: SimTime,
    /// The envelope the prepares were multicast with (`None` on the
    /// single-group fast path). A redirected prepare is re-sent under the
    /// same envelope: the participant set names the groups the *other*
    /// prepares already carried, and must stay consistent across re-sends.
    envelope: Option<TxnEnvelope>,
    /// Parts whose group quorum is still open, keyed by prepare request.
    pending: BTreeMap<RequestId, PendingPart<C, R>>,
    /// Parts already adopted (their group's quorum closed).
    adopted: Vec<TxnPart<R>>,
}

/// A client submitting multi-key transactions to a sharded OAR deployment.
///
/// Each transaction's ops are partitioned by the router; single-group
/// transactions take the wire-identical fast path, multi-group transactions
/// run the per-group prepare commit described in the [module docs](self).
/// The client is closed-loop with an optional pipeline window, like the
/// other client flavours.
#[derive(Debug)]
pub struct TxnClient<S: StateMachine> {
    id: ProcessId,
    /// Server ids per group, indexed by [`GroupId`].
    groups: Vec<Vec<ProcessId>>,
    router: ShardRouter,
    workload: VecDeque<Vec<S::Command>>,
    /// Prepare requests get ids `(self.id, seq)` from one counter across all
    /// groups and transactions, so ids stay unique however ops are routed.
    next_seq: u64,
    /// Transactions get ids `(self.id, txn_seq)` from their own counter.
    next_txn: u64,
    next_index: usize,
    think_time: SimDuration,
    start_delay: SimDuration,
    pipeline: usize,
    /// Present when the transaction window adapts to the delivery-batch
    /// hints the participating groups report.
    adaptive: Option<PipelineController>,
    outstanding: BTreeMap<TxnId, OutstandingTxn<S::Command, S::Response>>,
    /// Owning transaction of every in-flight prepare request.
    request_txn: HashMap<RequestId, TxnId>,
    completed: Vec<TxnCompleted<S::Response>>,
}

impl<S: StateMachine> TxnClient<S>
where
    S::Command: MultiOp,
{
    /// Creates a client submitting the transactions of `workload` (each a
    /// non-empty op list) to the deployment described by `groups` and
    /// `router`.
    ///
    /// # Panics
    ///
    /// Panics if the router's group count differs from `groups.len()`, or —
    /// when the transaction is submitted — if a workload entry is empty.
    pub fn new(
        id: ProcessId,
        groups: Vec<Vec<ProcessId>>,
        router: ShardRouter,
        workload: Vec<Vec<S::Command>>,
        config: ClientConfig,
    ) -> Self {
        assert_eq!(
            router.num_groups(),
            groups.len(),
            "router and deployment disagree on the group count"
        );
        let adaptive = match config.pipeline {
            PipelineMode::Fixed(_) => None,
            PipelineMode::Adaptive(cap) => Some(PipelineController::new(cap)),
        };
        TxnClient {
            id,
            groups,
            router,
            workload: workload.into(),
            next_seq: 0,
            next_txn: 0,
            next_index: 0,
            think_time: config.think_time,
            start_delay: config.start_delay,
            pipeline: config.initial_window().max(1),
            adaptive,
            outstanding: BTreeMap::new(),
            request_txn: HashMap::new(),
            completed: Vec::new(),
        }
    }

    /// Convergence counters of the adaptive transaction window (`None` for a
    /// static pipeline).
    pub fn pipeline_stats(&self) -> Option<PipelineStats> {
        self.adaptive.as_ref().map(|c| c.stats())
    }

    /// The client's process identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The transactions committed so far, in commit order.
    pub fn completed(&self) -> &[TxnCompleted<S::Response>] {
        &self.completed
    }

    /// Whether the whole workload has been submitted and committed.
    pub fn is_done(&self) -> bool {
        self.workload.is_empty() && self.outstanding.is_empty()
    }

    /// Submits transactions until the pipeline window is full or the
    /// workload is exhausted.
    fn fill_pipeline(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        while self.outstanding.len() < self.pipeline {
            let Some(ops) = self.workload.pop_front() else {
                return;
            };
            self.submit_txn(ctx, ops);
        }
    }

    /// Routes one transaction's ops, fans the per-group prepares out (or
    /// takes the single-group fast path) and registers the quorum trackers.
    fn submit_txn(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        ops: Vec<S::Command>,
    ) {
        assert!(!ops.is_empty(), "empty transaction");
        // Partition the ops by owning group, preserving op order per group.
        let mut parts: BTreeMap<GroupId, Vec<S::Command>> = BTreeMap::new();
        for op in ops {
            parts.entry(self.router.route(&op)).or_default().push(op);
        }
        let txn = TxnId::new(self.id, self.next_txn);
        self.next_txn += 1;
        // The fast path carries no envelope: its one request must be
        // indistinguishable on the wire from a plain sharded request.
        let envelope = (parts.len() > 1).then(|| TxnEnvelope {
            txn,
            participants: parts.keys().copied().collect(),
        });
        let mut outstanding = OutstandingTxn {
            index: self.next_index,
            sent_at: ctx.now(),
            envelope: envelope.clone(),
            pending: BTreeMap::new(),
            adopted: Vec::new(),
        };
        self.next_index += 1;
        for (group, group_ops) in parts {
            let command = if group_ops.len() == 1 {
                group_ops.into_iter().next().expect("one op")
            } else {
                S::Command::multi(group_ops)
            };
            let id = RequestId::new(self.id, self.next_seq);
            self.next_seq += 1;
            let route_epoch = self.router.route_epoch();
            let wire = CastWire {
                id,
                origin: self.id,
                payload: Request {
                    id,
                    client: self.id,
                    group,
                    txn: envelope.clone(),
                    reconfig: None,
                    route_epoch,
                    command: command.clone(),
                },
            };
            ctx.send_all(&self.groups[group.index()], OarWire::Request(wire));
            ctx.annotate(format!("OAR-multicast({id}, {group})"));
            self.request_txn.insert(id, txn);
            outstanding.pending.insert(
                id,
                PendingPart {
                    group,
                    quorum: QuorumTracker::new(),
                    command,
                    route_epoch,
                },
            );
        }
        self.outstanding.insert(txn, outstanding);
    }

    fn handle_reply_batch(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        batch: ReplyBatch<S::Response>,
    ) {
        // Adapt the window before unpacking, so the refills triggered by the
        // commits below see the adjusted pipeline.
        if let Some(controller) = self.adaptive.as_mut() {
            self.pipeline = controller.observe_batch(batch.batch_hint);
        }
        for reply in batch.unpack() {
            self.handle_reply(ctx, reply);
        }
    }

    /// Feeds one reply into its part's quorum tracker (Fig. 5, with the
    /// owning group's majority); the transaction commits when the last
    /// participating group's quorum closes.
    fn handle_reply(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        reply: Reply<S::Response>,
    ) {
        let request = reply.request;
        let Some(&txn) = self.request_txn.get(&request) else {
            return; // stale reply for an already-adopted part
        };
        let outstanding = self
            .outstanding
            .get_mut(&txn)
            .expect("request_txn entries outlive their transaction");
        let part = outstanding
            .pending
            .get_mut(&request)
            .expect("pending part matches request_txn");
        let threshold = majority(self.groups[part.group.index()].len());
        let Some((epoch, adopted)) = part.quorum.absorb(reply, threshold) else {
            return;
        };
        let part = outstanding.pending.remove(&request).expect("checked above");
        self.request_txn.remove(&request);
        outstanding.adopted.push(TxnPart {
            group: part.group,
            request,
            epoch,
            position: adopted.position,
            adopted_weight: adopted.weight.len(),
            replies_seen: part.quorum.replies_seen(),
            response: adopted.response,
        });
        if !outstanding.pending.is_empty() {
            return; // other participating groups still short of quorum
        }
        let mut outstanding = self.outstanding.remove(&txn).expect("checked above");
        outstanding.adopted.sort_by_key(|p| p.group.index());
        ctx.annotate(format!(
            "txn-commit({txn}, |groups|={})",
            outstanding.adopted.len()
        ));
        self.completed.push(TxnCompleted {
            id: txn,
            index: outstanding.index,
            parts: outstanding.adopted,
            sent_at: outstanding.sent_at,
            completed_at: ctx.now(),
        });
        if self.workload.is_empty() {
            return;
        }
        if self.think_time.is_zero() {
            self.fill_pipeline(ctx);
        } else {
            ctx.set_timer(self.think_time, NEXT_TXN);
        }
    }

    /// Applies the migration records of a [`OarWire::Redirect`] and re-sends
    /// exactly the door-dropped prepares — never the other outstanding ones:
    /// a prepare the donor group already ordered travels to the recipient in
    /// the migrated hand-off, and re-sending it would apply the transaction's
    /// partition twice.
    ///
    /// The re-sent prepare keeps its original envelope (participant set) and
    /// re-routes wholesale by the partition command's shard key. A migration
    /// cannot split the partition: keys move between groups one record at a
    /// time, so the recipient of the partition's first key owns the prepare.
    fn handle_redirect(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        records: Vec<MigrationRecord>,
        dropped: Vec<RequestId>,
    ) {
        for record in &records {
            self.router.apply_record(record);
        }
        let route_epoch = self.router.route_epoch();
        for id in dropped {
            let Some(&txn) = self.request_txn.get(&id) else {
                continue; // part already adopted (a racing member answered)
            };
            let outstanding = self
                .outstanding
                .get_mut(&txn)
                .expect("request_txn entries outlive their transaction");
            let part = outstanding
                .pending
                .get_mut(&id)
                .expect("pending part matches request_txn");
            if part.route_epoch >= route_epoch {
                continue; // already re-sent under the current boundary
            }
            let group = self.router.route(&part.command);
            if group != part.group {
                // Partial optimistic weight from the donor group must not be
                // mixed with the recipient's replies (epoch numbers are
                // per-group), so the tracker restarts from scratch.
                part.group = group;
                part.quorum = QuorumTracker::new();
            }
            part.route_epoch = route_epoch;
            let wire = CastWire {
                id,
                origin: self.id,
                payload: Request {
                    id,
                    client: self.id,
                    group,
                    txn: outstanding.envelope.clone(),
                    reconfig: None,
                    route_epoch,
                    command: part.command.clone(),
                },
            };
            ctx.send_all(&self.groups[group.index()], OarWire::Request(wire));
            ctx.annotate(format!("OAR-redirect({id}, {group})"));
        }
    }
}

impl<S: StateMachine> Process<OarWire<S::Command, S::Response>> for TxnClient<S>
where
    S::Command: MultiOp,
{
    fn on_start(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>) {
        if self.start_delay.is_zero() {
            self.fill_pipeline(ctx);
        } else {
            ctx.set_timer(self.start_delay, NEXT_TXN);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>,
        _from: ProcessId,
        msg: OarWire<S::Command, S::Response>,
    ) {
        match msg {
            OarWire::Replies(batch) => self.handle_reply_batch(ctx, batch),
            OarWire::Redirect { records, dropped } => self.handle_redirect(ctx, records, dropped),
            // Clients ignore every other message kind.
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Runtime<OarWire<S::Command, S::Response>>, timer: Timer) {
        if timer.tag == NEXT_TXN && self.outstanding.len() < self.pipeline {
            self.fill_pipeline(ctx);
        }
    }

    fn name(&self) -> String {
        format!("txn-client-{}", self.id.index())
    }
}

/// A sharded OAR deployment driven by transactional clients: the same
/// per-group server layout as [`crate::sharded::ShardedCluster`], with
/// [`TxnClient`]s submitting multi-key transactions.
pub struct TxnCluster<S: StateMachine> {
    /// The simulation world. Exposed so experiments can inject crashes,
    /// partitions, and additional (plain) client processes.
    pub world: World<OarWire<S::Command, S::Response>>,
    /// Server identifiers per group, indexed by [`GroupId`].
    pub groups: Vec<Vec<ProcessId>>,
    /// Identifiers of the transactional client processes.
    pub clients: Vec<ProcessId>,
    /// The router shared by all clients.
    pub router: ShardRouter,
}

impl<S: StateMachine> TxnCluster<S>
where
    S::Command: MultiOp,
{
    /// Builds a transactional cluster from the same configuration type as
    /// the sharded deployment; `config.client_pipeline` is the per-client
    /// window of outstanding *transactions*. `workload_for(client_index)` is
    /// each client's transaction list (each transaction a non-empty op
    /// list).
    ///
    /// # Panics
    ///
    /// Panics if the router's group count differs from `config.num_groups`.
    pub fn build(
        config: &ShardedConfig,
        mut make_sm: impl FnMut() -> S,
        mut workload_for: impl FnMut(usize) -> Vec<Vec<S::Command>>,
    ) -> Self {
        assert_eq!(
            config.router.num_groups(),
            config.num_groups,
            "router and config disagree on the group count"
        );
        let mut world: World<OarWire<S::Command, S::Response>> =
            World::new(config.net.clone(), config.seed);
        let groups = build_group_servers(&mut world, config, &mut make_sm);
        let first_client = config.num_groups * config.servers_per_group;
        let mut clients = Vec::with_capacity(config.num_clients);
        for c in 0..config.num_clients {
            let mut builder = ClientConfig::builder()
                .think_time(config.think_time)
                .start_delay(SimDuration::from_micros(10 * c as u64));
            builder = if config.adaptive_pipeline {
                builder.adaptive_pipeline(config.client_pipeline)
            } else {
                builder.pipeline(config.client_pipeline)
            };
            let client: TxnClient<S> = TxnClient::new(
                ProcessId::new(first_client + c),
                groups.clone(),
                config.router.clone(),
                workload_for(c),
                builder.build(),
            );
            clients.push(world.add_process(client));
        }
        TxnCluster {
            world,
            groups,
            clients,
            router: config.router.clone(),
        }
    }

    /// Runs the simulation until every client committed its workload or the
    /// horizon is reached. Returns `true` if all clients finished.
    pub fn run_to_completion(&mut self, horizon: SimTime) -> bool {
        let slice = SimDuration::from_millis(50);
        let mut next = self.world.now() + slice;
        loop {
            self.world.run_until(next);
            if self.all_clients_done() {
                return true;
            }
            if self.world.now() >= horizon {
                return self.all_clients_done();
            }
            next = self.world.now() + slice;
        }
    }

    /// Whether every client committed its whole workload.
    pub fn all_clients_done(&self) -> bool {
        self.clients
            .iter()
            .all(|&c| self.world.process_ref::<TxnClient<S>>(c).is_done())
    }

    /// Read access to client `i`.
    pub fn client(&self, i: usize) -> &TxnClient<S> {
        self.world.process_ref::<TxnClient<S>>(self.clients[i])
    }

    /// All committed transactions of all clients.
    pub fn completed_txns(&self) -> Vec<&TxnCompleted<S::Response>> {
        self.clients
            .iter()
            .flat_map(|&c| self.world.process_ref::<TxnClient<S>>(c).completed().iter())
            .collect()
    }

    /// Committed transactions that spanned more than one group.
    pub fn multi_group_commits(&self) -> usize {
        self.completed_txns()
            .iter()
            .filter(|t| t.is_multi_group())
            .count()
    }

    /// Client-observed commit latencies (milliseconds) of all transactions.
    pub fn latencies(&self) -> Samples {
        let mut samples = Samples::new();
        for t in self.completed_txns() {
            samples.record_duration(t.latency());
        }
        samples
    }

    /// Simulated time of the last commit (zero if nothing committed).
    pub fn last_completion(&self) -> SimTime {
        self.completed_txns()
            .iter()
            .map(|t| t.completed_at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Sums `f` over the server stats of group `g` (crashed servers
    /// included — their counters froze at crash time).
    pub fn sum_group_stats(&self, g: usize, f: impl Fn(&ServerStats) -> u64) -> u64 {
        self.groups[g]
            .iter()
            .map(|&s| f(&self.world.process_ref::<OarServer<S>>(s).stats()))
            .sum()
    }

    /// Sums `f` over the server stats of every group.
    pub fn sum_stats(&self, f: impl Fn(&ServerStats) -> u64 + Copy) -> u64 {
        (0..self.groups.len())
            .map(|g| self.sum_group_stats(g, f))
            .sum()
    }

    /// Total misrouted requests across all groups (must stay 0).
    pub fn total_misroutes(&self) -> u64 {
        self.sum_stats(|st| st.misrouted)
    }

    /// Total `TxnPrepare` requests (requests carrying a transaction
    /// envelope) buffered across all servers. Zero in a purely single-group
    /// (fast-path) workload — the gate the `txn-smoke` harness enforces.
    pub fn total_txn_prepares(&self) -> u64 {
        self.sum_stats(|st| st.txn_prepares)
    }

    /// Total wire messages handed to the network by every process — the
    /// quantity compared against a plain [`crate::sharded::ShardedCluster`]
    /// run by the fast-path gate.
    pub fn total_wires(&self) -> u64 {
        self.world.stats().sent
    }

    /// The per-group safety propositions (total order, at-most-once, digest
    /// agreement) plus cross-group isolation — identical to
    /// [`crate::sharded::ShardedCluster::check_per_group_consistency`].
    pub fn check_per_group_consistency(&self) -> Result<(), String> {
        check_groups_consistency::<S>(&self.world, &self.groups)
    }

    /// Atomicity of committed transactions: every per-group prepare of every
    /// committed transaction is settled in its owning group's delivery
    /// order — no group applies a committed transaction's writes while
    /// another participating group drops them.
    pub fn check_txn_atomicity(&self) -> Result<(), String> {
        for (c_idx, &c) in self.clients.iter().enumerate() {
            let client = self.world.process_ref::<TxnClient<S>>(c);
            for txn in client.completed() {
                for part in &txn.parts {
                    let applied = self.groups[part.group.index()]
                        .iter()
                        .filter(|&&s| !self.world.is_crashed(s))
                        .any(|&s| {
                            self.world
                                .process_ref::<OarServer<S>>(s)
                                .committed_sequence()
                                .contains(&part.request)
                        });
                    if !applied {
                        return Err(format!(
                            "atomicity violated: client {c_idx} committed {} but group {} \
                             has no trace of its prepare {}",
                            txn.id, part.group, part.request
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// External consistency per part (Proposition 7 lifted to transactions):
    /// every adopted per-group position matches, at every alive server of
    /// the owning group that settled the prepare, the position at which that
    /// server processed it.
    pub fn check_external_consistency(&self) -> Result<(), String> {
        // Final settled position of every request, per server, per group.
        let mut per_group: Vec<Vec<HashMap<RequestId, u64>>> = Vec::new();
        for servers in &self.groups {
            let mut maps = Vec::new();
            for &s in servers {
                if self.world.is_crashed(s) {
                    maps.push(HashMap::new());
                    continue;
                }
                let server = self.world.process_ref::<OarServer<S>>(s);
                let mut positions = HashMap::new();
                for (i, id) in server.committed_sequence().iter().enumerate() {
                    positions.insert(*id, (i + 1) as u64);
                }
                maps.push(positions);
            }
            per_group.push(maps);
        }
        for (c_idx, &c) in self.clients.iter().enumerate() {
            let client = self.world.process_ref::<TxnClient<S>>(c);
            for txn in client.completed() {
                for part in &txn.parts {
                    for (s_idx, positions) in per_group[part.group.index()].iter().enumerate() {
                        if let Some(&pos) = positions.get(&part.request) {
                            if pos != part.position {
                                return Err(format!(
                                    "client {c_idx} adopted position {} for {} of {} but \
                                     server {} of {} settled it at {}",
                                    part.position, part.request, txn.id, s_idx, part.group, pos
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs every transactional check: per-group propositions, cross-group
    /// atomicity, and per-part external consistency.
    pub fn check_all(&self) -> Result<(), String> {
        self.check_per_group_consistency()?;
        self.check_txn_atomicity()?;
        self.check_external_consistency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ShardedCluster;
    use oar_simnet::NetConfig;

    /// A keyed counter store whose command type supports atomic multi-op
    /// batches — the minimal transactional state machine.
    #[derive(Clone, Debug, Default, PartialEq, Eq)]
    struct TxnCounters {
        counts: BTreeMap<String, i64>,
    }

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum Op {
        Add { key: String, delta: i64 },
        Multi(Vec<Op>),
    }

    fn add(key: &str, delta: i64) -> Op {
        Op::Add {
            key: key.into(),
            delta,
        }
    }

    impl ShardKey for Op {
        fn shard_key(&self) -> &str {
            match self {
                Op::Add { key, .. } => key,
                Op::Multi(ops) => ops.first().expect("non-empty multi").shard_key(),
            }
        }
    }

    impl MultiOp for Op {
        fn multi(ops: Vec<Self>) -> Self {
            Op::Multi(ops)
        }
    }

    impl StateMachine for TxnCounters {
        type Command = Op;
        type Response = Vec<i64>;
        type Undo = Vec<(String, Option<i64>)>;

        fn apply(&mut self, command: &Op) -> (Vec<i64>, Vec<(String, Option<i64>)>) {
            let mut responses = Vec::new();
            let mut undo = Vec::new();
            let mut stack = vec![command];
            // Flatten nested multis in order (the layer never nests, but the
            // state machine should not care).
            let mut flat = Vec::new();
            while let Some(op) = stack.pop() {
                match op {
                    Op::Multi(ops) => stack.extend(ops.iter().rev()),
                    Op::Add { .. } => flat.push(op),
                }
            }
            flat.reverse();
            for op in flat {
                if let Op::Add { key, delta } = op {
                    undo.push((key.clone(), self.counts.get(key).copied()));
                    let entry = self.counts.entry(key.clone()).or_insert(0);
                    *entry += delta;
                    responses.push(*entry);
                }
            }
            undo.reverse(); // restore in reverse op order
            (responses, undo)
        }

        fn undo(&mut self, token: Vec<(String, Option<i64>)>) {
            for (key, previous) in token {
                match previous {
                    Some(v) => {
                        self.counts.insert(key, v);
                    }
                    None => {
                        self.counts.remove(&key);
                    }
                }
            }
        }

        fn digest(&self) -> u64 {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for (k, v) in &self.counts {
                for b in k.bytes().chain(v.to_le_bytes()) {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
            h
        }
    }

    fn config(num_groups: usize, seed: u64) -> ShardedConfig {
        ShardedConfig {
            num_groups,
            servers_per_group: 3,
            num_clients: 2,
            router: ShardRouter::hash(num_groups),
            net: NetConfig::lan(),
            oar: crate::OarConfig::default(),
            seed,
            think_time: SimDuration::ZERO,
            client_pipeline: 1,
            adaptive_pipeline: false,
        }
    }

    /// Transactions spanning several keys (and thus, under the hash router,
    /// several groups with high probability).
    fn txn_workload(client: usize, n: usize) -> Vec<Vec<Op>> {
        (0..n)
            .map(|i| {
                let a = format!("k{}", (client * 5 + i) % 12);
                let b = format!("k{}", (client * 5 + i + 6) % 12);
                vec![add(&a, 1), add(&b, -1)]
            })
            .collect()
    }

    #[test]
    fn multi_group_txns_commit_with_all_checks_green() {
        let config = config(3, 17);
        let mut cluster: TxnCluster<TxnCounters> =
            TxnCluster::build(&config, TxnCounters::default, |c| txn_workload(c, 10));
        assert!(cluster.run_to_completion(SimTime::from_secs(30)));
        assert_eq!(cluster.completed_txns().len(), 20);
        cluster.check_all().unwrap();
        assert_eq!(cluster.total_misroutes(), 0);
        // The 12-key pool spans groups: some transactions must have paid the
        // multi-group commit, and their prepares carried envelopes.
        assert!(cluster.multi_group_commits() > 0);
        assert!(cluster.total_txn_prepares() > 0);
        // Every committed part reports a plausible weight: 2 (optimistic) in
        // this failure-free run.
        for txn in cluster.completed_txns() {
            for part in &txn.parts {
                assert_eq!(part.adopted_weight, 2, "failure-free => optimistic");
            }
        }
    }

    #[test]
    fn single_group_fast_path_is_wire_identical_to_sharded_client() {
        // Same ops, one key per transaction => every transaction is
        // single-group. The transactional run must produce exactly the wire
        // traffic of the plain sharded client submitting the same commands.
        let ops_of = |c: usize, n: usize| -> Vec<Op> {
            (0..n)
                .map(|i| add(&format!("k{}", (c + i) % 8), 1))
                .collect()
        };
        let n = 12;
        let config = config(2, 23);
        let mut txn_cluster: TxnCluster<TxnCounters> =
            TxnCluster::build(&config, TxnCounters::default, |c| {
                ops_of(c, n).into_iter().map(|op| vec![op]).collect()
            });
        assert!(txn_cluster.run_to_completion(SimTime::from_secs(30)));
        txn_cluster.check_all().unwrap();
        let mut plain_cluster: ShardedCluster<TxnCounters> =
            ShardedCluster::build(&config, TxnCounters::default, |c| ops_of(c, n));
        assert!(plain_cluster.run_to_completion(SimTime::from_secs(30)));
        assert_eq!(
            txn_cluster.total_wires(),
            plain_cluster.world.stats().sent,
            "single-group transactions must add zero wires"
        );
        assert_eq!(
            txn_cluster.total_txn_prepares(),
            0,
            "no envelopes on the fast path"
        );
        assert_eq!(txn_cluster.completed_txns().len(), 2 * n);
    }

    #[test]
    fn commit_survives_a_participating_groups_sequencer_crash() {
        let config = ShardedConfig {
            oar: crate::OarConfig::with_fd_timeout(SimDuration::from_millis(25)),
            ..config(3, 31)
        };
        let mut cluster: TxnCluster<TxnCounters> =
            TxnCluster::build(&config, TxnCounters::default, |c| txn_workload(c, 8));
        // Crash group 1's epoch-0 sequencer early: transactions with a part
        // in group 1 must still commit, through the conservative phase.
        let victim = cluster.groups[1][0];
        cluster
            .world
            .schedule_crash(victim, SimTime::from_millis(3));
        assert!(
            cluster.run_to_completion(SimTime::from_secs(60)),
            "all transactions must commit despite the crash"
        );
        cluster.check_all().unwrap();
        assert!(cluster.sum_group_stats(1, |st| st.phase2_entered) > 0);
    }

    #[test]
    #[should_panic(expected = "empty transaction")]
    fn empty_transactions_are_rejected() {
        let config = config(2, 1);
        let mut cluster: TxnCluster<TxnCounters> =
            TxnCluster::build(&config, TxnCounters::default, |_| vec![vec![]]);
        cluster.run_to_completion(SimTime::from_secs(1));
    }
}
