//! The thread-per-process driver: spawn, watch, stop, collect.
//!
//! [`RtNet`] mirrors the simulator's `World` API surface where it makes
//! sense — add processes, run, inspect them afterwards by downcast — but the
//! run model is wall-clock: a run lasts until either a hard time cap or
//! until every process with a registered *done probe* reports done (plus a
//! settle grace period), whichever comes first. There is no global event
//! queue to drain and no quiescence to detect — heartbeats alone keep a real
//! deployment busy forever.

use std::any::Any;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use oar_simnet::{Process, ProcessId, SimRng, Timer};

use crate::context::{RtContext, TimerWheel};

/// An event delivered to a worker thread's channel.
pub(crate) enum RtEvent<M> {
    /// A protocol message from another process (or the process itself).
    Msg {
        /// The sending process.
        from: ProcessId,
        /// The payload.
        msg: M,
    },
    /// Evaluate the done probe and report on the status channel.
    Probe,
    /// Leave the event loop and hand the process back for inspection.
    Stop,
}

/// How a process states that it is done: a predicate over the concrete
/// process type, evaluated *by the owning thread* so it never races with a
/// callback. (Pausing threads to inspect from outside would be worse than
/// racy: a paused process keeps aging on the wall clock, so its peers'
/// failure detectors would suspect it en masse the moment it resumed.)
type ProbeFn = Box<dyn Fn(&dyn Any) -> bool + Send>;

struct ProcEntry<M> {
    process: Box<dyn Process<M> + Send>,
    probe: Option<ProbeFn>,
}

/// Knobs of one real-clock run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Hard wall-clock cap: the run stops at this duration even if probes
    /// never all report done.
    pub max_wall: Duration,
    /// Extra time granted after every probe reports done, so in-flight
    /// protocol work (conservative phase-2, watermarks) settles before the
    /// threads stop.
    pub grace: Duration,
    /// Interval between probe rounds.
    pub poll: Duration,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_wall: Duration::from_secs(30),
            grace: Duration::from_millis(200),
            poll: Duration::from_millis(10),
        }
    }
}

impl RunOptions {
    /// Options for a fixed-duration run (no probes consulted): the
    /// open-loop throughput experiments, which measure for a set time.
    pub fn for_duration(max_wall: Duration) -> Self {
        RunOptions {
            max_wall,
            grace: Duration::ZERO,
            poll: Duration::from_millis(10),
        }
    }
}

/// The state of a finished run: every process (for downcast inspection),
/// how long the run took, and whether it ended because the done probes all
/// reported done (rather than hitting the wall-clock cap).
pub struct RtReport<M> {
    processes: Vec<Box<dyn Process<M> + Send>>,
    /// Wall-clock duration of the run, from spawn to the stop broadcast.
    pub elapsed: Duration,
    /// `true` when every process with a done probe reported done before
    /// [`RunOptions::max_wall`]; always `false` for runs without probes.
    pub completed: bool,
}

impl<M> RtReport<M> {
    /// Number of processes that took part in the run.
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// Borrows process `id` downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the process is not a `P` — both are
    /// driver bugs, mirroring the simulator's `World::process_ref`.
    pub fn process_ref<P: Any>(&self, id: ProcessId) -> &P {
        self.processes
            .get(id.index())
            .unwrap_or_else(|| panic!("no process {id}"))
            .as_ref()
            .as_any()
            .downcast_ref::<P>()
            .unwrap_or_else(|| panic!("process {id} has a different concrete type"))
    }
}

/// A real-clock deployment under construction: processes are added (each
/// optionally with a done probe), then [`RtNet::run`] spawns one OS thread
/// per process and drives the run to its stop condition.
pub struct RtNet<M> {
    seed: u64,
    entries: Vec<ProcEntry<M>>,
}

impl<M: Clone + Send + 'static> RtNet<M> {
    /// Creates an empty deployment. `seed` fixes every process's RNG (mixed
    /// with its process id), so command generation is reproducible across
    /// runs and across backends.
    pub fn new(seed: u64) -> Self {
        RtNet {
            seed,
            entries: Vec::new(),
        }
    }

    /// Adds a process with no done probe; ids are assigned densely from
    /// zero, in insertion order, exactly like the simulator.
    pub fn add_process(&mut self, process: impl Process<M> + Send + 'static) -> ProcessId {
        self.push(Box::new(process), None)
    }

    /// Adds a process together with its done probe: the run may stop once
    /// every probed process's predicate holds (see [`RunOptions`]).
    pub fn add_process_until<P>(
        &mut self,
        process: P,
        done: impl Fn(&P) -> bool + Send + 'static,
    ) -> ProcessId
    where
        P: Process<M> + Send + 'static,
    {
        let probe: ProbeFn =
            Box::new(move |any: &dyn Any| any.downcast_ref::<P>().is_some_and(&done));
        self.push(Box::new(process), Some(probe))
    }

    fn push(&mut self, process: Box<dyn Process<M> + Send>, probe: Option<ProbeFn>) -> ProcessId {
        let id = ProcessId::new(self.entries.len());
        self.entries.push(ProcEntry { process, probe });
        id
    }

    /// Number of processes added so far.
    pub fn num_processes(&self) -> usize {
        self.entries.len()
    }

    /// Spawns one thread per process, runs to the stop condition of
    /// `options`, stops every thread and collects the processes.
    pub fn run(self, options: RunOptions) -> RtReport<M> {
        let seed = self.seed;
        let mut senders = Vec::with_capacity(self.entries.len());
        let mut receivers = Vec::with_capacity(self.entries.len());
        for _ in &self.entries {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let (status_tx, status_rx) = mpsc::channel::<(ProcessId, bool)>();
        let probed: Vec<bool> = self.entries.iter().map(|e| e.probe.is_some()).collect();
        let start = Instant::now();

        let mut handles = Vec::with_capacity(self.entries.len());
        for (index, (entry, rx)) in self.entries.into_iter().zip(receivers).enumerate() {
            let pid = ProcessId::new(index);
            let senders = Arc::clone(&senders);
            let status = status_tx.clone();
            handles.push(
                thread::Builder::new()
                    .name(entry.process.name())
                    .spawn(move || worker(pid, seed, start, entry, rx, senders, status))
                    .expect("spawn process thread"),
            );
        }
        drop(status_tx);

        let completed = watch(&senders, &probed, &status_rx, start, options);
        let elapsed = start.elapsed();
        for sender in senders.iter() {
            let _ = sender.send(RtEvent::Stop);
        }
        let processes = handles
            .into_iter()
            .map(|h| h.join().expect("process thread panicked"))
            .collect();
        RtReport {
            processes,
            elapsed,
            completed,
        }
    }
}

/// The control loop: probes the probed processes every `poll` until either
/// all report done (returns `true`, after the settle grace) or the
/// wall-clock cap is hit (returns `false`).
fn watch<M>(
    senders: &[Sender<RtEvent<M>>],
    probed: &[bool],
    status_rx: &Receiver<(ProcessId, bool)>,
    start: Instant,
    options: RunOptions,
) -> bool {
    let num_probed = probed.iter().filter(|&&p| p).count();
    if num_probed == 0 {
        // Fixed-duration run: nothing to consult, just let the clock run.
        let remaining = options.max_wall.saturating_sub(start.elapsed());
        thread::sleep(remaining);
        return false;
    }
    let mut done = vec![false; probed.len()];
    while start.elapsed() < options.max_wall {
        for (index, &is_probed) in probed.iter().enumerate() {
            if is_probed && !done[index] {
                let _ = senders[index].send(RtEvent::Probe);
            }
        }
        let round_deadline = Instant::now() + options.poll;
        loop {
            let wait = round_deadline.saturating_duration_since(Instant::now());
            match status_rx.recv_timeout(wait) {
                Ok((pid, is_done)) => {
                    if is_done {
                        done[pid.index()] = true;
                    }
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => return false,
            }
            if done.iter().zip(probed).filter(|(_, &p)| p).all(|(d, _)| *d) {
                thread::sleep(options.grace);
                return true;
            }
        }
    }
    false
}

/// One process's event loop: fire due timers, then wait for the next
/// message or timer deadline, until a stop request (or a poisoned channel)
/// ends the run. Returns the process for post-run inspection.
fn worker<M: Clone + Send + 'static>(
    pid: ProcessId,
    seed: u64,
    start: Instant,
    entry: ProcEntry<M>,
    rx: Receiver<RtEvent<M>>,
    senders: Arc<Vec<Sender<RtEvent<M>>>>,
    status: Sender<(ProcessId, bool)>,
) -> Box<dyn Process<M> + Send> {
    let ProcEntry { mut process, probe } = entry;
    // The same golden-ratio mix the servers use for their id-salted hashes;
    // each process replays the same command stream on every backend.
    let mut rng = SimRng::new(seed ^ (pid.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut timers = TimerWheel::default();
    // An idle cap on channel waits, so a thread with no armed timers still
    // revisits its loop at a human-scale rhythm.
    const MAX_IDLE: Duration = Duration::from_millis(100);

    {
        let mut ctx = RtContext::new(start, pid, &mut rng, &senders, &mut timers);
        process.on_start(&mut ctx);
    }
    loop {
        let now = Instant::now();
        for (id, tag) in timers.due(now) {
            let mut ctx = RtContext::new(start, pid, &mut rng, &senders, &mut timers);
            process.on_timer(&mut ctx, Timer { id, tag });
        }
        let wait = match timers.next_deadline() {
            Some(deadline) => deadline
                .saturating_duration_since(Instant::now())
                .min(MAX_IDLE),
            None => MAX_IDLE,
        };
        match rx.recv_timeout(wait) {
            Ok(RtEvent::Msg { from, msg }) => {
                let mut ctx = RtContext::new(start, pid, &mut rng, &senders, &mut timers);
                process.on_message(&mut ctx, from, msg);
            }
            Ok(RtEvent::Probe) => {
                let is_done = probe.as_ref().is_none_or(|p| p(process.as_ref().as_any()));
                let _ = status.send((pid, is_done));
            }
            Ok(RtEvent::Stop) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    process
}

#[cfg(test)]
mod tests {
    use super::*;
    use oar_simnet::{Runtime, SimDuration, TimerTag};

    #[derive(Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    impl Clone for Msg {
        fn clone(&self) -> Self {
            match self {
                Msg::Ping(n) => Msg::Ping(*n),
                Msg::Pong(n) => Msg::Pong(*n),
            }
        }
    }

    struct Pinger {
        peer: ProcessId,
        rounds: u32,
        got: Vec<u32>,
    }

    impl Process<Msg> for Pinger {
        fn on_start(&mut self, rt: &mut dyn Runtime<Msg>) {
            rt.send(self.peer, Msg::Ping(0));
        }
        fn on_message(&mut self, rt: &mut dyn Runtime<Msg>, _from: ProcessId, msg: Msg) {
            if let Msg::Pong(n) = msg {
                self.got.push(n);
                if n + 1 < self.rounds {
                    rt.send(self.peer, Msg::Ping(n + 1));
                }
            }
        }
    }

    struct Ponger;

    impl Process<Msg> for Ponger {
        fn on_message(&mut self, rt: &mut dyn Runtime<Msg>, from: ProcessId, msg: Msg) {
            if let Msg::Ping(n) = msg {
                rt.send(from, Msg::Pong(n));
            }
        }
    }

    #[test]
    fn ping_pong_across_threads() {
        let mut net: RtNet<Msg> = RtNet::new(7);
        let pinger = net.add_process_until(
            Pinger {
                peer: ProcessId::new(1),
                rounds: 50,
                got: Vec::new(),
            },
            |p: &Pinger| p.got.len() == 50,
        );
        let ponger = net.add_process(Ponger);
        assert_eq!(pinger, ProcessId::new(0));
        assert_eq!(ponger, ProcessId::new(1));
        let report = net.run(RunOptions {
            max_wall: Duration::from_secs(10),
            grace: Duration::ZERO,
            poll: Duration::from_millis(1),
        });
        assert!(
            report.completed,
            "ping-pong must finish well before the cap"
        );
        let p = report.process_ref::<Pinger>(pinger);
        assert_eq!(p.got, (0..50).collect::<Vec<_>>());
    }

    struct TimerBox {
        fired: Vec<TimerTag>,
        cancelled: Option<oar_simnet::TimerId>,
    }

    impl Process<Msg> for TimerBox {
        fn on_start(&mut self, rt: &mut dyn Runtime<Msg>) {
            rt.set_timer(SimDuration::from_millis(5), TimerTag::Custom(1));
            let doomed = rt.set_timer(SimDuration::from_millis(10), TimerTag::Custom(2));
            rt.set_timer(SimDuration::from_millis(15), TimerTag::Custom(3));
            self.cancelled = Some(doomed);
        }
        fn on_message(&mut self, _rt: &mut dyn Runtime<Msg>, _from: ProcessId, _msg: Msg) {}
        fn on_timer(&mut self, rt: &mut dyn Runtime<Msg>, timer: Timer) {
            if timer.tag == TimerTag::Custom(1) {
                if let Some(doomed) = self.cancelled {
                    rt.cancel_timer(doomed);
                }
            }
            self.fired.push(timer.tag);
        }
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        let mut net: RtNet<Msg> = RtNet::new(7);
        let id = net.add_process_until(
            TimerBox {
                fired: Vec::new(),
                cancelled: None,
            },
            |t: &TimerBox| t.fired.len() == 2,
        );
        let report = net.run(RunOptions {
            max_wall: Duration::from_secs(10),
            grace: Duration::ZERO,
            poll: Duration::from_millis(1),
        });
        assert!(report.completed);
        let t = report.process_ref::<TimerBox>(id);
        assert_eq!(t.fired, vec![TimerTag::Custom(1), TimerTag::Custom(3)]);
    }

    #[test]
    fn fixed_duration_run_stops_at_the_cap() {
        let mut net: RtNet<Msg> = RtNet::new(7);
        net.add_process(Ponger);
        let cap = Duration::from_millis(50);
        let report = net.run(RunOptions::for_duration(cap));
        assert!(!report.completed);
        assert!(report.elapsed >= cap);
        assert_eq!(report.num_processes(), 1);
    }
}
