//! The real-clock implementation of the runtime boundary.
//!
//! An [`RtContext`] is handed to a process callback by its owning thread. It
//! differs from the simulator's action-buffering `Context` in that effects
//! are immediate: sends go straight into the destination thread's channel,
//! timers go straight into the owning thread's local heap. There is no
//! buffering because there is no single-threaded scheduler to replay the
//! actions — each thread *is* its own scheduler.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::sync::mpsc::Sender;
use std::time::Instant;

use oar_simnet::{ProcessId, Runtime, SimDuration, SimRng, SimTime, TimerId, TimerTag};

use crate::net::RtEvent;

/// A pending timer in a thread's local heap, ordered soonest-deadline-first.
#[derive(Debug)]
pub(crate) struct TimerEntry {
    pub(crate) deadline: Instant,
    pub(crate) id: TimerId,
    pub(crate) tag: TimerTag,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.id == other.id
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest deadline (ties
        // broken by arming order) surfaces first.
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.id.cmp(&self.id))
    }
}

/// The per-thread timer state: the heap of armed timers plus the set of
/// cancelled ids (cancellation is lazy — a cancelled entry stays in the heap
/// and is skipped when it surfaces).
#[derive(Debug, Default)]
pub(crate) struct TimerWheel {
    pub(crate) heap: BinaryHeap<TimerEntry>,
    pub(crate) cancelled: HashSet<TimerId>,
    pub(crate) next_id: u64,
}

impl TimerWheel {
    /// The deadline of the earliest live timer, if any.
    pub(crate) fn next_deadline(&mut self) -> Option<Instant> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.id) {
                let entry = self.heap.pop().expect("peeked");
                self.cancelled.remove(&entry.id);
                continue;
            }
            return Some(entry.deadline);
        }
        None
    }

    /// Pops every timer due at `now`, skipping cancelled ones.
    pub(crate) fn due(&mut self, now: Instant) -> Vec<(TimerId, TimerTag)> {
        let mut fired = Vec::new();
        while let Some(entry) = self.heap.peek() {
            if entry.deadline > now {
                break;
            }
            let entry = self.heap.pop().expect("peeked");
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            fired.push((entry.id, entry.tag));
        }
        fired
    }
}

/// Execution context of one callback of one process on the real-clock
/// backend: the second implementation of [`Runtime`], next to the
/// simulator's `Context`.
///
/// Constructed only by the [`RtNet`](crate::RtNet) worker threads; protocol
/// code sees it as `&mut dyn Runtime<M>`.
pub struct RtContext<'a, M> {
    start: Instant,
    self_id: ProcessId,
    rng: &'a mut SimRng,
    senders: &'a [Sender<RtEvent<M>>],
    timers: &'a mut TimerWheel,
}

impl<'a, M> RtContext<'a, M> {
    pub(crate) fn new(
        start: Instant,
        self_id: ProcessId,
        rng: &'a mut SimRng,
        senders: &'a [Sender<RtEvent<M>>],
        timers: &'a mut TimerWheel,
    ) -> Self {
        RtContext {
            start,
            self_id,
            rng,
            senders,
            timers,
        }
    }
}

impl<M: Clone + Send + 'static> Runtime<M> for RtContext<'_, M> {
    /// Monotonic wall-clock time: microseconds since the run started.
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn id(&self) -> ProcessId {
        self.self_id
    }

    /// A deterministic RNG owned by this process, seeded from
    /// `(run seed, process id)`: command generation replays identically even
    /// though thread interleaving does not.
    fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Delivers `msg` into the destination thread's channel. A send to a
    /// process whose thread already stopped is silently dropped — during
    /// shutdown the remaining threads drain at their own pace, exactly like
    /// messages in flight to a crashed process.
    fn send(&mut self, to: ProcessId, msg: M) {
        if let Some(sender) = self.senders.get(to.index()) {
            let _ = sender.send(RtEvent::Msg {
                from: self.self_id,
                msg,
            });
        }
    }

    /// Unicast per recipient; the payload is cloned per destination (a real
    /// transport serialises per destination anyway), with the final
    /// destination taking the original.
    fn send_all(&mut self, targets: &[ProcessId], msg: M) {
        let Some((&last, rest)) = targets.split_last() else {
            return;
        };
        for &to in rest {
            self.send(to, msg.clone());
        }
        self.send(last, msg);
    }

    /// Arms a timer in the owning thread's local heap; it fires no earlier
    /// than `delay` from now, whenever the thread next drains due timers.
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        let id = TimerId(self.timers.next_id);
        self.timers.next_id += 1;
        self.timers.heap.push(TimerEntry {
            deadline: Instant::now() + std::time::Duration::from_micros(delay.as_micros()),
            id,
            tag,
        });
        id
    }

    fn cancel_timer(&mut self, id: TimerId) {
        if id.0 < self.timers.next_id {
            self.timers.cancelled.insert(id);
        }
    }

    /// Annotations are a simulator trace feature; the real-clock backend
    /// discards them (they are debugging aid, not protocol state).
    fn annotate(&mut self, _text: String) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_wheel_orders_and_cancels() {
        let mut wheel = TimerWheel::default();
        let base = Instant::now();
        for (i, offset) in [30u64, 10, 20].iter().enumerate() {
            wheel.heap.push(TimerEntry {
                deadline: base + std::time::Duration::from_millis(*offset),
                id: TimerId(i as u64),
                tag: TimerTag::Custom(i as u32),
            });
        }
        wheel.next_id = 3;
        // Cancel the earliest (id 1 @ +10ms): it must not fire.
        wheel.cancelled.insert(TimerId(1));
        let fired = wheel.due(base + std::time::Duration::from_millis(25));
        assert_eq!(fired, vec![(TimerId(2), TimerTag::Custom(2))]);
        let fired = wheel.due(base + std::time::Duration::from_millis(40));
        assert_eq!(fired, vec![(TimerId(0), TimerTag::Custom(0))]);
        assert!(wheel.next_deadline().is_none());
    }

    #[test]
    fn timer_wheel_ties_fire_in_arming_order() {
        let mut wheel = TimerWheel::default();
        let deadline = Instant::now();
        for i in 0..3u64 {
            wheel.heap.push(TimerEntry {
                deadline,
                id: TimerId(i),
                tag: TimerTag::Tick,
            });
        }
        wheel.next_id = 3;
        let fired = wheel.due(deadline);
        let ids: Vec<u64> = fired.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
