//! # oar-rtnet — real-clock threaded backend for the OAR runtime boundary
//!
//! The deterministic simulator (`oar-simnet`) is where the OAR propositions
//! are *checked*; this crate is where the protocol meets a wall clock. It
//! implements the same [`Runtime`](oar_simnet::Runtime) trait as the
//! simulator's `Context`, so the exact same [`Process`](oar_simnet::Process)
//! objects — servers, clients, baselines — run unchanged on either backend,
//! with no `cfg` forks and no backend type parameter.
//!
//! The execution model is deliberately simple and honest:
//!
//! * **one OS thread per process** — callbacks of one process run in mutual
//!   exclusion on its own thread, exactly the paper's "tasks execute in
//!   mutual exclusion";
//! * **in-process channels** ([`std::sync::mpsc`]) as links — unbounded,
//!   order-preserving and lossless, i.e. the reliable FIFO channels of the
//!   model (loss and partitions are a simulator feature; real networks are
//!   the simulator's job to model, real *time* is this crate's);
//! * **monotonic time** — [`std::time::Instant`] since the start of the run,
//!   reported through [`Runtime::now`](oar_simnet::Runtime::now) as
//!   microseconds, so protocol timeouts mean genuine wall-clock durations;
//! * **a per-thread timer heap** — timers are armed and fired by the owning
//!   thread itself, never cross-thread.
//!
//! Nothing here is deterministic: thread interleavings, channel wakeups and
//! timer jitter are whatever the OS provides. What *is* reproducible is
//! command generation — each process gets its own [`SimRng`](oar_simnet::SimRng)
//! seeded from `(run seed, process id)` — which is what lets a real-clock run
//! and a simulated run of the same workload be compared digest-for-digest
//! (the "twin run" tests in `tests/integration`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod net;

pub use context::RtContext;
pub use net::{RtNet, RtReport, RunOptions};
