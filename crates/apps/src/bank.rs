//! A replicated bank with transactional semantics.
//!
//! The conclusion of the OAR paper singles out transactional environments as
//! the natural fit for the algorithm: each optimistic delivery opens a
//! transaction (or declares a save-point) that is committed when the epoch
//! confirms the order and aborted when the request is `Opt-undeliver`ed. This
//! bank models that: every command's undo token is exactly the save-point that
//! rolls the accounts back.

use std::collections::BTreeMap;

use oar::state_machine::{Snapshottable, StateImage, StateMachine};

/// Account identifier.
pub type AccountId = u32;
/// Money amounts (integer cents; no floats in a deterministic service).
pub type Amount = i64;

/// Commands of the replicated bank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BankCommand {
    /// Create an account with an initial balance.
    Open {
        /// New account id.
        account: AccountId,
        /// Initial balance.
        initial: Amount,
    },
    /// Deposit into an account.
    Deposit {
        /// Target account.
        account: AccountId,
        /// Amount to add (must be positive).
        amount: Amount,
    },
    /// Withdraw from an account; fails (without effect) on insufficient funds.
    Withdraw {
        /// Source account.
        account: AccountId,
        /// Amount to remove (must be positive).
        amount: Amount,
    },
    /// Transfer between two accounts; fails on insufficient funds.
    Transfer {
        /// Source account.
        from: AccountId,
        /// Destination account.
        to: AccountId,
        /// Amount to move.
        amount: Amount,
    },
    /// Read a balance.
    Balance {
        /// Account to read.
        account: AccountId,
    },
}

/// Responses of the replicated bank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BankResponse {
    /// Operation applied; the new balance of the touched (source) account.
    Ok(Amount),
    /// Read result.
    Balance(Option<Amount>),
    /// The operation was rejected (unknown account, insufficient funds,
    /// duplicate open, non-positive amount).
    Rejected(BankError),
}

/// Why a bank command was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BankError {
    /// The account does not exist.
    NoSuchAccount,
    /// The account already exists.
    AlreadyExists,
    /// Insufficient funds for a withdrawal or transfer.
    InsufficientFunds,
    /// The amount was not strictly positive.
    InvalidAmount,
}

/// Undo token: the save-point capturing the balances touched by the command.
#[derive(Clone, Debug)]
pub struct BankUndo {
    /// `(account, balance-before)` pairs; `None` means the account did not
    /// exist before the command.
    touched: Vec<(AccountId, Option<Amount>)>,
}

/// A deterministic, undoable bank.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BankMachine {
    accounts: BTreeMap<AccountId, Amount>,
    ops: u64,
}

impl BankMachine {
    /// Creates a bank with no accounts.
    pub fn new() -> Self {
        BankMachine::default()
    }

    /// Creates a bank with `accounts` accounts numbered `0..accounts`, each
    /// holding `initial`.
    pub fn with_accounts(accounts: u32, initial: Amount) -> Self {
        BankMachine {
            accounts: (0..accounts).map(|a| (a, initial)).collect(),
            ops: 0,
        }
    }

    /// The balance of `account`, if it exists.
    pub fn balance(&self, account: AccountId) -> Option<Amount> {
        self.accounts.get(&account).copied()
    }

    /// Sum of all balances — conserved by every successful transfer.
    pub fn total_funds(&self) -> Amount {
        self.accounts.values().sum()
    }

    /// Number of accounts.
    pub fn num_accounts(&self) -> usize {
        self.accounts.len()
    }

    /// Number of operations applied and not undone.
    pub fn operations(&self) -> u64 {
        self.ops
    }

    fn save(&self, accounts: &[AccountId]) -> BankUndo {
        BankUndo {
            touched: accounts
                .iter()
                .map(|&a| (a, self.accounts.get(&a).copied()))
                .collect(),
        }
    }
}

impl StateMachine for BankMachine {
    type Command = BankCommand;
    type Response = BankResponse;
    type Undo = BankUndo;

    fn apply(&mut self, command: &BankCommand) -> (BankResponse, BankUndo) {
        self.ops += 1;
        match *command {
            BankCommand::Open { account, initial } => {
                let undo = self.save(&[account]);
                if initial < 0 {
                    return (BankResponse::Rejected(BankError::InvalidAmount), undo);
                }
                if self.accounts.contains_key(&account) {
                    return (BankResponse::Rejected(BankError::AlreadyExists), undo);
                }
                self.accounts.insert(account, initial);
                (BankResponse::Ok(initial), undo)
            }
            BankCommand::Deposit { account, amount } => {
                let undo = self.save(&[account]);
                if amount <= 0 {
                    return (BankResponse::Rejected(BankError::InvalidAmount), undo);
                }
                match self.accounts.get_mut(&account) {
                    None => (BankResponse::Rejected(BankError::NoSuchAccount), undo),
                    Some(balance) => {
                        *balance += amount;
                        (BankResponse::Ok(*balance), undo)
                    }
                }
            }
            BankCommand::Withdraw { account, amount } => {
                let undo = self.save(&[account]);
                if amount <= 0 {
                    return (BankResponse::Rejected(BankError::InvalidAmount), undo);
                }
                match self.accounts.get_mut(&account) {
                    None => (BankResponse::Rejected(BankError::NoSuchAccount), undo),
                    Some(balance) if *balance < amount => {
                        (BankResponse::Rejected(BankError::InsufficientFunds), undo)
                    }
                    Some(balance) => {
                        *balance -= amount;
                        (BankResponse::Ok(*balance), undo)
                    }
                }
            }
            BankCommand::Transfer { from, to, amount } => {
                let undo = self.save(&[from, to]);
                if amount <= 0 {
                    return (BankResponse::Rejected(BankError::InvalidAmount), undo);
                }
                if !self.accounts.contains_key(&from) || !self.accounts.contains_key(&to) {
                    return (BankResponse::Rejected(BankError::NoSuchAccount), undo);
                }
                let from_balance = self.accounts[&from];
                if from_balance < amount {
                    return (BankResponse::Rejected(BankError::InsufficientFunds), undo);
                }
                *self.accounts.get_mut(&from).expect("checked") -= amount;
                *self.accounts.get_mut(&to).expect("checked") += amount;
                (BankResponse::Ok(from_balance - amount), undo)
            }
            BankCommand::Balance { account } => {
                let undo = BankUndo {
                    touched: Vec::new(),
                };
                (
                    BankResponse::Balance(self.accounts.get(&account).copied()),
                    undo,
                )
            }
        }
    }

    fn undo(&mut self, token: BankUndo) {
        self.ops -= 1;
        // Restore in reverse order so a command touching the same account twice
        // (not possible today, but harmless) still restores the oldest value.
        for (account, previous) in token.touched.into_iter().rev() {
            match previous {
                Some(balance) => {
                    self.accounts.insert(account, balance);
                }
                None => {
                    self.accounts.remove(&account);
                }
            }
        }
    }

    fn digest(&self) -> u64 {
        let mut h: u64 = 0x84222325_cbf29ce4;
        for (a, b) in &self.accounts {
            h ^= (*a as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h = h.rotate_left(13);
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ self.ops
    }

    fn snapshot(&self) -> Option<StateImage> {
        Some(self.erased_snapshot())
    }

    fn install(&mut self, image: &StateImage) -> bool {
        self.install_erased(image)
    }

    fn fork(&self) -> Option<Self> {
        Some(self.clone())
    }
}

/// Snapshots are a full copy of the ledger (accounts + op counter).
impl Snapshottable for BankMachine {
    type Image = BankMachine;

    fn snapshot_image(&self) -> BankMachine {
        self.clone()
    }

    fn install_image(&mut self, image: &BankMachine) {
        *self = image.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_deposit_withdraw() {
        let mut bank = BankMachine::new();
        assert_eq!(
            bank.apply(&BankCommand::Open {
                account: 1,
                initial: 100
            })
            .0,
            BankResponse::Ok(100)
        );
        assert_eq!(
            bank.apply(&BankCommand::Deposit {
                account: 1,
                amount: 50
            })
            .0,
            BankResponse::Ok(150)
        );
        assert_eq!(
            bank.apply(&BankCommand::Withdraw {
                account: 1,
                amount: 70
            })
            .0,
            BankResponse::Ok(80)
        );
        assert_eq!(bank.balance(1), Some(80));
    }

    #[test]
    fn rejections_have_no_effect() {
        let mut bank = BankMachine::with_accounts(2, 10);
        let before = bank.clone();
        assert_eq!(
            bank.apply(&BankCommand::Withdraw {
                account: 0,
                amount: 100
            })
            .0,
            BankResponse::Rejected(BankError::InsufficientFunds)
        );
        assert_eq!(
            bank.apply(&BankCommand::Deposit {
                account: 9,
                amount: 5
            })
            .0,
            BankResponse::Rejected(BankError::NoSuchAccount)
        );
        assert_eq!(
            bank.apply(&BankCommand::Deposit {
                account: 0,
                amount: 0
            })
            .0,
            BankResponse::Rejected(BankError::InvalidAmount)
        );
        assert_eq!(
            bank.apply(&BankCommand::Open {
                account: 0,
                initial: 5
            })
            .0,
            BankResponse::Rejected(BankError::AlreadyExists)
        );
        assert_eq!(bank.accounts, before.accounts);
    }

    #[test]
    fn transfer_conserves_total_funds() {
        let mut bank = BankMachine::with_accounts(3, 100);
        let total = bank.total_funds();
        bank.apply(&BankCommand::Transfer {
            from: 0,
            to: 1,
            amount: 30,
        });
        bank.apply(&BankCommand::Transfer {
            from: 1,
            to: 2,
            amount: 130,
        });
        assert_eq!(bank.total_funds(), total);
        assert_eq!(bank.balance(0), Some(70));
        assert_eq!(bank.balance(1), Some(0));
        assert_eq!(bank.balance(2), Some(230));
    }

    #[test]
    fn failed_transfer_is_a_no_op() {
        let mut bank = BankMachine::with_accounts(2, 10);
        let (r, _) = bank.apply(&BankCommand::Transfer {
            from: 0,
            to: 1,
            amount: 50,
        });
        assert_eq!(r, BankResponse::Rejected(BankError::InsufficientFunds));
        assert_eq!(bank.balance(0), Some(10));
        assert_eq!(bank.balance(1), Some(10));
    }

    #[test]
    fn undo_rolls_back_transfers_like_a_transaction_abort() {
        let mut bank = BankMachine::with_accounts(2, 100);
        let before = bank.clone();
        let (_, u1) = bank.apply(&BankCommand::Transfer {
            from: 0,
            to: 1,
            amount: 40,
        });
        let (_, u2) = bank.apply(&BankCommand::Deposit {
            account: 0,
            amount: 5,
        });
        bank.undo(u2);
        bank.undo(u1);
        assert_eq!(bank, before);
    }

    #[test]
    fn undo_of_open_removes_the_account() {
        let mut bank = BankMachine::new();
        let (_, undo) = bank.apply(&BankCommand::Open {
            account: 7,
            initial: 3,
        });
        assert_eq!(bank.num_accounts(), 1);
        bank.undo(undo);
        assert_eq!(bank.num_accounts(), 0);
    }

    #[test]
    fn balance_query_is_read_only() {
        let mut bank = BankMachine::with_accounts(1, 5);
        let (r, undo) = bank.apply(&BankCommand::Balance { account: 0 });
        assert_eq!(r, BankResponse::Balance(Some(5)));
        bank.undo(undo);
        assert_eq!(bank.balance(0), Some(5));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_command() -> impl Strategy<Value = BankCommand> {
        let account = 0u32..4;
        prop_oneof![
            (account.clone(), 1i64..100)
                .prop_map(|(account, amount)| BankCommand::Deposit { account, amount }),
            (account.clone(), 1i64..100)
                .prop_map(|(account, amount)| BankCommand::Withdraw { account, amount }),
            (account.clone(), account.clone(), 1i64..100)
                .prop_map(|(from, to, amount)| BankCommand::Transfer { from, to, amount }),
            account
                .clone()
                .prop_map(|account| BankCommand::Balance { account }),
            (4u32..8, 0i64..50)
                .prop_map(|(account, initial)| BankCommand::Open { account, initial }),
        ]
    }

    proptest! {
        /// Transfers (successful or not) never create or destroy money.
        #[test]
        fn conservation_of_funds(commands in proptest::collection::vec(arb_command(), 0..50)) {
            let mut bank = BankMachine::with_accounts(4, 100);
            let mut expected_total = bank.total_funds();
            for c in &commands {
                let (response, _) = bank.apply(c);
                match (c, &response) {
                    (BankCommand::Deposit { amount, .. }, BankResponse::Ok(_)) => expected_total += amount,
                    (BankCommand::Withdraw { amount, .. }, BankResponse::Ok(_)) => expected_total -= amount,
                    (BankCommand::Open { initial, .. }, BankResponse::Ok(_)) => expected_total += initial,
                    _ => {}
                }
                prop_assert_eq!(bank.total_funds(), expected_total);
            }
        }

        /// Reverse-order undo restores the exact initial state.
        #[test]
        fn apply_then_undo_roundtrip(commands in proptest::collection::vec(arb_command(), 0..50)) {
            let mut bank = BankMachine::with_accounts(4, 100);
            let before = bank.clone();
            let mut undos = Vec::new();
            for c in &commands {
                let (_, u) = bank.apply(c);
                undos.push(u);
            }
            for u in undos.into_iter().rev() {
                bank.undo(u);
            }
            prop_assert_eq!(bank, before);
        }

        /// Balances never go negative.
        #[test]
        fn no_negative_balances(commands in proptest::collection::vec(arb_command(), 0..50)) {
            let mut bank = BankMachine::with_accounts(4, 100);
            for c in &commands {
                bank.apply(c);
                for a in 0..8 {
                    if let Some(b) = bank.balance(a) {
                        prop_assert!(b >= 0, "account {a} went negative: {b}");
                    }
                }
            }
        }
    }
}
