//! A replicated key-value store.
//!
//! The store is the "generic service" used by the examples and the throughput
//! experiments: writes, reads, deletes, atomic compare-and-swap, and atomic
//! multi-op batches (the per-group partition of a multi-key transaction) —
//! all deterministic and undoable so that optimistic deliveries can be
//! rolled back.

use std::collections::BTreeMap;

use oar::parallel::ParallelStateMachine;
use oar::shard::ShardKey;
use oar::state_machine::{
    AppliedBatch, ConflictKeys, KeySet, Snapshottable, StateImage, StateMachine,
};
use oar::txn::MultiOp;

/// Keys are small strings; values are strings too (the protocol does not care).
pub type Key = String;
/// Value type of the store.
pub type Value = String;

/// Commands of the key-value store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvCommand {
    /// Write `value` under `key`, returning the previous value.
    Put {
        /// The key to write.
        key: Key,
        /// The value to store.
        value: Value,
    },
    /// Read the value under `key`.
    Get {
        /// The key to read.
        key: Key,
    },
    /// Remove `key`, returning the removed value.
    Delete {
        /// The key to remove.
        key: Key,
    },
    /// Write `new` under `key` only if the current value equals `expected`.
    CompareAndSwap {
        /// The key to update.
        key: Key,
        /// Expected current value (`None` = key absent).
        expected: Option<Value>,
        /// New value to store on success.
        new: Value,
    },
    /// Apply several commands atomically, in order, as **one** delivery.
    ///
    /// This is the per-group partition of a multi-key transaction
    /// ([`oar::txn`]): within the owning group's total order the whole batch
    /// occupies a single position, so no replica ever observes a prefix of
    /// it. The ops must be non-empty ([`KvCommand::key`] — and therefore
    /// client-side routing — panics on an empty batch), must not themselves
    /// be `Multi`, and in a sharded deployment must all be owned by one
    /// group (the transaction layer's router guarantees all three).
    Multi(Vec<KvCommand>),
    /// Install the entries of a migrated key range (the recipient half of an
    /// online shard migration, [`oar::ReconfigCmd::Migrate`]), atomically at
    /// one position of the recipient group's total order.
    ///
    /// **Insert-if-absent**: a key already present locally wins — it was
    /// written by a redirected request ordered *before* this install, and
    /// the migrated (older) value must not clobber it. Servers craft this
    /// command from a `MigrateState` hand-off; clients never send it.
    InstallRange(Vec<(Key, Value)>),
}

impl KvCommand {
    /// The key this command is about. For `Multi`, the first op's key —
    /// sufficient for routing, because a `Multi` built by the transaction
    /// layer only ever holds ops of one owning group. **Not** sufficient for
    /// conflict detection: use [`ConflictKeys::conflict_keys`], which reports
    /// the union of a `Multi`'s member keys.
    pub fn key(&self) -> &str {
        match self {
            KvCommand::Put { key, .. }
            | KvCommand::Get { key }
            | KvCommand::Delete { key }
            | KvCommand::CompareAndSwap { key, .. } => key,
            KvCommand::Multi(ops) => ops.first().expect("non-empty multi").key(),
            KvCommand::InstallRange(entries) => {
                entries.first().map(|(k, _)| k.as_str()).unwrap_or_default()
            }
        }
    }

    /// Appends every key this command touches (members recursively for
    /// `Multi`) to `keys`.
    fn collect_keys<'a>(&'a self, keys: &mut Vec<&'a str>) {
        match self {
            KvCommand::Put { key, .. }
            | KvCommand::Get { key }
            | KvCommand::Delete { key }
            | KvCommand::CompareAndSwap { key, .. } => keys.push(key),
            KvCommand::Multi(ops) => {
                for op in ops {
                    op.collect_keys(keys);
                }
            }
            KvCommand::InstallRange(entries) => {
                for (k, _) in entries {
                    keys.push(k);
                }
            }
        }
    }
}

/// The conflict footprint of a command is exactly the keys it reads or
/// writes. A `Multi` conflicts on the **union** of its member keys — its
/// routing key ([`KvCommand::key`], the first member's) would miss conflicts
/// on every other member, so two `Multi`s with disjoint key sets may share a
/// wave while overlapping ones keep their delivery order.
impl ConflictKeys for KvCommand {
    fn conflict_keys(&self) -> KeySet<'_> {
        let mut keys = Vec::new();
        self.collect_keys(&mut keys);
        KeySet::Keys(keys)
    }
}

/// Every simple command touches exactly one key, so the store shards
/// naturally: per-key ordering is the owning group's total order. A `Multi`
/// batch routes by its first key (all its keys share one owning group).
impl ShardKey for KvCommand {
    fn shard_key(&self) -> &str {
        self.key()
    }
}

/// The store supports atomic per-group transaction partitions: `multi`
/// simply wraps the ops, and [`KvMachine::apply`] applies the batch in one
/// delivery.
impl MultiOp for KvCommand {
    fn multi(ops: Vec<KvCommand>) -> KvCommand {
        KvCommand::Multi(ops)
    }
}

/// Responses of the key-value store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvResponse {
    /// Previous value (for `Put` / `Delete`).
    Previous(Option<Value>),
    /// Read result.
    Value(Option<Value>),
    /// Whether a compare-and-swap succeeded.
    Swapped(bool),
    /// Responses of an atomic `Multi` batch, one per op, in op order.
    Multi(Vec<KvResponse>),
    /// Number of keys an `InstallRange` actually inserted (keys already
    /// present — written by redirected requests ordered earlier — are
    /// skipped and not counted).
    Installed(u64),
}

/// Undo token: the key touched and the value it held before the command.
#[derive(Clone, Debug)]
pub enum KvUndo {
    /// Restore `key` to `previous` (which may be "absent").
    Restore {
        /// The key to restore.
        key: Key,
        /// The value before the command (`None` = key was absent).
        previous: Option<Value>,
    },
    /// Read-only command: nothing to undo.
    Nothing,
    /// Undo tokens of a `Multi` batch, already reversed so they are rolled
    /// back in reverse op order.
    Multi(Vec<KvUndo>),
}

/// A deterministic, undoable key-value store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvMachine {
    map: BTreeMap<Key, Value>,
    ops: u64,
}

impl KvMachine {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvMachine::default()
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Direct read access (for tests and examples).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.map.get(key)
    }

    /// Number of operations applied and not undone.
    pub fn operations(&self) -> u64 {
        self.ops
    }
}

impl KvMachine {
    /// Applies one command without touching the operation counter (so a
    /// whole `Multi` batch counts as a single operation — one delivery, one
    /// position in the replicated order).
    fn apply_inner(&mut self, command: &KvCommand) -> (KvResponse, KvUndo) {
        match command {
            KvCommand::Put { key, value } => {
                let previous = self.map.insert(key.clone(), value.clone());
                (
                    KvResponse::Previous(previous.clone()),
                    KvUndo::Restore {
                        key: key.clone(),
                        previous,
                    },
                )
            }
            KvCommand::Get { key } => (
                KvResponse::Value(self.map.get(key).cloned()),
                KvUndo::Nothing,
            ),
            KvCommand::Delete { key } => {
                let previous = self.map.remove(key);
                (
                    KvResponse::Previous(previous.clone()),
                    KvUndo::Restore {
                        key: key.clone(),
                        previous,
                    },
                )
            }
            KvCommand::CompareAndSwap { key, expected, new } => {
                let current = self.map.get(key).cloned();
                if &current == expected {
                    self.map.insert(key.clone(), new.clone());
                    (
                        KvResponse::Swapped(true),
                        KvUndo::Restore {
                            key: key.clone(),
                            previous: current,
                        },
                    )
                } else {
                    (KvResponse::Swapped(false), KvUndo::Nothing)
                }
            }
            KvCommand::Multi(ops) => {
                let mut responses = Vec::with_capacity(ops.len());
                let mut undos = Vec::with_capacity(ops.len());
                for op in ops {
                    let (response, undo) = self.apply_inner(op);
                    responses.push(response);
                    undos.push(undo);
                }
                // Rolled back in reverse op order, like any undo stack.
                undos.reverse();
                (KvResponse::Multi(responses), KvUndo::Multi(undos))
            }
            KvCommand::InstallRange(entries) => {
                let mut undos = Vec::new();
                for (key, value) in entries {
                    if !self.map.contains_key(key) {
                        self.map.insert(key.clone(), value.clone());
                        undos.push(KvUndo::Restore {
                            key: key.clone(),
                            previous: None,
                        });
                    }
                }
                let installed = undos.len() as u64;
                undos.reverse();
                (KvResponse::Installed(installed), KvUndo::Multi(undos))
            }
        }
    }

    /// Reads `key` as staged execution would see it: the overlay (this
    /// command's own earlier writes, `None` = deleted) shadows the map.
    fn staged_read(&self, overlay: &BTreeMap<Key, Option<Value>>, key: &str) -> Option<Value> {
        match overlay.get(key) {
            Some(value) => value.clone(),
            None => self.map.get(key).cloned(),
        }
    }

    /// Stages one command without mutating the store: the response and undo
    /// are computed against `map ∪ overlay`, and every write lands in both
    /// the overlay (so later `Multi` members see it) and `writes` (the
    /// effect replayed by [`ParallelStateMachine::commit`]).
    fn stage_inner(
        &self,
        command: &KvCommand,
        overlay: &mut BTreeMap<Key, Option<Value>>,
        writes: &mut Vec<(Key, Option<Value>)>,
    ) -> (KvResponse, KvUndo) {
        fn write(
            overlay: &mut BTreeMap<Key, Option<Value>>,
            writes: &mut Vec<(Key, Option<Value>)>,
            key: &Key,
            value: Option<Value>,
        ) {
            overlay.insert(key.clone(), value.clone());
            writes.push((key.clone(), value));
        }
        match command {
            KvCommand::Put { key, value } => {
                let previous = self.staged_read(overlay, key);
                write(overlay, writes, key, Some(value.clone()));
                (
                    KvResponse::Previous(previous.clone()),
                    KvUndo::Restore {
                        key: key.clone(),
                        previous,
                    },
                )
            }
            KvCommand::Get { key } => (
                KvResponse::Value(self.staged_read(overlay, key)),
                KvUndo::Nothing,
            ),
            KvCommand::Delete { key } => {
                let previous = self.staged_read(overlay, key);
                write(overlay, writes, key, None);
                (
                    KvResponse::Previous(previous.clone()),
                    KvUndo::Restore {
                        key: key.clone(),
                        previous,
                    },
                )
            }
            KvCommand::CompareAndSwap { key, expected, new } => {
                let current = self.staged_read(overlay, key);
                if &current == expected {
                    write(overlay, writes, key, Some(new.clone()));
                    (
                        KvResponse::Swapped(true),
                        KvUndo::Restore {
                            key: key.clone(),
                            previous: current,
                        },
                    )
                } else {
                    (KvResponse::Swapped(false), KvUndo::Nothing)
                }
            }
            KvCommand::Multi(ops) => {
                let mut responses = Vec::with_capacity(ops.len());
                let mut undos = Vec::with_capacity(ops.len());
                for op in ops {
                    let (response, undo) = self.stage_inner(op, overlay, writes);
                    responses.push(response);
                    undos.push(undo);
                }
                undos.reverse();
                (KvResponse::Multi(responses), KvUndo::Multi(undos))
            }
            KvCommand::InstallRange(entries) => {
                let mut undos = Vec::new();
                for (key, value) in entries {
                    if self.staged_read(overlay, key).is_none() {
                        write(overlay, writes, key, Some(value.clone()));
                        undos.push(KvUndo::Restore {
                            key: key.clone(),
                            previous: None,
                        });
                    }
                }
                let installed = undos.len() as u64;
                undos.reverse();
                (KvResponse::Installed(installed), KvUndo::Multi(undos))
            }
        }
    }

    fn undo_inner(&mut self, token: KvUndo) {
        match token {
            KvUndo::Restore { key, previous } => match previous {
                Some(v) => {
                    self.map.insert(key, v);
                }
                None => {
                    self.map.remove(&key);
                }
            },
            KvUndo::Nothing => {}
            KvUndo::Multi(tokens) => {
                for token in tokens {
                    self.undo_inner(token);
                }
            }
        }
    }
}

/// The staged write-set of one command: `(key, new value)` pairs in op
/// order, `None` meaning the key is removed. Replaying them serially is
/// exactly the command's mutation.
#[derive(Debug)]
pub struct KvEffect {
    writes: Vec<(Key, Option<Value>)>,
}

/// Staged apply for the wave executor ([`oar::parallel::wave_apply`]):
/// `stage` computes response, undo and write-set against the wave-start
/// state (a private overlay gives `Multi` members their left-to-right
/// visibility), `commit` replays the writes. For commands whose key sets are
/// disjoint — the only ones a wave contains — this is bit-identical to
/// [`StateMachine::apply`].
impl ParallelStateMachine for KvMachine {
    type Effect = KvEffect;

    fn stage(&self, command: &KvCommand) -> (KvResponse, KvUndo, KvEffect) {
        let mut overlay = BTreeMap::new();
        let mut writes = Vec::new();
        let (response, undo) = self.stage_inner(command, &mut overlay, &mut writes);
        (response, undo, KvEffect { writes })
    }

    fn commit(&mut self, effect: KvEffect) {
        self.ops += 1;
        for (key, value) in effect.writes {
            match value {
                Some(v) => {
                    self.map.insert(key, v);
                }
                None => {
                    self.map.remove(&key);
                }
            }
        }
    }
}

impl StateMachine for KvMachine {
    type Command = KvCommand;
    type Response = KvResponse;
    type Undo = KvUndo;

    fn apply(&mut self, command: &KvCommand) -> (KvResponse, KvUndo) {
        self.ops += 1;
        self.apply_inner(command)
    }

    /// Conflict-graph wave scheduling: non-conflicting commands of the batch
    /// are staged concurrently across `workers` threads, bit-identically to
    /// the serial default (the differential proptests below pin this down).
    fn apply_batch(&mut self, commands: &[&KvCommand], workers: usize) -> AppliedBatch<Self> {
        oar::parallel::wave_apply(self, commands, workers)
    }

    fn undo(&mut self, token: KvUndo) {
        self.ops -= 1;
        self.undo_inner(token);
    }

    fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (k, v) in &self.map {
            for b in k.bytes().chain(v.bytes()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h = h.rotate_left(7);
        }
        h ^ self.ops
    }

    fn snapshot(&self) -> Option<StateImage> {
        Some(self.erased_snapshot())
    }

    fn install(&mut self, image: &StateImage) -> bool {
        self.install_erased(image)
    }

    fn fork(&self) -> Option<Self> {
        Some(self.clone())
    }

    fn command_key(command: &KvCommand) -> Option<&str> {
        match command {
            // Server-crafted; never door-checked against migrated ranges.
            KvCommand::InstallRange(_) => None,
            keyed => Some(keyed.key()),
        }
    }

    fn extract_range(&mut self, range: &oar::KeyRange) -> Option<Vec<(Key, Value)>> {
        let keys: Vec<Key> = self
            .map
            .keys()
            .filter(|k| range.contains(k))
            .cloned()
            .collect();
        Some(
            keys.into_iter()
                .map(|k| {
                    let v = self.map.remove(&k).expect("key just listed");
                    (k, v)
                })
                .collect(),
        )
    }

    fn install_range_command(entries: Vec<(Key, Value)>) -> Option<KvCommand> {
        Some(KvCommand::InstallRange(entries))
    }

    fn range_digest(&self, range: &oar::KeyRange) -> Option<u64> {
        let entries: Vec<(&Key, &Value)> =
            self.map.iter().filter(|(k, _)| range.contains(k)).collect();
        Some(oar::state_machine::entries_digest(&entries))
    }

    fn anti_entropy_leaves(&self) -> Option<Vec<(String, u64)>> {
        Some(
            self.map
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        oar::state_machine::entries_digest(&[("", v.as_str())]),
                    )
                })
                .collect(),
        )
    }

    fn anti_entropy_value(&self, key: &str) -> Option<String> {
        self.map.get(key).cloned()
    }

    fn anti_entropy_repair(&mut self, key: &str, value: Option<&str>) -> bool {
        match value {
            Some(v) => self.map.insert(key.to_string(), v.to_string()) != Some(v.to_string()),
            None => self.map.remove(key).is_some(),
        }
    }
}

/// Snapshots are a full copy of the store (map + op counter): in the
/// simulator a clone is the byte-buffer a real deployment would serialize.
impl Snapshottable for KvMachine {
    type Image = KvMachine;

    fn snapshot_image(&self) -> KvMachine {
        self.clone()
    }

    fn install_image(&mut self, image: &KvMachine) {
        *self = image.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(key: &str, value: &str) -> KvCommand {
        KvCommand::Put {
            key: key.into(),
            value: value.into(),
        }
    }

    #[test]
    fn put_get_delete_cycle() {
        let mut kv = KvMachine::new();
        let (r, _) = kv.apply(&put("a", "1"));
        assert_eq!(r, KvResponse::Previous(None));
        let (r, _) = kv.apply(&KvCommand::Get { key: "a".into() });
        assert_eq!(r, KvResponse::Value(Some("1".into())));
        let (r, _) = kv.apply(&put("a", "2"));
        assert_eq!(r, KvResponse::Previous(Some("1".into())));
        let (r, _) = kv.apply(&KvCommand::Delete { key: "a".into() });
        assert_eq!(r, KvResponse::Previous(Some("2".into())));
        assert!(kv.is_empty());
        assert_eq!(kv.operations(), 4);
    }

    #[test]
    fn shard_key_is_the_command_key() {
        assert_eq!(put("a", "1").key(), "a");
        assert_eq!(KvCommand::Get { key: "b".into() }.key(), "b");
        assert_eq!(KvCommand::Delete { key: "c".into() }.shard_key(), "c");
        assert_eq!(
            KvCommand::CompareAndSwap {
                key: "d".into(),
                expected: None,
                new: "v".into(),
            }
            .shard_key(),
            "d"
        );
    }

    #[test]
    fn compare_and_swap_success_and_failure() {
        let mut kv = KvMachine::new();
        kv.apply(&put("x", "old"));
        let (r, _) = kv.apply(&KvCommand::CompareAndSwap {
            key: "x".into(),
            expected: Some("old".into()),
            new: "new".into(),
        });
        assert_eq!(r, KvResponse::Swapped(true));
        let (r, _) = kv.apply(&KvCommand::CompareAndSwap {
            key: "x".into(),
            expected: Some("old".into()),
            new: "newer".into(),
        });
        assert_eq!(r, KvResponse::Swapped(false));
        assert_eq!(kv.get("x"), Some(&"new".to_string()));
    }

    #[test]
    fn cas_on_absent_key() {
        let mut kv = KvMachine::new();
        let (r, undo) = kv.apply(&KvCommand::CompareAndSwap {
            key: "k".into(),
            expected: None,
            new: "v".into(),
        });
        assert_eq!(r, KvResponse::Swapped(true));
        kv.undo(undo);
        assert!(kv.get("k").is_none());
    }

    #[test]
    fn multi_applies_atomically_and_counts_as_one_operation() {
        let mut kv = KvMachine::new();
        kv.apply(&put("a", "0"));
        let before = kv.digest();
        let ops_before = kv.operations();
        let (r, undo) = kv.apply(&KvCommand::Multi(vec![
            put("a", "1"),
            put("b", "2"),
            KvCommand::CompareAndSwap {
                key: "a".into(),
                expected: Some("1".into()),
                new: "1'".into(),
            },
            KvCommand::Get { key: "b".into() },
        ]));
        // Per-op responses in op order; later ops see earlier ops' writes.
        assert_eq!(
            r,
            KvResponse::Multi(vec![
                KvResponse::Previous(Some("0".into())),
                KvResponse::Previous(None),
                KvResponse::Swapped(true),
                KvResponse::Value(Some("2".into())),
            ])
        );
        assert_eq!(kv.get("a"), Some(&"1'".to_string()));
        assert_eq!(kv.operations(), ops_before + 1, "one delivery, one op");
        kv.undo(undo);
        assert_eq!(kv.digest(), before, "multi undo restores the exact state");
        assert_eq!(kv.get("a"), Some(&"0".to_string()));
        assert!(kv.get("b").is_none());
    }

    #[test]
    fn multi_routes_by_its_first_key() {
        let multi = KvCommand::Multi(vec![put("x", "1"), put("y", "2")]);
        assert_eq!(multi.key(), "x");
        assert_eq!(multi.shard_key(), "x");
    }

    /// Regression: a `Multi` must conflict on the **union** of its member
    /// keys. Keying it by its routing key (the first member's) would let
    /// `Multi[x,y]` share a wave with a command touching `y`.
    #[test]
    fn multi_conflicts_on_the_union_of_member_keys() {
        let multi = KvCommand::Multi(vec![put("x", "1"), put("y", "2")]);
        assert_eq!(multi.conflict_keys(), KeySet::Keys(vec!["x", "y"]));
        assert!(multi
            .conflict_keys()
            .intersects(&KvCommand::Get { key: "y".into() }.conflict_keys()));
        assert!(!multi
            .conflict_keys()
            .intersects(&KvCommand::Get { key: "z".into() }.conflict_keys()));
    }

    /// Regression: two `Multi`s with disjoint key sets schedule in the same
    /// wave, while a third overlapping one waits — with first-key-only
    /// granularity the planner would either miss the `b`–`b` conflict or
    /// serialise the disjoint pair, depending on the representative chosen.
    #[test]
    fn disjoint_key_multis_schedule_in_the_same_wave() {
        let batch = [
            KvCommand::Multi(vec![put("a", "1"), put("b", "2")]),
            KvCommand::Multi(vec![put("c", "3"), put("d", "4")]),
            KvCommand::Multi(vec![put("e", "5"), put("b", "6")]),
        ];
        let refs: Vec<&KvCommand> = batch.iter().collect();
        assert_eq!(oar::parallel::plan_waves(&refs), vec![vec![0, 1], vec![2]]);
    }

    /// stage + commit ≡ apply, command by command (the contract the wave
    /// executor relies on), including `Multi` members seeing earlier
    /// members' writes.
    #[test]
    fn stage_commit_matches_apply() {
        let commands = [
            put("a", "0"),
            KvCommand::Multi(vec![
                put("a", "1"),
                KvCommand::Get { key: "a".into() },
                KvCommand::Delete { key: "a".into() },
                KvCommand::Get { key: "a".into() },
            ]),
            KvCommand::CompareAndSwap {
                key: "b".into(),
                expected: None,
                new: "v".into(),
            },
            KvCommand::Delete { key: "b".into() },
        ];
        let mut staged = KvMachine::new();
        let mut serial = KvMachine::new();
        for command in &commands {
            let (r1, u1, effect) = staged.stage(command);
            staged.commit(effect);
            let (r2, u2) = serial.apply(command);
            assert_eq!(r1, r2, "{command:?}");
            assert_eq!(format!("{u1:?}"), format!("{u2:?}"), "{command:?}");
            assert_eq!(staged, serial, "{command:?}");
        }
    }

    /// The migration hand-off contract: extraction removes exactly the
    /// range, installation is insert-if-absent (a redirected write ordered
    /// before the install wins), undo restores, and donor/recipient range
    /// digests agree end to end.
    #[test]
    fn extract_install_range_roundtrip() {
        let range = oar::KeyRange::new("h", "p");
        let mut donor = KvMachine::new();
        for (k, v) in [
            ("apple", "0"),
            ("house", "1"),
            ("melon", "2"),
            ("zebra", "3"),
        ] {
            donor.apply(&put(k, v));
        }
        let donated = oar::state_machine::StateMachine::range_digest(&donor, &range).unwrap();
        let entries = donor.extract_range(&range).unwrap();
        assert_eq!(
            entries,
            vec![
                ("house".to_string(), "1".to_string()),
                ("melon".to_string(), "2".to_string()),
            ]
        );
        assert_eq!(donor.len(), 2, "extraction removes the range");
        assert_eq!(
            oar::state_machine::StateMachine::range_digest(&donor, &range).unwrap(),
            oar::state_machine::entries_digest::<&str, &str>(&[]),
            "donor's range is empty after extraction"
        );
        assert_eq!(oar::state_machine::entries_digest(&entries), donated);

        let mut recipient = KvMachine::new();
        // A redirected write ordered before the install must win.
        recipient.apply(&put("melon", "newer"));
        let install = KvMachine::install_range_command(entries).unwrap();
        assert!(KvMachine::command_key(&install).is_none());
        let before = recipient.clone();
        let (r, undo) = recipient.apply(&install);
        assert_eq!(r, KvResponse::Installed(1), "melon already present");
        assert_eq!(recipient.get("house"), Some(&"1".to_string()));
        assert_eq!(recipient.get("melon"), Some(&"newer".to_string()));
        recipient.undo(undo);
        assert_eq!(recipient, before);
    }

    /// Anti-entropy hooks: leaves cover the whole map, repair overwrites or
    /// removes, and a repaired value restores leaf equality.
    #[test]
    fn anti_entropy_hooks_roundtrip() {
        let mut a = KvMachine::new();
        let mut b = KvMachine::new();
        for (k, v) in [("x", "1"), ("y", "2")] {
            a.apply(&put(k, v));
            b.apply(&put(k, v));
        }
        assert_eq!(a.anti_entropy_leaves(), b.anti_entropy_leaves());
        assert!(b.anti_entropy_repair("y", Some("corrupted")));
        assert_ne!(a.anti_entropy_leaves(), b.anti_entropy_leaves());
        assert_eq!(b.anti_entropy_value("y"), Some("corrupted".to_string()));
        assert!(b.anti_entropy_repair("y", a.anti_entropy_value("y").as_deref()));
        assert!(!b.anti_entropy_repair("y", a.anti_entropy_value("y").as_deref()));
        assert_eq!(a.anti_entropy_leaves(), b.anti_entropy_leaves());
        assert!(b.anti_entropy_repair("y", None));
        assert!(b.anti_entropy_value("y").is_none());
    }

    #[test]
    fn undo_restores_previous_values() {
        let mut kv = KvMachine::new();
        kv.apply(&put("k", "v1"));
        let before = kv.digest();
        let (_, u1) = kv.apply(&put("k", "v2"));
        let (_, u2) = kv.apply(&KvCommand::Delete { key: "k".into() });
        kv.undo(u2);
        kv.undo(u1);
        assert_eq!(kv.get("k"), Some(&"v1".to_string()));
        assert_eq!(kv.digest(), before);
    }

    #[test]
    fn digest_differs_for_different_contents() {
        let mut a = KvMachine::new();
        let mut b = KvMachine::new();
        a.apply(&put("k", "1"));
        b.apply(&put("k", "2"));
        assert_ne!(a.digest(), b.digest());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_simple_command() -> impl Strategy<Value = KvCommand> {
        let key = prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(String::from);
        let value = "[a-z]{1,4}".prop_map(String::from);
        prop_oneof![
            (key.clone(), value.clone()).prop_map(|(key, value)| KvCommand::Put { key, value }),
            key.clone().prop_map(|key| KvCommand::Get { key }),
            key.clone().prop_map(|key| KvCommand::Delete { key }),
            (key, proptest::option::of(value.clone()), value).prop_map(|(key, expected, new)| {
                KvCommand::CompareAndSwap { key, expected, new }
            }),
        ]
    }

    fn arb_command() -> impl Strategy<Value = KvCommand> {
        // Simple commands listed three times to keep batches the minority,
        // as in a realistic transactional mix.
        prop_oneof![
            arb_simple_command(),
            arb_simple_command(),
            arb_simple_command(),
            proptest::collection::vec(arb_simple_command(), 1..5).prop_map(KvCommand::Multi),
        ]
    }

    proptest! {
        /// Reverse-order undo restores the exact initial state.
        #[test]
        fn apply_then_undo_roundtrip(commands in proptest::collection::vec(arb_command(), 0..30)) {
            let mut kv = KvMachine::new();
            kv.apply(&KvCommand::Put { key: "seed".into(), value: "1".into() });
            let before = kv.clone();
            let mut undos = Vec::new();
            for c in &commands {
                let (_, u) = kv.apply(c);
                undos.push(u);
            }
            for u in undos.into_iter().rev() {
                kv.undo(u);
            }
            prop_assert_eq!(kv, before);
        }

        /// Replicas applying the same commands converge.
        #[test]
        fn replicas_converge(commands in proptest::collection::vec(arb_command(), 0..30)) {
            let mut a = KvMachine::new();
            let mut b = KvMachine::new();
            for c in &commands {
                prop_assert_eq!(a.apply(c).0, b.apply(c).0);
            }
            prop_assert_eq!(a.digest(), b.digest());
        }

        /// The tentpole safety argument, differentially: for arbitrary
        /// command batches and worker counts, parallel apply is
        /// bit-identical to serial apply — same responses, same undo
        /// stack, same state. The 3-key universe of `arb_command` makes
        /// intra-batch conflicts (and conflicting `Multi`s) the common
        /// case, so the wave planner's ordering edges are exercised hard.
        #[test]
        fn parallel_apply_is_bit_identical_to_serial(
            commands in proptest::collection::vec(arb_command(), 0..40),
            workers in 0usize..6,
        ) {
            let refs: Vec<&KvCommand> = commands.iter().collect();
            let mut serial = KvMachine::new();
            let mut serial_results = Vec::with_capacity(refs.len());
            for c in &refs {
                serial_results.push(serial.apply(c));
            }
            let mut parallel = KvMachine::new();
            let out = oar::parallel::wave_apply(&mut parallel, &refs, workers);
            prop_assert_eq!(out.results.len(), serial_results.len());
            for ((rp, up), (rs, us)) in out.results.iter().zip(&serial_results) {
                prop_assert_eq!(rp, rs);
                // KvUndo carries no Eq on purpose; its Debug form is total.
                prop_assert_eq!(format!("{up:?}"), format!("{us:?}"));
            }
            prop_assert_eq!(&parallel, &serial);
            prop_assert_eq!(
                out.wave_sizes.iter().sum::<u64>(),
                refs.len() as u64
            );
            // And the undo stacks behave identically: rolling back the whole
            // batch in reverse delivery order restores the initial state.
            for (_, undo) in out.results.into_iter().rev() {
                parallel.undo(undo);
            }
            prop_assert_eq!(parallel, KvMachine::new());
        }
    }
}
