//! A per-op CPU cost wrapper for apply-stage benchmarks.
//!
//! Protocol-level machines like [`crate::kv::KvMachine`] apply commands in
//! nanoseconds, so the scheduling overhead of any parallel apply stage would
//! dwarf its benefit. Real services do work per command — validation,
//! serialisation, index maintenance — and that work is what a worker pool
//! parallelises. [`CostlyMachine`] models it: a deterministic spin of
//! tunable length runs inside every `apply`/`stage`, in the phase the wave
//! executor runs concurrently, while delegating all semantics (responses,
//! undo, digest, conflict keys) to the wrapped machine.
//!
//! Two cost components are available. The CPU **spin** models compute-bound
//! work and only speeds up with real cores; the **blocking** sleep models
//! apply stages dominated by synchronous I/O (a write-ahead fsync, a call to
//! an external store), which a worker pool overlaps even on a single-core
//! host. The parallel-apply benchmark uses the blocking component so its
//! speedup gate stays meaningful on minimal CI runners.

use oar::parallel::ParallelStateMachine;
use oar::state_machine::{AppliedBatch, ConflictKeys, StateImage, StateMachine};

/// Burns a deterministic amount of CPU: `rounds` iterations of the FNV-1a
/// step. Returned (and consumed via `std::hint::black_box`) so the optimiser
/// cannot elide the loop.
pub fn spin_work(rounds: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..rounds {
        h ^= i;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    std::hint::black_box(h)
}

/// A state machine that charges a fixed CPU cost per command before
/// delegating to the wrapped machine.
///
/// The cost runs in [`StateMachine::apply`] *and* in
/// [`ParallelStateMachine::stage`] — i.e. in the phase
/// [`oar::parallel::wave_apply`] distributes across its worker pool — so
/// serial and parallel execution pay identical per-op work and wall-clock
/// comparisons between them measure scheduling, not bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostlyMachine<S> {
    inner: S,
    spin_rounds: u64,
    block_us: u64,
}

impl<S> CostlyMachine<S> {
    /// Wraps `inner`, charging `spin_rounds` FNV rounds per command
    /// (`0` = free, useful as a control).
    pub fn new(inner: S, spin_rounds: u64) -> Self {
        CostlyMachine {
            inner,
            spin_rounds,
            block_us: 0,
        }
    }

    /// Wraps `inner`, charging `spin_rounds` FNV rounds *and* a blocking
    /// sleep of `block_us` microseconds per command — the I/O-bound cost
    /// model of the parallel-apply benchmark.
    pub fn with_blocking(inner: S, spin_rounds: u64, block_us: u64) -> Self {
        CostlyMachine {
            inner,
            spin_rounds,
            block_us,
        }
    }

    /// The wrapped machine.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The configured per-command CPU cost, in FNV rounds.
    pub fn spin_rounds(&self) -> u64 {
        self.spin_rounds
    }

    /// The configured per-command blocking cost, in microseconds.
    pub fn block_us(&self) -> u64 {
        self.block_us
    }

    /// Pays the per-command cost: the CPU spin, then the blocking sleep.
    fn charge(&self) {
        spin_work(self.spin_rounds);
        if self.block_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.block_us));
        }
    }
}

impl<S> StateMachine for CostlyMachine<S>
where
    S: ParallelStateMachine + Sync,
    S::Command: ConflictKeys + Sync,
    S::Response: Send,
    S::Undo: Send,
{
    type Command = S::Command;
    type Response = S::Response;
    type Undo = S::Undo;

    fn apply(&mut self, command: &Self::Command) -> (Self::Response, Self::Undo) {
        self.charge();
        self.inner.apply(command)
    }

    fn undo(&mut self, token: Self::Undo) {
        self.inner.undo(token);
    }

    fn digest(&self) -> u64 {
        self.inner.digest()
    }

    // Snapshots capture only the wrapped machine's state; the cost knobs are
    // construction-time configuration and survive an install unchanged.
    fn snapshot(&self) -> Option<StateImage> {
        self.inner.snapshot()
    }

    fn install(&mut self, image: &StateImage) -> bool {
        self.inner.install(image)
    }

    fn apply_batch(&mut self, commands: &[&Self::Command], workers: usize) -> AppliedBatch<Self> {
        oar::parallel::wave_apply(self, commands, workers)
    }
}

impl<S> ParallelStateMachine for CostlyMachine<S>
where
    S: ParallelStateMachine + Sync,
    S::Command: ConflictKeys + Sync,
    S::Response: Send,
    S::Undo: Send,
{
    type Effect = S::Effect;

    fn stage(&self, command: &Self::Command) -> (Self::Response, Self::Undo, Self::Effect) {
        self.charge();
        self.inner.stage(command)
    }

    fn commit(&mut self, effect: Self::Effect) {
        self.inner.commit(effect);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{KvCommand, KvMachine};

    fn put(key: &str, value: &str) -> KvCommand {
        KvCommand::Put {
            key: key.into(),
            value: value.into(),
        }
    }

    #[test]
    fn cost_wrapper_preserves_semantics() {
        let mut costly = CostlyMachine::new(KvMachine::new(), 100);
        let mut plain = KvMachine::new();
        for c in [put("a", "1"), put("b", "2"), put("a", "3")] {
            assert_eq!(costly.apply(&c).0, plain.apply(&c).0);
        }
        assert_eq!(costly.digest(), plain.digest());
    }

    #[test]
    fn parallel_apply_through_the_wrapper_matches_serial() {
        let batch = [put("a", "1"), put("b", "2"), put("c", "3"), put("a", "4")];
        let refs: Vec<&KvCommand> = batch.iter().collect();
        let mut serial = CostlyMachine::new(KvMachine::new(), 50);
        let expected: Vec<_> = refs.iter().map(|c| serial.apply(c).0).collect();
        let mut parallel = CostlyMachine::new(KvMachine::new(), 50);
        let out = parallel.apply_batch(&refs, 4);
        let got: Vec<_> = out.results.into_iter().map(|(r, _)| r).collect();
        assert_eq!(got, expected);
        assert_eq!(parallel, serial);
        // a,b,c share the first wave; the second a-put waits for the first.
        assert_eq!(out.wave_sizes, vec![3, 1]);
    }

    #[test]
    fn blocking_cost_preserves_semantics() {
        let mut blocking = CostlyMachine::with_blocking(KvMachine::new(), 0, 20);
        let mut plain = KvMachine::new();
        for c in [put("a", "1"), put("b", "2")] {
            assert_eq!(blocking.apply(&c).0, plain.apply(&c).0);
        }
        assert_eq!(blocking.digest(), plain.digest());
        assert_eq!(blocking.block_us(), 20);
    }

    #[test]
    fn spin_work_is_deterministic() {
        assert_eq!(spin_work(1000), spin_work(1000));
        assert_ne!(spin_work(10), spin_work(11));
    }
}
