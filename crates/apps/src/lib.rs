//! # oar-apps — replicated services for the OAR protocol
//!
//! Deterministic, undoable [`StateMachine`](oar::state_machine::StateMachine)
//! implementations used by the examples, the integration tests and the
//! experiment harness:
//!
//! * [`stack`] — the replicated stack of the paper's Figure 1, used to
//!   demonstrate external inconsistency on the unsafe baseline and its absence
//!   under OAR;
//! * [`kv`] — a key-value store with put/get/delete/compare-and-swap, the
//!   generic workload of the latency and throughput experiments;
//! * [`bank`] — accounts with deposits, withdrawals and transfers, where undo
//!   tokens play the role of the transactional save-points suggested by the
//!   paper's conclusion;
//! * [`cost`] — a wrapper charging a tunable CPU cost per command, modelling
//!   services whose apply stage is worth parallelising
//!   ([`oar::parallel`]).
//!
//! All services guarantee: determinism (identical command sequences produce
//! identical responses and digests) and exact rollback (reverse-order undo
//! restores the previous state), which is what `Opt-undeliver` requires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod cost;
pub mod kv;
pub mod stack;

pub use bank::{BankCommand, BankError, BankMachine, BankResponse};
pub use cost::{spin_work, CostlyMachine};
pub use kv::{KvCommand, KvEffect, KvMachine, KvResponse};
pub use stack::{StackCommand, StackMachine, StackResponse};
