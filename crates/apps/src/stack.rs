//! The replicated stack of the paper's Figure 1.
//!
//! The introduction of the OAR paper motivates external inconsistency with a
//! replicated stack: a client pushes `x`, another pops, and a mis-ordered
//! sequencer run makes one client observe a value that the final order
//! contradicts. This module implements that stack as a deterministic, undoable
//! [`StateMachine`] so the scenario can be replayed both on the unsafe
//! fixed-sequencer baseline (where the inconsistency shows up) and on OAR
//! (where it cannot).

use oar::state_machine::{Snapshottable, StateImage, StateMachine};

/// Commands of the replicated stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StackCommand {
    /// Push a value.
    Push(i64),
    /// Pop the top value (returns `None` when empty, like the paper's `pop():-`).
    Pop,
    /// Read the top value without removing it.
    Peek,
    /// Return the current depth.
    Len,
}

/// Responses of the replicated stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StackResponse {
    /// Result of a push: the new depth.
    Pushed(usize),
    /// Result of a pop: the removed value, if any.
    Popped(Option<i64>),
    /// Result of a peek.
    Top(Option<i64>),
    /// Result of a len query.
    Depth(usize),
}

/// Undo token of the stack.
#[derive(Clone, Debug)]
pub enum StackUndo {
    /// Undo a push: remove the top element.
    UnPush,
    /// Undo a pop that removed `0`: push the value back.
    UnPop(Option<i64>),
    /// Read-only command: nothing to undo.
    Nothing,
}

/// A deterministic, undoable LIFO stack.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StackMachine {
    items: Vec<i64>,
    ops: u64,
}

impl StackMachine {
    /// Creates an empty stack.
    pub fn new() -> Self {
        StackMachine::default()
    }

    /// The current contents, bottom first.
    pub fn items(&self) -> &[i64] {
        &self.items
    }

    /// Number of operations applied (and not undone).
    pub fn operations(&self) -> u64 {
        self.ops
    }
}

impl StateMachine for StackMachine {
    type Command = StackCommand;
    type Response = StackResponse;
    type Undo = StackUndo;

    fn apply(&mut self, command: &StackCommand) -> (StackResponse, StackUndo) {
        self.ops += 1;
        match command {
            StackCommand::Push(v) => {
                self.items.push(*v);
                (StackResponse::Pushed(self.items.len()), StackUndo::UnPush)
            }
            StackCommand::Pop => {
                let popped = self.items.pop();
                (StackResponse::Popped(popped), StackUndo::UnPop(popped))
            }
            StackCommand::Peek => (
                StackResponse::Top(self.items.last().copied()),
                StackUndo::Nothing,
            ),
            StackCommand::Len => (StackResponse::Depth(self.items.len()), StackUndo::Nothing),
        }
    }

    fn undo(&mut self, token: StackUndo) {
        self.ops -= 1;
        match token {
            StackUndo::UnPush => {
                self.items.pop();
            }
            StackUndo::UnPop(Some(v)) => self.items.push(v),
            StackUndo::UnPop(None) | StackUndo::Nothing => {}
        }
    }

    fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in &self.items {
            h ^= *v as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ self.ops
    }

    fn snapshot(&self) -> Option<StateImage> {
        Some(self.erased_snapshot())
    }

    fn install(&mut self, image: &StateImage) -> bool {
        self.install_erased(image)
    }

    fn fork(&self) -> Option<Self> {
        Some(self.clone())
    }
}

/// Snapshots are a full copy of the stack (items + op counter).
impl Snapshottable for StackMachine {
    type Image = StackMachine;

    fn snapshot_image(&self) -> StackMachine {
        self.clone()
    }

    fn install_image(&mut self, image: &StackMachine) {
        *self = image.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_good_run_semantics() {
        // Paper Fig. 1(a): stack contains {y}; order seq(pop; push(x)).
        let mut sm = StackMachine::new();
        sm.apply(&StackCommand::Push(7)); // y = 7
        let (pop_reply, _) = sm.apply(&StackCommand::Pop);
        assert_eq!(pop_reply, StackResponse::Popped(Some(7)));
        let (push_reply, _) = sm.apply(&StackCommand::Push(3)); // x = 3
        assert_eq!(push_reply, StackResponse::Pushed(1));
        assert_eq!(sm.items(), &[3]);
    }

    #[test]
    fn figure1_inconsistent_order_gives_different_replies() {
        // Paper Fig. 1(b): with the opposite order seq(push(x); pop), the pop
        // returns x — the reply the client must never adopt under OAR.
        let mut sm = StackMachine::new();
        sm.apply(&StackCommand::Push(7)); // y
        sm.apply(&StackCommand::Push(3)); // x first
        let (pop_reply, _) = sm.apply(&StackCommand::Pop);
        assert_eq!(pop_reply, StackResponse::Popped(Some(3)));
    }

    #[test]
    fn pop_on_empty_stack() {
        let mut sm = StackMachine::new();
        let (reply, undo) = sm.apply(&StackCommand::Pop);
        assert_eq!(reply, StackResponse::Popped(None));
        sm.undo(undo);
        assert_eq!(sm.items(), &[] as &[i64]);
        assert_eq!(sm.operations(), 0);
    }

    #[test]
    fn undo_restores_exact_state() {
        let mut sm = StackMachine::new();
        sm.apply(&StackCommand::Push(1));
        let before = sm.digest();
        let (_, u1) = sm.apply(&StackCommand::Push(2));
        let (_, u2) = sm.apply(&StackCommand::Pop);
        let (_, u3) = sm.apply(&StackCommand::Peek);
        sm.undo(u3);
        sm.undo(u2);
        sm.undo(u1);
        assert_eq!(sm.digest(), before);
        assert_eq!(sm.items(), &[1]);
    }

    #[test]
    fn peek_and_len_do_not_modify() {
        let mut sm = StackMachine::new();
        sm.apply(&StackCommand::Push(5));
        let (top, _) = sm.apply(&StackCommand::Peek);
        let (depth, _) = sm.apply(&StackCommand::Len);
        assert_eq!(top, StackResponse::Top(Some(5)));
        assert_eq!(depth, StackResponse::Depth(1));
        assert_eq!(sm.items(), &[5]);
    }

    #[test]
    fn determinism_across_replicas() {
        let script = [
            StackCommand::Push(1),
            StackCommand::Push(2),
            StackCommand::Pop,
            StackCommand::Push(3),
            StackCommand::Peek,
        ];
        let mut a = StackMachine::new();
        let mut b = StackMachine::new();
        for c in &script {
            assert_eq!(a.apply(c).0, b.apply(c).0);
        }
        assert_eq!(a.digest(), b.digest());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_command() -> impl Strategy<Value = StackCommand> {
        prop_oneof![
            (0i64..100).prop_map(StackCommand::Push),
            Just(StackCommand::Pop),
            Just(StackCommand::Peek),
            Just(StackCommand::Len),
        ]
    }

    proptest! {
        /// Applying a batch of commands and undoing them in reverse order
        /// restores the exact initial state — the contract `Opt-undeliver`
        /// relies on.
        #[test]
        fn apply_then_undo_roundtrip(commands in proptest::collection::vec(arb_command(), 0..40)) {
            let mut sm = StackMachine::new();
            sm.apply(&StackCommand::Push(42));
            let before_items = sm.items().to_vec();
            let before_digest = sm.digest();
            let mut undos = Vec::new();
            for c in &commands {
                let (_, u) = sm.apply(c);
                undos.push(u);
            }
            for u in undos.into_iter().rev() {
                sm.undo(u);
            }
            prop_assert_eq!(sm.items(), &before_items[..]);
            prop_assert_eq!(sm.digest(), before_digest);
        }

        /// Two replicas applying the same command sequence stay identical.
        #[test]
        fn replicas_converge(commands in proptest::collection::vec(arb_command(), 0..40)) {
            let mut a = StackMachine::new();
            let mut b = StackMachine::new();
            for c in &commands {
                prop_assert_eq!(a.apply(c).0, b.apply(c).0);
            }
            prop_assert_eq!(a.digest(), b.digest());
            prop_assert_eq!(a.items(), b.items());
        }
    }
}
