//! # oar-fd — heartbeat failure detector
//!
//! The OAR algorithm relies on an unreliable failure detector in two places:
//!
//! * **Task 1c** (Fig. 6, line 20): a server that suspects the sequencer
//!   R-broadcasts `(k, PhaseII)` to move the group to the conservative phase;
//! * the **consensus oracle** (§3): the Chandra–Toueg consensus used by
//!   `Cnsv-order` is solvable with ♦S and a majority of correct processes.
//!
//! This crate implements the standard heartbeat/timeout construction: every
//! process periodically sends a heartbeat to every other process of the group
//! and suspects a process from which it has not heard for `timeout`. In the
//! simulated asynchronous-but-eventually-timely network this detector is
//! complete (crashed processes are eventually suspected by everyone) and
//! eventually accurate once message delays stabilise below the timeout — i.e.
//! it behaves like ♦S, and like a real LAN detector it can *wrongly* suspect
//! slow processes, which is exactly the behaviour the OAR paper is designed to
//! tolerate (wrong suspicions cost performance, never consistency).
//!
//! For experiments, wrong suspicions can also be injected directly with
//! [`HeartbeatFd::force_suspect`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeSet, HashMap};

use oar_channels::Outgoing;
use oar_simnet::{ProcessId, SimDuration, SimTime};

/// Wire messages of the failure detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FdWire {
    /// "I am alive."
    Heartbeat,
}

/// A change in the suspect set, reported to the host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FdEvent {
    /// The process is now suspected.
    Suspect(ProcessId),
    /// The process is no longer suspected (a message from it arrived after it
    /// had been suspected — a *wrong* suspicion was corrected).
    Restore(ProcessId),
}

/// Configuration of the heartbeat failure detector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FdConfig {
    /// Interval between two heartbeats sent to every peer.
    pub heartbeat_interval: SimDuration,
    /// A peer silent for longer than this is suspected.
    pub timeout: SimDuration,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig {
            heartbeat_interval: SimDuration::from_millis(5),
            timeout: SimDuration::from_millis(25),
        }
    }
}

impl FdConfig {
    /// A configuration with the given timeout and a heartbeat interval of one
    /// fifth of it.
    pub fn with_timeout(timeout: SimDuration) -> Self {
        FdConfig {
            heartbeat_interval: SimDuration::from_micros((timeout.as_micros() / 5).max(1)),
            timeout,
        }
    }
}

/// Heartbeat-based failure detector monitoring the members of a group.
///
/// The host drives it by calling [`HeartbeatFd::on_tick`] periodically (at
/// least as often as `heartbeat_interval`) and [`HeartbeatFd::on_wire`] /
/// [`HeartbeatFd::observe_traffic`] when messages arrive.
#[derive(Clone, Debug)]
pub struct HeartbeatFd {
    self_id: ProcessId,
    group: Vec<ProcessId>,
    config: FdConfig,
    last_heard: HashMap<ProcessId, SimTime>,
    last_heartbeat_sent: Option<SimTime>,
    suspected: BTreeSet<ProcessId>,
    started_at: Option<SimTime>,
}

impl HeartbeatFd {
    /// Creates a detector for process `self_id` monitoring `group`.
    pub fn new(self_id: ProcessId, group: Vec<ProcessId>, config: FdConfig) -> Self {
        HeartbeatFd {
            self_id,
            group,
            config,
            last_heard: HashMap::new(),
            last_heartbeat_sent: None,
            suspected: BTreeSet::new(),
            started_at: None,
        }
    }

    /// The current suspect set (the paper's `D_p`).
    pub fn suspects(&self) -> &BTreeSet<ProcessId> {
        &self.suspected
    }

    /// Returns `true` if `p` is currently suspected.
    pub fn is_suspected(&self, p: ProcessId) -> bool {
        self.suspected.contains(&p)
    }

    /// The detector configuration.
    pub fn config(&self) -> FdConfig {
        self.config
    }

    /// Records that a (protocol or heartbeat) message from `from` was received
    /// at `now`; any suspicion of `from` is revoked.
    ///
    /// Counting protocol traffic as liveness evidence keeps the detector quiet
    /// on busy links, exactly like practical implementations do.
    pub fn observe_traffic(&mut self, from: ProcessId, now: SimTime) -> Vec<FdEvent> {
        if from == self.self_id || !self.group.contains(&from) {
            return Vec::new();
        }
        self.last_heard.insert(from, now);
        if self.suspected.remove(&from) {
            vec![FdEvent::Restore(from)]
        } else {
            Vec::new()
        }
    }

    /// Handles a failure-detector wire message.
    pub fn on_wire(&mut self, from: ProcessId, _wire: FdWire, now: SimTime) -> Vec<FdEvent> {
        self.observe_traffic(from, now)
    }

    /// Periodic maintenance: sends heartbeats when due and re-evaluates
    /// timeouts. Returns the heartbeats to send and any suspicion changes.
    pub fn on_tick(&mut self, now: SimTime) -> (Vec<Outgoing<FdWire>>, Vec<FdEvent>) {
        if self.started_at.is_none() {
            self.started_at = Some(now);
            // Give every peer a full timeout of grace from startup.
            for &p in &self.group {
                if p != self.self_id {
                    self.last_heard.entry(p).or_insert(now);
                }
            }
        }

        let mut out = Vec::new();
        let due = match self.last_heartbeat_sent {
            None => true,
            Some(at) => now.duration_since(at) >= self.config.heartbeat_interval,
        };
        if due {
            self.last_heartbeat_sent = Some(now);
            for &p in &self.group {
                if p != self.self_id {
                    out.push(Outgoing::new(p, FdWire::Heartbeat));
                }
            }
        }

        let mut events = Vec::new();
        for &p in &self.group {
            if p == self.self_id || self.suspected.contains(&p) {
                continue;
            }
            let heard = self.last_heard.get(&p).copied().unwrap_or(now);
            if now.duration_since(heard) >= self.config.timeout {
                self.suspected.insert(p);
                events.push(FdEvent::Suspect(p));
            }
        }
        (out, events)
    }

    /// Replaces monitored member `old` by `new` in place (membership
    /// reconfiguration, `Reconfig::Replace`). The fenced-out replica is
    /// scrubbed entirely: it leaves the heartbeat targets, the suspect set
    /// and the liveness table, so a permanently dead process is no longer
    /// re-pinged forever. The newcomer starts with a full timeout of grace
    /// from `now`, like a peer at startup. Returns whether `old` was a
    /// member (the slot order of the survivors is preserved).
    pub fn replace_member(&mut self, old: ProcessId, new: ProcessId, now: SimTime) -> bool {
        let Some(slot) = self.group.iter().position(|&p| p == old) else {
            return false;
        };
        self.group[slot] = new;
        self.suspected.remove(&old);
        self.last_heard.remove(&old);
        if new != self.self_id {
            self.last_heard.insert(new, now);
        }
        true
    }

    /// Forces `p` into the suspect set (wrong-suspicion injection for
    /// experiments). Returns the corresponding event if `p` was not already
    /// suspected.
    pub fn force_suspect(&mut self, p: ProcessId) -> Option<FdEvent> {
        if p == self.self_id || !self.group.contains(&p) {
            return None;
        }
        if self.suspected.insert(p) {
            Some(FdEvent::Suspect(p))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);
    const P2: ProcessId = ProcessId::new(2);

    fn group() -> Vec<ProcessId> {
        vec![P0, P1, P2]
    }

    fn config() -> FdConfig {
        FdConfig {
            heartbeat_interval: SimDuration::from_millis(5),
            timeout: SimDuration::from_millis(20),
        }
    }

    #[test]
    fn heartbeats_are_sent_periodically() {
        let mut fd = HeartbeatFd::new(P0, group(), config());
        let (hb1, _) = fd.on_tick(SimTime::from_millis(0));
        assert_eq!(hb1.len(), 2);
        // too early: no new heartbeats
        let (hb2, _) = fd.on_tick(SimTime::from_millis(2));
        assert!(hb2.is_empty());
        let (hb3, _) = fd.on_tick(SimTime::from_millis(5));
        assert_eq!(hb3.len(), 2);
    }

    #[test]
    fn silent_peer_is_suspected_after_timeout() {
        let mut fd = HeartbeatFd::new(P0, group(), config());
        fd.on_tick(SimTime::from_millis(0));
        // p1 keeps talking, p2 stays silent
        fd.on_wire(P1, FdWire::Heartbeat, SimTime::from_millis(10));
        let (_, events) = fd.on_tick(SimTime::from_millis(21));
        assert_eq!(events, vec![FdEvent::Suspect(P2)]);
        assert!(fd.is_suspected(P2));
        assert!(!fd.is_suspected(P1));
        // no duplicate suspicion events
        let (_, events) = fd.on_tick(SimTime::from_millis(30));
        assert!(events.iter().all(|e| *e != FdEvent::Suspect(P2)));
    }

    #[test]
    fn wrong_suspicion_is_corrected_on_new_traffic() {
        let mut fd = HeartbeatFd::new(P0, group(), config());
        fd.on_tick(SimTime::from_millis(0));
        let (_, events) = fd.on_tick(SimTime::from_millis(25));
        assert!(events.contains(&FdEvent::Suspect(P1)));
        let events = fd.on_wire(P1, FdWire::Heartbeat, SimTime::from_millis(26));
        assert_eq!(events, vec![FdEvent::Restore(P1)]);
        assert!(!fd.is_suspected(P1));
    }

    #[test]
    fn protocol_traffic_counts_as_liveness() {
        let mut fd = HeartbeatFd::new(P0, group(), config());
        fd.on_tick(SimTime::from_millis(0));
        fd.observe_traffic(P2, SimTime::from_millis(15));
        let (_, events) = fd.on_tick(SimTime::from_millis(25));
        assert!(events.contains(&FdEvent::Suspect(P1)));
        assert!(!events.contains(&FdEvent::Suspect(P2)));
    }

    #[test]
    fn traffic_from_strangers_and_self_is_ignored() {
        let mut fd = HeartbeatFd::new(P0, group(), config());
        fd.on_tick(SimTime::ZERO);
        assert!(fd.observe_traffic(P0, SimTime::from_millis(1)).is_empty());
        assert!(fd
            .observe_traffic(ProcessId::new(9), SimTime::from_millis(1))
            .is_empty());
    }

    #[test]
    fn force_suspect_injects_wrong_suspicion() {
        let mut fd = HeartbeatFd::new(P0, group(), config());
        assert_eq!(fd.force_suspect(P1), Some(FdEvent::Suspect(P1)));
        assert_eq!(fd.force_suspect(P1), None);
        assert_eq!(fd.force_suspect(P0), None);
        assert_eq!(fd.force_suspect(ProcessId::new(9)), None);
        assert!(fd.is_suspected(P1));
    }

    #[test]
    fn grace_period_at_startup() {
        let mut fd = HeartbeatFd::new(P0, group(), config());
        // first tick at a late absolute time: peers get a full timeout of grace
        let (_, events) = fd.on_tick(SimTime::from_secs(10));
        assert!(events.is_empty());
        let (_, events) = fd.on_tick(SimTime::from_secs(10) + SimDuration::from_millis(19));
        assert!(events.is_empty());
        let (_, events) = fd.on_tick(SimTime::from_secs(10) + SimDuration::from_millis(21));
        assert_eq!(events.len(), 2);
    }

    /// Regression: before membership reconfiguration existed, a permanently
    /// dead replica stayed in the group forever — re-pinged on every tick and
    /// pinned in the suspect set. `replace_member` must scrub it entirely and
    /// admit the newcomer with startup grace.
    #[test]
    fn replace_member_scrubs_fenced_replica() {
        const P3: ProcessId = ProcessId::new(3);
        let mut fd = HeartbeatFd::new(P0, group(), config());
        fd.on_tick(SimTime::from_millis(0));
        let (_, events) = fd.on_tick(SimTime::from_millis(25));
        assert!(events.contains(&FdEvent::Suspect(P2)));
        assert!(fd.replace_member(P2, P3, SimTime::from_millis(25)));
        // The fenced replica is gone from the suspect set and from the
        // heartbeat targets; the newcomer is pinged instead.
        assert!(!fd.is_suspected(P2));
        let (hb, events) = fd.on_tick(SimTime::from_millis(30));
        let targets: Vec<ProcessId> = hb.iter().map(|o| o.to).collect();
        assert!(
            !targets.contains(&P2),
            "fenced replica must not be re-pinged"
        );
        assert!(targets.contains(&P3));
        assert!(events.is_empty());
        // Grace period: the newcomer is only suspected a full timeout after
        // the reconfiguration, not instantly.
        let (_, events) = fd.on_tick(SimTime::from_millis(44));
        assert!(!events.contains(&FdEvent::Suspect(P3)));
        let (_, events) = fd.on_tick(SimTime::from_millis(46));
        assert!(events.contains(&FdEvent::Suspect(P3)));
        // Stale traffic from the fenced replica is ignored again.
        assert!(fd.observe_traffic(P2, SimTime::from_millis(47)).is_empty());
        // Replacing a non-member is a no-op.
        assert!(!fd.replace_member(P2, ProcessId::new(9), SimTime::from_millis(48)));
    }

    #[test]
    fn with_timeout_derives_interval() {
        let cfg = FdConfig::with_timeout(SimDuration::from_millis(50));
        assert_eq!(cfg.timeout, SimDuration::from_millis(50));
        assert_eq!(cfg.heartbeat_interval, SimDuration::from_millis(10));
    }
}
