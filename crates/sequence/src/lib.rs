//! Sequence algebra for the Optimistic Active Replication (OAR) protocol.
//!
//! The OAR paper (Felber & Schiper, ICDCS 2001, §5.1) manipulates *sequences of
//! messages* with four operators:
//!
//! * `seq1 ⊕ seq2` — concatenation: all messages of `seq1` followed by all
//!   messages of `seq2` (here: [`Seq::concat`], also the `+` operator);
//! * `seq1 ⊖ seq2` — decomposition: all messages of `seq1` that are **not**
//!   in `seq2` (here: [`Seq::subtract`]);
//! * `⊓(seq1, …, seqn)` — the longest common prefix of a set of sequences
//!   (here: [`Seq::common_prefix`] / [`common_prefix_all`]);
//! * `⊎(seq1, …, seqn)` — append all sequences together, removing duplicates
//!   (here: [`dedup_append`]).
//!
//! Sequences also support the implicit conversion to sets used by the paper for
//! the `∈`, `∩`, `∪` operators ([`Seq::contains`], [`Seq::intersection`],
//! [`Seq::union_set`]).
//!
//! The algebra is generic over the element type so that it can be unit-tested and
//! property-tested with small types (`u32`) while the protocol instantiates it
//! with message identifiers.
//!
//! # Examples
//!
//! ```
//! use oar_sequence::{Seq, dedup_append};
//!
//! let a: Seq<u32> = Seq::from(vec![1, 2, 3]);
//! let b: Seq<u32> = Seq::from(vec![3, 4]);
//!
//! assert_eq!(a.clone().concat(&b).as_slice(), &[1, 2, 3, 3, 4]);
//! assert_eq!(a.subtract(&b).as_slice(), &[1, 2]);
//! assert_eq!(a.common_prefix(&Seq::from(vec![1, 2, 5])).as_slice(), &[1, 2]);
//! assert_eq!(dedup_append([a, b]).as_slice(), &[1, 2, 3, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Add, Index};

use serde::{Deserialize, Serialize};

/// An ordered sequence of elements, the basic data structure of the OAR protocol.
///
/// `Seq<T>` is a thin, intention-revealing wrapper around `Vec<T>` that provides
/// the paper's operators (`⊕`, `⊖`, `⊓`, `⊎`) as well as prefix/suffix queries
/// used in the correctness arguments.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Seq<T> {
    items: Vec<T>,
}

impl<T> Default for Seq<T> {
    fn default() -> Self {
        Seq { items: Vec::new() }
    }
}

impl<T: fmt::Debug> fmt::Debug for Seq<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Seq")?;
        f.debug_list().entries(self.items.iter()).finish()
    }
}

impl<T: fmt::Display> fmt::Display for Seq<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

impl<T> Seq<T> {
    /// Creates an empty sequence (the paper's `ε`).
    pub fn new() -> Self {
        Seq { items: Vec::new() }
    }

    /// Creates an empty sequence with room for `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        Seq {
            items: Vec::with_capacity(capacity),
        }
    }

    /// Returns the number of elements in the sequence.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the sequence contains no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns the elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Returns an iterator over the elements, in order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Appends a single element at the end of the sequence.
    pub fn push(&mut self, item: T) {
        self.items.push(item);
    }

    /// Returns the first element, if any.
    pub fn first(&self) -> Option<&T> {
        self.items.first()
    }

    /// Returns the last element, if any.
    pub fn last(&self) -> Option<&T> {
        self.items.last()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Consumes the sequence and returns the underlying vector.
    pub fn into_inner(self) -> Vec<T> {
        self.items
    }
}

impl<T: Clone + PartialEq> Seq<T> {
    /// `self ⊕ other` — concatenation of two sequences.
    ///
    /// All elements of `self` followed by all elements of `other`. Duplicates
    /// are **not** removed; see [`dedup_append`] for the `⊎` operator.
    #[must_use]
    pub fn concat(&self, other: &Seq<T>) -> Seq<T> {
        let mut items = Vec::with_capacity(self.items.len() + other.items.len());
        items.extend_from_slice(&self.items);
        items.extend_from_slice(&other.items);
        Seq { items }
    }

    /// `self ⊖ other` — all elements of `self` that are not in `other`,
    /// preserving the order of `self`.
    #[must_use]
    pub fn subtract(&self, other: &Seq<T>) -> Seq<T> {
        Seq {
            items: self
                .items
                .iter()
                .filter(|m| !other.items.contains(m))
                .cloned()
                .collect(),
        }
    }

    /// `⊓(self, other)` — the longest common prefix of the two sequences.
    #[must_use]
    pub fn common_prefix(&self, other: &Seq<T>) -> Seq<T> {
        let mut items = Vec::new();
        for (a, b) in self.items.iter().zip(other.items.iter()) {
            if a == b {
                items.push(a.clone());
            } else {
                break;
            }
        }
        Seq { items }
    }

    /// Returns `true` if `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &Seq<T>) -> bool {
        self.items.len() <= other.items.len()
            && self.items.iter().zip(other.items.iter()).all(|(a, b)| a == b)
    }

    /// Returns `true` if `self` is a suffix of `other`.
    pub fn is_suffix_of(&self, other: &Seq<T>) -> bool {
        if self.items.len() > other.items.len() {
            return false;
        }
        let start = other.items.len() - self.items.len();
        self.items
            .iter()
            .zip(other.items[start..].iter())
            .all(|(a, b)| a == b)
    }

    /// Returns `true` if the sequence contains `item` (the paper's `m ∈ seq`).
    pub fn contains(&self, item: &T) -> bool {
        self.items.contains(item)
    }

    /// Returns the position (0-based) of `item` in the sequence, if present.
    pub fn position(&self, item: &T) -> Option<usize> {
        self.items.iter().position(|m| m == item)
    }

    /// The elements that are in both `self` and `other`, in `self`'s order
    /// (the paper's `seq1 ∩ seq2` with the implicit sequence→set conversion).
    #[must_use]
    pub fn intersection(&self, other: &Seq<T>) -> Seq<T> {
        Seq {
            items: self
                .items
                .iter()
                .filter(|m| other.items.contains(m))
                .cloned()
                .collect(),
        }
    }

    /// Returns `true` if `self` and `other` have no element in common
    /// (the paper's `seq1 ∩ seq2 = ∅`).
    pub fn is_disjoint(&self, other: &Seq<T>) -> bool {
        self.items.iter().all(|m| !other.items.contains(m))
    }

    /// Set-union of the two sequences: `self` followed by the elements of
    /// `other` not already present (the paper's `seq1 ∪ seq2`).
    #[must_use]
    pub fn union_set(&self, other: &Seq<T>) -> Seq<T> {
        let mut result = self.clone();
        for item in &other.items {
            if !result.contains(item) {
                result.push(item.clone());
            }
        }
        result
    }

    /// Removes and returns the first `n` elements as a new sequence, keeping
    /// the remainder in `self`.
    pub fn split_prefix(&mut self, n: usize) -> Seq<T> {
        let n = n.min(self.items.len());
        let rest = self.items.split_off(n);
        let prefix = std::mem::replace(&mut self.items, rest);
        Seq { items: prefix }
    }

    /// Returns the suffix of `self` starting at position `n`.
    #[must_use]
    pub fn suffix_from(&self, n: usize) -> Seq<T> {
        Seq {
            items: self.items.iter().skip(n).cloned().collect(),
        }
    }

    /// Returns a copy of the sequence with duplicates removed, keeping the
    /// first occurrence of each element.
    #[must_use]
    pub fn dedup_keep_first(&self) -> Seq<T> {
        let mut out = Seq::new();
        for item in &self.items {
            if !out.contains(item) {
                out.push(item.clone());
            }
        }
        out
    }
}

impl<T: Clone + Ord> Seq<T> {
    /// Returns the set of elements of the sequence as a `BTreeSet`.
    pub fn to_set(&self) -> BTreeSet<T> {
        self.items.iter().cloned().collect()
    }
}

/// `⊎(seqs…)` — appends all sequences together, removing duplicates, keeping the
/// first occurrence of each element.
///
/// This is the paper's `⊎` operator, defined recursively as
/// `⊎(s1, …, si+1) = ⊎(s1, …, si) ⊕ (si+1 ⊖ ⊎(s1, …, si))`.
pub fn dedup_append<T, I>(seqs: I) -> Seq<T>
where
    T: Clone + PartialEq,
    I: IntoIterator<Item = Seq<T>>,
{
    let mut out = Seq::new();
    for seq in seqs {
        for item in seq.items {
            if !out.contains(&item) {
                out.push(item);
            }
        }
    }
    out
}

/// `⊓(seqs…)` — the longest common prefix of all the given sequences.
///
/// Returns the empty sequence if the iterator is empty.
pub fn common_prefix_all<'a, T, I>(seqs: I) -> Seq<T>
where
    T: Clone + PartialEq + 'a,
    I: IntoIterator<Item = &'a Seq<T>>,
{
    let mut iter = seqs.into_iter();
    let Some(first) = iter.next() else {
        return Seq::new();
    };
    let mut acc = first.clone();
    for seq in iter {
        acc = acc.common_prefix(seq);
        if acc.is_empty() {
            break;
        }
    }
    acc
}

/// Returns the longest sequence among `seqs`.
///
/// Ties are broken in favour of the first maximum encountered, which matches
/// the paper's `dlv_max` selection (line 5 of Fig. 7): the candidates are
/// guaranteed by Lemma 2 to be prefixes of each other, so equal-length
/// candidates are equal.
pub fn longest<'a, T, I>(seqs: I) -> Option<&'a Seq<T>>
where
    T: 'a,
    I: IntoIterator<Item = &'a Seq<T>>,
{
    let mut best: Option<&Seq<T>> = None;
    for seq in seqs {
        match best {
            None => best = Some(seq),
            Some(b) if seq.len() > b.len() => best = Some(seq),
            _ => {}
        }
    }
    best
}

impl<T> From<Vec<T>> for Seq<T> {
    fn from(items: Vec<T>) -> Self {
        Seq { items }
    }
}

impl<T: Clone> From<&[T]> for Seq<T> {
    fn from(items: &[T]) -> Self {
        Seq {
            items: items.to_vec(),
        }
    }
}

impl<T> FromIterator<T> for Seq<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Seq {
            items: iter.into_iter().collect(),
        }
    }
}

impl<T> Extend<T> for Seq<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

impl<T> IntoIterator for Seq<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Seq<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<T> Index<usize> for Seq<T> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        &self.items[index]
    }
}

impl<T: Clone + PartialEq> Add<&Seq<T>> for Seq<T> {
    type Output = Seq<T>;

    /// `a + &b` is the paper's `a ⊕ b`.
    fn add(self, rhs: &Seq<T>) -> Seq<T> {
        self.concat(rhs)
    }
}

/// Convenience macro for building a [`Seq`] from a list of elements.
///
/// ```
/// use oar_sequence::{seq, Seq};
/// let s: Seq<u32> = seq![1, 2, 3];
/// assert_eq!(s.len(), 3);
/// ```
#[macro_export]
macro_rules! seq {
    () => { $crate::Seq::new() };
    ($($x:expr),+ $(,)?) => {
        $crate::Seq::from(vec![$($x),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[u32]) -> Seq<u32> {
        Seq::from(items)
    }

    #[test]
    fn empty_sequence_properties() {
        let e: Seq<u32> = Seq::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.first(), None);
        assert_eq!(e.last(), None);
        assert_eq!(format!("{e}"), "{}");
    }

    #[test]
    fn concat_is_paper_oplus() {
        assert_eq!(s(&[1, 2]).concat(&s(&[3])), s(&[1, 2, 3]));
        assert_eq!(s(&[]).concat(&s(&[3])), s(&[3]));
        assert_eq!(s(&[1]).concat(&s(&[])), s(&[1]));
        // ⊕ keeps duplicates
        assert_eq!(s(&[1]).concat(&s(&[1])), s(&[1, 1]));
    }

    #[test]
    fn add_operator_is_concat() {
        assert_eq!(s(&[1, 2]) + &s(&[3, 4]), s(&[1, 2, 3, 4]));
    }

    #[test]
    fn subtract_is_paper_ominus() {
        assert_eq!(s(&[1, 2, 3, 4]).subtract(&s(&[2, 4])), s(&[1, 3]));
        assert_eq!(s(&[1, 2]).subtract(&s(&[])), s(&[1, 2]));
        assert_eq!(s(&[]).subtract(&s(&[1])), s(&[]));
        assert_eq!(s(&[1, 2]).subtract(&s(&[1, 2])), s(&[]));
        // subtraction removes *all* occurrences
        assert_eq!(s(&[1, 2, 1]).subtract(&s(&[1])), s(&[2]));
    }

    #[test]
    fn common_prefix_pairs() {
        assert_eq!(s(&[1, 2, 3]).common_prefix(&s(&[1, 2, 4])), s(&[1, 2]));
        assert_eq!(s(&[1, 2]).common_prefix(&s(&[3, 4])), s(&[]));
        assert_eq!(s(&[1, 2]).common_prefix(&s(&[1, 2])), s(&[1, 2]));
        assert_eq!(s(&[]).common_prefix(&s(&[1])), s(&[]));
    }

    #[test]
    fn common_prefix_all_of_many() {
        let a = s(&[1, 2, 3, 4]);
        let b = s(&[1, 2, 3]);
        let c = s(&[1, 2, 5]);
        assert_eq!(common_prefix_all([&a, &b, &c]), s(&[1, 2]));
        assert_eq!(common_prefix_all::<u32, [&Seq<u32>; 0]>([]), s(&[]));
        assert_eq!(common_prefix_all([&a]), a);
    }

    #[test]
    fn dedup_append_is_paper_uplus() {
        let out = dedup_append([s(&[1, 2]), s(&[2, 3]), s(&[3, 4, 1])]);
        assert_eq!(out, s(&[1, 2, 3, 4]));
        let empty: Vec<Seq<u32>> = vec![];
        assert_eq!(dedup_append(empty), s(&[]));
    }

    #[test]
    fn dedup_append_matches_recursive_definition() {
        // ⊎(s1, s2) = s1 ⊕ (s2 ⊖ s1)
        let s1 = s(&[5, 1, 2]);
        let s2 = s(&[2, 7, 5, 9]);
        assert_eq!(dedup_append([s1.clone(), s2.clone()]), s1.concat(&s2.subtract(&s1)));
    }

    #[test]
    fn prefix_and_suffix_checks() {
        assert!(s(&[1, 2]).is_prefix_of(&s(&[1, 2, 3])));
        assert!(!s(&[2]).is_prefix_of(&s(&[1, 2, 3])));
        assert!(s(&[]).is_prefix_of(&s(&[1])));
        assert!(s(&[2, 3]).is_suffix_of(&s(&[1, 2, 3])));
        assert!(!s(&[1, 2]).is_suffix_of(&s(&[1, 2, 3])));
        assert!(s(&[]).is_suffix_of(&s(&[])));
        assert!(!s(&[1, 2, 3, 4]).is_suffix_of(&s(&[3, 4])));
    }

    #[test]
    fn membership_and_position() {
        let a = s(&[4, 7, 9]);
        assert!(a.contains(&7));
        assert!(!a.contains(&8));
        assert_eq!(a.position(&9), Some(2));
        assert_eq!(a.position(&1), None);
    }

    #[test]
    fn intersection_and_disjoint() {
        assert_eq!(s(&[1, 2, 3]).intersection(&s(&[3, 1])), s(&[1, 3]));
        assert!(s(&[1, 2]).is_disjoint(&s(&[3, 4])));
        assert!(!s(&[1, 2]).is_disjoint(&s(&[2])));
        assert!(s(&[]).is_disjoint(&s(&[])));
    }

    #[test]
    fn union_set_keeps_first_occurrences() {
        assert_eq!(s(&[1, 2]).union_set(&s(&[2, 3])), s(&[1, 2, 3]));
    }

    #[test]
    fn split_prefix_and_suffix_from() {
        let mut a = s(&[1, 2, 3, 4]);
        let prefix = a.split_prefix(2);
        assert_eq!(prefix, s(&[1, 2]));
        assert_eq!(a, s(&[3, 4]));
        let b = s(&[1, 2, 3]);
        assert_eq!(b.suffix_from(1), s(&[2, 3]));
        assert_eq!(b.suffix_from(5), s(&[]));
        let mut c = s(&[1]);
        assert_eq!(c.split_prefix(10), s(&[1]));
        assert_eq!(c, s(&[]));
    }

    #[test]
    fn longest_selects_max_length() {
        let a = s(&[1]);
        let b = s(&[1, 2, 3]);
        let c = s(&[1, 2]);
        assert_eq!(longest([&a, &b, &c]), Some(&b));
        assert_eq!(longest::<u32, [&Seq<u32>; 0]>([]), None);
    }

    #[test]
    fn dedup_keep_first_works() {
        assert_eq!(s(&[1, 2, 1, 3, 2]).dedup_keep_first(), s(&[1, 2, 3]));
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(format!("{}", s(&[1, 2, 3])), "{1;2;3}");
    }

    #[test]
    fn macro_builds_sequences() {
        let a: Seq<u32> = seq![1, 2, 3];
        assert_eq!(a, s(&[1, 2, 3]));
        let e: Seq<u32> = seq![];
        assert!(e.is_empty());
    }

    #[test]
    fn from_iterator_and_extend() {
        let a: Seq<u32> = (1..=3).collect();
        assert_eq!(a, s(&[1, 2, 3]));
        let mut b = s(&[1]);
        b.extend(vec![2, 3]);
        assert_eq!(b, s(&[1, 2, 3]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_seq() -> impl Strategy<Value = Seq<u8>> {
        proptest::collection::vec(0u8..20, 0..12).prop_map(Seq::from)
    }

    proptest! {
        /// ⊕ is associative.
        #[test]
        fn concat_associative(a in arb_seq(), b in arb_seq(), c in arb_seq()) {
            prop_assert_eq!(a.concat(&b).concat(&c), a.concat(&b.concat(&c)));
        }

        /// ε is the identity of ⊕.
        #[test]
        fn concat_identity(a in arb_seq()) {
            let e = Seq::new();
            prop_assert_eq!(a.concat(&e), a.clone());
            prop_assert_eq!(e.concat(&a), a);
        }

        /// `a ⊖ a = ε` and `a ⊖ ε = a`.
        #[test]
        fn subtract_identities(a in arb_seq()) {
            prop_assert_eq!(a.subtract(&a), Seq::new());
            prop_assert_eq!(a.subtract(&Seq::new()), a);
        }

        /// Elements of `a ⊖ b` are exactly the elements of `a` not in `b`,
        /// in `a`'s order.
        #[test]
        fn subtract_semantics(a in arb_seq(), b in arb_seq()) {
            let d = a.subtract(&b);
            for m in d.iter() {
                prop_assert!(a.contains(m));
                prop_assert!(!b.contains(m));
            }
            // order preserved: d is a subsequence of a
            let mut idx = 0usize;
            for m in a.iter() {
                if idx < d.len() && m == &d[idx] {
                    idx += 1;
                }
            }
            prop_assert_eq!(idx, d.len());
        }

        /// ⊓ returns a prefix of both arguments, and it is the longest one.
        #[test]
        fn common_prefix_is_longest_prefix(a in arb_seq(), b in arb_seq()) {
            let p = a.common_prefix(&b);
            prop_assert!(p.is_prefix_of(&a));
            prop_assert!(p.is_prefix_of(&b));
            // maximality: the next elements differ or one sequence ends
            if p.len() < a.len() && p.len() < b.len() {
                prop_assert_ne!(&a[p.len()], &b[p.len()]);
            }
        }

        /// ⊓ is commutative and idempotent.
        #[test]
        fn common_prefix_commutative_idempotent(a in arb_seq(), b in arb_seq()) {
            prop_assert_eq!(a.common_prefix(&b), b.common_prefix(&a));
            prop_assert_eq!(a.common_prefix(&a), a.clone());
        }

        /// ⊎ removes duplicates and preserves first-occurrence order.
        #[test]
        fn dedup_append_no_duplicates(seqs in proptest::collection::vec(arb_seq(), 0..5)) {
            let out = dedup_append(seqs.clone());
            // no duplicates
            for (i, x) in out.iter().enumerate() {
                for (j, y) in out.iter().enumerate() {
                    if i != j {
                        prop_assert_ne!(x, y);
                    }
                }
            }
            // every element of every input appears
            for s in &seqs {
                for m in s.iter() {
                    prop_assert!(out.contains(m));
                }
            }
            // every output element comes from some input
            for m in out.iter() {
                prop_assert!(seqs.iter().any(|s| s.contains(m)));
            }
        }

        /// ⊎ matches its recursive definition for two sequences.
        #[test]
        fn dedup_append_recursive_def(a in arb_seq(), b in arb_seq()) {
            let a = a.dedup_keep_first();
            let b = b.dedup_keep_first();
            prop_assert_eq!(dedup_append([a.clone(), b.clone()]), a.concat(&b.subtract(&a)));
        }

        /// The undo-legality identity used by the paper:
        /// `(a ⊖ suffix) ⊕ suffix = a` when `suffix` is a suffix of `a`
        /// and `a` has no duplicates.
        #[test]
        fn subtract_then_concat_suffix(a in arb_seq(), cut in 0usize..12) {
            let a = a.dedup_keep_first();
            let cut = cut.min(a.len());
            let suffix = a.suffix_from(cut);
            prop_assert_eq!(a.subtract(&suffix).concat(&suffix), a);
        }

        /// `is_prefix_of` agrees with `common_prefix`.
        #[test]
        fn prefix_agrees_with_common_prefix(a in arb_seq(), b in arb_seq()) {
            prop_assert_eq!(a.is_prefix_of(&b), a.common_prefix(&b) == a);
        }

        /// `longest` returns a sequence at least as long as every input.
        #[test]
        fn longest_is_maximal(seqs in proptest::collection::vec(arb_seq(), 1..6)) {
            let l = longest(seqs.iter()).unwrap();
            for s in &seqs {
                prop_assert!(l.len() >= s.len());
            }
        }
    }
}
