//! Sequence algebra for the Optimistic Active Replication (OAR) protocol.
//!
//! The OAR paper (Felber & Schiper, ICDCS 2001, §5.1) manipulates *sequences of
//! messages* with four operators:
//!
//! * `seq1 ⊕ seq2` — concatenation: all messages of `seq1` followed by all
//!   messages of `seq2` (here: [`Seq::concat`], also the `+` operator);
//! * `seq1 ⊖ seq2` — decomposition: all messages of `seq1` that are **not**
//!   in `seq2` (here: [`Seq::subtract`]);
//! * `⊓(seq1, …, seqn)` — the longest common prefix of a set of sequences
//!   (here: [`Seq::common_prefix`] / [`common_prefix_all`]);
//! * `⊎(seq1, …, seqn)` — append all sequences together, removing duplicates
//!   (here: [`dedup_append`]).
//!
//! Sequences also support the implicit conversion to sets used by the paper for
//! the `∈`, `∩`, `∪` operators ([`Seq::contains`], [`Seq::intersection`],
//! [`Seq::union_set`]).
//!
//! # Indexed representation
//!
//! `Seq<T>` stores its elements in a `Vec<T>` **and** maintains a hash index
//! from element to the position of its first occurrence. The index makes the
//! membership queries of the protocol's hot path (`m ∈ O_delivered`,
//! `position(m)`) O(1), and turns the binary operators from the naive
//! O(n·m) scans of the obvious implementation into O(n + m) passes:
//! `subtract`, `intersection`, `is_disjoint` and `union_set` probe the other
//! side's index instead of scanning it, and `⊎` probes the accumulator. This
//! is what keeps the per-epoch CPU cost linear as `O_delivered` grows — the
//! concern raised by the paper's §5.3 remark.
//!
//! The index is invisible in the API: it costs one `T` clone per inserted
//! element plus O(n) memory, and is rebuilt in O(n) by the few operations
//! that remove elements ([`Seq::split_prefix`], [`Seq::clear`]). The naive
//! reference implementations are kept in the [`naive`] module; the crate's
//! property tests check every indexed operation against them, and the
//! `protocol_internals` bench of `oar-bench` measures the asymptotic gap.
//!
//! The algebra is generic over the element type so that it can be unit-tested
//! and property-tested with small types (`u32`) while the protocol
//! instantiates it with message identifiers. Elements must be `Clone + Eq +
//! Hash` (the seed implementation required only `Clone + PartialEq`; the
//! strengthened bound is what buys the index).
//!
//! # Examples
//!
//! ```
//! use oar_sequence::{Seq, dedup_append};
//!
//! let a: Seq<u32> = Seq::from(vec![1, 2, 3]);
//! let b: Seq<u32> = Seq::from(vec![3, 4]);
//!
//! assert_eq!(a.clone().concat(&b).as_slice(), &[1, 2, 3, 3, 4]);
//! assert_eq!(a.subtract(&b).as_slice(), &[1, 2]);
//! assert_eq!(a.common_prefix(&Seq::from(vec![1, 2, 5])).as_slice(), &[1, 2]);
//! assert_eq!(dedup_append([a, b]).as_slice(), &[1, 2, 3, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, Index};

/// An ordered sequence of elements, the basic data structure of the OAR
/// protocol.
///
/// `Seq<T>` is an intention-revealing wrapper around `Vec<T>` that provides
/// the paper's operators (`⊕`, `⊖`, `⊓`, `⊎`) as well as prefix/suffix queries
/// used in the correctness arguments. A hash index from element to first
/// position is maintained alongside the vector, making membership and the
/// binary operators linear-time (see the crate docs).
#[derive(Clone)]
pub struct Seq<T> {
    items: Vec<T>,
    /// `index[x]` = position of the first occurrence of `x` in `items`.
    index: HashMap<T, usize>,
}

impl<T> Default for Seq<T> {
    fn default() -> Self {
        Seq {
            items: Vec::new(),
            index: HashMap::new(),
        }
    }
}

// Equality, ordering and hashing are defined by the element sequence alone;
// the index is derived data.
impl<T: PartialEq> PartialEq for Seq<T> {
    fn eq(&self, other: &Self) -> bool {
        self.items == other.items
    }
}

impl<T: Eq> Eq for Seq<T> {}

impl<T: PartialOrd> PartialOrd for Seq<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.items.partial_cmp(&other.items)
    }
}

impl<T: Ord> Ord for Seq<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.items.cmp(&other.items)
    }
}

impl<T: Hash> Hash for Seq<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.items.hash(state);
    }
}

impl<T: fmt::Debug> fmt::Debug for Seq<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Seq")?;
        f.debug_list().entries(self.items.iter()).finish()
    }
}

impl<T: fmt::Display> fmt::Display for Seq<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

impl<T> Seq<T> {
    /// Creates an empty sequence (the paper's `ε`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sequence with room for `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        Seq {
            items: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
        }
    }

    /// Returns the number of elements in the sequence.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the sequence contains no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns the elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Returns an iterator over the elements, in order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Returns the first element, if any.
    pub fn first(&self) -> Option<&T> {
        self.items.first()
    }

    /// Returns the last element, if any.
    pub fn last(&self) -> Option<&T> {
        self.items.last()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.items.clear();
        self.index.clear();
    }

    /// Consumes the sequence and returns the underlying vector.
    pub fn into_inner(self) -> Vec<T> {
        self.items
    }
}

impl<T: Clone + Eq + Hash> Seq<T> {
    /// Appends a single element at the end of the sequence.
    pub fn push(&mut self, item: T) {
        let pos = self.items.len();
        self.index.entry(item.clone()).or_insert(pos);
        self.items.push(item);
    }

    /// Rebuilds the element → first-position index from `items` (used after
    /// operations that remove elements).
    fn rebuild_index(&mut self) {
        self.index.clear();
        self.index.reserve(self.items.len());
        for (pos, item) in self.items.iter().enumerate() {
            self.index.entry(item.clone()).or_insert(pos);
        }
    }

    /// `self ⊕ other` — concatenation of two sequences.
    ///
    /// All elements of `self` followed by all elements of `other`. Duplicates
    /// are **not** removed; see [`dedup_append`] for the `⊎` operator.
    #[must_use]
    pub fn concat(&self, other: &Seq<T>) -> Seq<T> {
        let mut out = Seq::with_capacity(self.items.len() + other.items.len());
        out.items.extend_from_slice(&self.items);
        out.index = self.index.clone();
        for item in &other.items {
            out.push(item.clone());
        }
        out
    }

    /// `self ⊖ other` — all elements of `self` that are not in `other`,
    /// preserving the order of `self`. O(|self| + |other|).
    #[must_use]
    pub fn subtract(&self, other: &Seq<T>) -> Seq<T> {
        let mut out = Seq::with_capacity(self.items.len());
        for item in &self.items {
            if !other.contains(item) {
                out.push(item.clone());
            }
        }
        out
    }

    /// `⊓(self, other)` — the longest common prefix of the two sequences.
    #[must_use]
    pub fn common_prefix(&self, other: &Seq<T>) -> Seq<T> {
        let mut out = Seq::new();
        for (a, b) in self.items.iter().zip(other.items.iter()) {
            if a == b {
                out.push(a.clone());
            } else {
                break;
            }
        }
        out
    }

    /// Returns `true` if `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &Seq<T>) -> bool {
        self.items.len() <= other.items.len()
            && self
                .items
                .iter()
                .zip(other.items.iter())
                .all(|(a, b)| a == b)
    }

    /// Returns `true` if `self` is a suffix of `other`.
    pub fn is_suffix_of(&self, other: &Seq<T>) -> bool {
        if self.items.len() > other.items.len() {
            return false;
        }
        let start = other.items.len() - self.items.len();
        self.items
            .iter()
            .zip(other.items[start..].iter())
            .all(|(a, b)| a == b)
    }

    /// Returns `true` if the sequence contains `item` (the paper's `m ∈ seq`).
    /// O(1) via the hash index.
    pub fn contains(&self, item: &T) -> bool {
        self.index.contains_key(item)
    }

    /// Returns the position (0-based) of the first occurrence of `item` in the
    /// sequence, if present. O(1) via the hash index.
    pub fn position(&self, item: &T) -> Option<usize> {
        self.index.get(item).copied()
    }

    /// The elements that are in both `self` and `other`, in `self`'s order
    /// (the paper's `seq1 ∩ seq2` with the implicit sequence→set conversion).
    /// O(|self| + |other|).
    #[must_use]
    pub fn intersection(&self, other: &Seq<T>) -> Seq<T> {
        let mut out = Seq::new();
        for item in &self.items {
            if other.contains(item) {
                out.push(item.clone());
            }
        }
        out
    }

    /// Returns `true` if `self` and `other` have no element in common
    /// (the paper's `seq1 ∩ seq2 = ∅`). Probes the index of the longer side,
    /// so the cost is O(min(|self|, |other|)).
    pub fn is_disjoint(&self, other: &Seq<T>) -> bool {
        let (shorter, longer) = if self.items.len() <= other.items.len() {
            (self, other)
        } else {
            (other, self)
        };
        shorter.items.iter().all(|m| !longer.contains(m))
    }

    /// Set-union of the two sequences: `self` followed by the elements of
    /// `other` not already present (the paper's `seq1 ∪ seq2`).
    /// O(|self| + |other|).
    #[must_use]
    pub fn union_set(&self, other: &Seq<T>) -> Seq<T> {
        let mut result = self.clone();
        for item in &other.items {
            if !result.contains(item) {
                result.push(item.clone());
            }
        }
        result
    }

    /// Removes and returns the first `n` elements as a new sequence, keeping
    /// the remainder in `self`.
    pub fn split_prefix(&mut self, n: usize) -> Seq<T> {
        let n = n.min(self.items.len());
        let rest = self.items.split_off(n);
        let prefix_items = std::mem::replace(&mut self.items, rest);
        self.rebuild_index();
        let mut prefix = Seq {
            items: prefix_items,
            index: HashMap::new(),
        };
        prefix.rebuild_index();
        prefix
    }

    /// Returns the suffix of `self` starting at position `n`.
    #[must_use]
    pub fn suffix_from(&self, n: usize) -> Seq<T> {
        let n = n.min(self.items.len());
        let mut out = Seq::with_capacity(self.items.len() - n);
        for item in &self.items[n..] {
            out.push(item.clone());
        }
        out
    }

    /// Returns a copy of the sequence with duplicates removed, keeping the
    /// first occurrence of each element. O(n).
    #[must_use]
    pub fn dedup_keep_first(&self) -> Seq<T> {
        let mut out = Seq::new();
        for item in &self.items {
            if !out.contains(item) {
                out.push(item.clone());
            }
        }
        out
    }
}

impl<T: Clone + Ord> Seq<T> {
    /// Returns the set of elements of the sequence as a `BTreeSet`.
    pub fn to_set(&self) -> BTreeSet<T> {
        self.items.iter().cloned().collect()
    }
}

/// `⊎(seqs…)` — appends all sequences together, removing duplicates, keeping
/// the first occurrence of each element. O(total input length).
///
/// This is the paper's `⊎` operator, defined recursively as
/// `⊎(s1, …, si+1) = ⊎(s1, …, si) ⊕ (si+1 ⊖ ⊎(s1, …, si))`.
pub fn dedup_append<T, I>(seqs: I) -> Seq<T>
where
    T: Clone + Eq + Hash,
    I: IntoIterator<Item = Seq<T>>,
{
    let mut out = Seq::new();
    for seq in seqs {
        for item in seq.items {
            if !out.contains(&item) {
                out.push(item);
            }
        }
    }
    out
}

/// `⊓(seqs…)` — the longest common prefix of all the given sequences.
///
/// Returns the empty sequence if the iterator is empty.
pub fn common_prefix_all<'a, T, I>(seqs: I) -> Seq<T>
where
    T: Clone + Eq + Hash + 'a,
    I: IntoIterator<Item = &'a Seq<T>>,
{
    let mut iter = seqs.into_iter();
    let Some(first) = iter.next() else {
        return Seq::new();
    };
    // Track only the prefix *length* while scanning, and build the resulting
    // sequence once at the end: O(total scanned), not O(len · sequences).
    let mut len = first.len();
    for seq in iter {
        let mut common = 0;
        for (a, b) in first.items.iter().take(len).zip(seq.items.iter()) {
            if a == b {
                common += 1;
            } else {
                break;
            }
        }
        len = common;
        if len == 0 {
            break;
        }
    }
    let mut out = Seq::with_capacity(len);
    for item in &first.items[..len] {
        out.push(item.clone());
    }
    out
}

/// Returns the longest sequence among `seqs`.
///
/// Ties are broken in favour of the first maximum encountered, which matches
/// the paper's `dlv_max` selection (line 5 of Fig. 7): the candidates are
/// guaranteed by Lemma 2 to be prefixes of each other, so equal-length
/// candidates are equal.
pub fn longest<'a, T, I>(seqs: I) -> Option<&'a Seq<T>>
where
    T: 'a,
    I: IntoIterator<Item = &'a Seq<T>>,
{
    let mut best: Option<&Seq<T>> = None;
    for seq in seqs {
        match best {
            None => best = Some(seq),
            Some(b) if seq.len() > b.len() => best = Some(seq),
            _ => {}
        }
    }
    best
}

impl<T: Clone + Eq + Hash> From<Vec<T>> for Seq<T> {
    fn from(items: Vec<T>) -> Self {
        let mut seq = Seq {
            items,
            index: HashMap::new(),
        };
        seq.rebuild_index();
        seq
    }
}

impl<T: Clone + Eq + Hash> From<&[T]> for Seq<T> {
    fn from(items: &[T]) -> Self {
        Seq::from(items.to_vec())
    }
}

impl<T: Clone + Eq + Hash> FromIterator<T> for Seq<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut seq = Seq::new();
        seq.extend(iter);
        seq
    }
}

impl<T: Clone + Eq + Hash> Extend<T> for Seq<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T> IntoIterator for Seq<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Seq<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<T> Index<usize> for Seq<T> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        &self.items[index]
    }
}

impl<T: Clone + Eq + Hash> Add<&Seq<T>> for Seq<T> {
    type Output = Seq<T>;

    /// `a + &b` is the paper's `a ⊕ b`.
    fn add(self, rhs: &Seq<T>) -> Seq<T> {
        self.concat(rhs)
    }
}

/// Convenience macro for building a [`Seq`] from a list of elements.
///
/// ```
/// use oar_sequence::{seq, Seq};
/// let s: Seq<u32> = seq![1, 2, 3];
/// assert_eq!(s.len(), 3);
/// ```
#[macro_export]
macro_rules! seq {
    () => { $crate::Seq::new() };
    ($($x:expr),+ $(,)?) => {
        $crate::Seq::from(vec![$($x),+])
    };
}

pub mod naive {
    //! The seed's O(n·m) reference implementations of the algebra, over plain
    //! slices.
    //!
    //! These exist for two reasons: the crate's differential property tests
    //! check every indexed [`Seq`](crate::Seq) operation against them, and the
    //! `protocol_internals` bench of `oar-bench` measures the indexed
    //! representation's speedup relative to them. They are **not** used by the
    //! protocol.

    /// `a ⊖ b` by linear scan: O(|a|·|b|).
    pub fn subtract<T: Clone + PartialEq>(a: &[T], b: &[T]) -> Vec<T> {
        a.iter().filter(|m| !b.contains(m)).cloned().collect()
    }

    /// `a ∩ b` by linear scan: O(|a|·|b|).
    pub fn intersection<T: Clone + PartialEq>(a: &[T], b: &[T]) -> Vec<T> {
        a.iter().filter(|m| b.contains(m)).cloned().collect()
    }

    /// `a ∪ b` by linear scan: O((|a|+|b|)²) in the worst case.
    pub fn union_set<T: Clone + PartialEq>(a: &[T], b: &[T]) -> Vec<T> {
        let mut out = a.to_vec();
        for item in b {
            if !out.contains(item) {
                out.push(item.clone());
            }
        }
        out
    }

    /// `a ∩ b = ∅` by linear scan.
    pub fn is_disjoint<T: PartialEq>(a: &[T], b: &[T]) -> bool {
        a.iter().all(|m| !b.contains(m))
    }

    /// `⊎(seqs…)` by linear scan of the accumulator per element.
    pub fn dedup_append<T: Clone + PartialEq>(seqs: &[Vec<T>]) -> Vec<T> {
        let mut out: Vec<T> = Vec::new();
        for seq in seqs {
            for item in seq {
                if !out.contains(item) {
                    out.push(item.clone());
                }
            }
        }
        out
    }

    /// First occurrence of each element, by linear scan of the accumulator.
    pub fn dedup_keep_first<T: Clone + PartialEq>(a: &[T]) -> Vec<T> {
        dedup_append(std::slice::from_ref(&a.to_vec()))
    }

    /// `⊓(a, b)`.
    pub fn common_prefix<T: Clone + PartialEq>(a: &[T], b: &[T]) -> Vec<T> {
        let mut out = Vec::new();
        for (x, y) in a.iter().zip(b.iter()) {
            if x == y {
                out.push(x.clone());
            } else {
                break;
            }
        }
        out
    }

    /// `m ∈ a` by linear scan.
    pub fn contains<T: PartialEq>(a: &[T], item: &T) -> bool {
        a.contains(item)
    }

    /// Position of the first occurrence of `item`, by linear scan.
    pub fn position<T: PartialEq>(a: &[T], item: &T) -> Option<usize> {
        a.iter().position(|m| m == item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[u32]) -> Seq<u32> {
        Seq::from(items)
    }

    #[test]
    fn empty_sequence_properties() {
        let e: Seq<u32> = Seq::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.first(), None);
        assert_eq!(e.last(), None);
        assert_eq!(format!("{e}"), "{}");
    }

    #[test]
    fn concat_is_paper_oplus() {
        assert_eq!(s(&[1, 2]).concat(&s(&[3])), s(&[1, 2, 3]));
        assert_eq!(s(&[]).concat(&s(&[3])), s(&[3]));
        assert_eq!(s(&[1]).concat(&s(&[])), s(&[1]));
        // ⊕ keeps duplicates
        assert_eq!(s(&[1]).concat(&s(&[1])), s(&[1, 1]));
    }

    #[test]
    fn add_operator_is_concat() {
        assert_eq!(s(&[1, 2]) + &s(&[3, 4]), s(&[1, 2, 3, 4]));
    }

    #[test]
    fn subtract_is_paper_ominus() {
        assert_eq!(s(&[1, 2, 3, 4]).subtract(&s(&[2, 4])), s(&[1, 3]));
        assert_eq!(s(&[1, 2]).subtract(&s(&[])), s(&[1, 2]));
        assert_eq!(s(&[]).subtract(&s(&[1])), s(&[]));
        assert_eq!(s(&[1, 2]).subtract(&s(&[1, 2])), s(&[]));
        // subtraction removes *all* occurrences
        assert_eq!(s(&[1, 2, 1]).subtract(&s(&[1])), s(&[2]));
    }

    #[test]
    fn common_prefix_pairs() {
        assert_eq!(s(&[1, 2, 3]).common_prefix(&s(&[1, 2, 4])), s(&[1, 2]));
        assert_eq!(s(&[1, 2]).common_prefix(&s(&[3, 4])), s(&[]));
        assert_eq!(s(&[1, 2]).common_prefix(&s(&[1, 2])), s(&[1, 2]));
        assert_eq!(s(&[]).common_prefix(&s(&[1])), s(&[]));
    }

    #[test]
    fn common_prefix_all_of_many() {
        let a = s(&[1, 2, 3, 4]);
        let b = s(&[1, 2, 3]);
        let c = s(&[1, 2, 5]);
        assert_eq!(common_prefix_all([&a, &b, &c]), s(&[1, 2]));
        assert_eq!(common_prefix_all::<u32, [&Seq<u32>; 0]>([]), s(&[]));
        assert_eq!(common_prefix_all([&a]), a);
    }

    #[test]
    fn dedup_append_is_paper_uplus() {
        let out = dedup_append([s(&[1, 2]), s(&[2, 3]), s(&[3, 4, 1])]);
        assert_eq!(out, s(&[1, 2, 3, 4]));
        let empty: Vec<Seq<u32>> = vec![];
        assert_eq!(dedup_append(empty), s(&[]));
    }

    #[test]
    fn dedup_append_matches_recursive_definition() {
        // ⊎(s1, s2) = s1 ⊕ (s2 ⊖ s1)
        let s1 = s(&[5, 1, 2]);
        let s2 = s(&[2, 7, 5, 9]);
        assert_eq!(
            dedup_append([s1.clone(), s2.clone()]),
            s1.concat(&s2.subtract(&s1))
        );
    }

    #[test]
    fn prefix_and_suffix_checks() {
        assert!(s(&[1, 2]).is_prefix_of(&s(&[1, 2, 3])));
        assert!(!s(&[2]).is_prefix_of(&s(&[1, 2, 3])));
        assert!(s(&[]).is_prefix_of(&s(&[1])));
        assert!(s(&[2, 3]).is_suffix_of(&s(&[1, 2, 3])));
        assert!(!s(&[1, 2]).is_suffix_of(&s(&[1, 2, 3])));
        assert!(s(&[]).is_suffix_of(&s(&[])));
        assert!(!s(&[1, 2, 3, 4]).is_suffix_of(&s(&[3, 4])));
    }

    #[test]
    fn membership_and_position() {
        let a = s(&[4, 7, 9]);
        assert!(a.contains(&7));
        assert!(!a.contains(&8));
        assert_eq!(a.position(&9), Some(2));
        assert_eq!(a.position(&1), None);
    }

    #[test]
    fn position_reports_first_occurrence() {
        let a = s(&[4, 7, 4, 9, 7]);
        assert_eq!(a.position(&4), Some(0));
        assert_eq!(a.position(&7), Some(1));
        assert_eq!(a.position(&9), Some(3));
    }

    #[test]
    fn intersection_and_disjoint() {
        assert_eq!(s(&[1, 2, 3]).intersection(&s(&[3, 1])), s(&[1, 3]));
        assert!(s(&[1, 2]).is_disjoint(&s(&[3, 4])));
        assert!(!s(&[1, 2]).is_disjoint(&s(&[2])));
        assert!(s(&[]).is_disjoint(&s(&[])));
        // both probe directions (shorter side iterated)
        assert!(!s(&[1]).is_disjoint(&s(&[9, 8, 7, 1])));
        assert!(!s(&[9, 8, 7, 1]).is_disjoint(&s(&[1])));
    }

    #[test]
    fn union_set_keeps_first_occurrences() {
        assert_eq!(s(&[1, 2]).union_set(&s(&[2, 3])), s(&[1, 2, 3]));
    }

    #[test]
    fn split_prefix_and_suffix_from() {
        let mut a = s(&[1, 2, 3, 4]);
        let prefix = a.split_prefix(2);
        assert_eq!(prefix, s(&[1, 2]));
        assert_eq!(a, s(&[3, 4]));
        // the index must follow the split
        assert_eq!(a.position(&3), Some(0));
        assert!(!a.contains(&1));
        assert!(prefix.contains(&1));
        let b = s(&[1, 2, 3]);
        assert_eq!(b.suffix_from(1), s(&[2, 3]));
        assert_eq!(b.suffix_from(5), s(&[]));
        let mut c = s(&[1]);
        assert_eq!(c.split_prefix(10), s(&[1]));
        assert_eq!(c, s(&[]));
    }

    #[test]
    fn clear_resets_index() {
        let mut a = s(&[1, 2, 3]);
        a.clear();
        assert!(a.is_empty());
        assert!(!a.contains(&1));
        a.push(2);
        assert_eq!(a.position(&2), Some(0));
    }

    #[test]
    fn longest_selects_max_length() {
        let a = s(&[1]);
        let b = s(&[1, 2, 3]);
        let c = s(&[1, 2]);
        assert_eq!(longest([&a, &b, &c]), Some(&b));
        assert_eq!(longest::<u32, [&Seq<u32>; 0]>([]), None);
    }

    #[test]
    fn dedup_keep_first_works() {
        assert_eq!(s(&[1, 2, 1, 3, 2]).dedup_keep_first(), s(&[1, 2, 3]));
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(format!("{}", s(&[1, 2, 3])), "{1;2;3}");
    }

    #[test]
    fn macro_builds_sequences() {
        let a: Seq<u32> = seq![1, 2, 3];
        assert_eq!(a, s(&[1, 2, 3]));
        let e: Seq<u32> = seq![];
        assert!(e.is_empty());
    }

    #[test]
    fn from_iterator_and_extend() {
        let a: Seq<u32> = (1..=3).collect();
        assert_eq!(a, s(&[1, 2, 3]));
        let mut b = s(&[1]);
        b.extend(vec![2, 3]);
        assert_eq!(b, s(&[1, 2, 3]));
        assert_eq!(b.position(&3), Some(2));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_seq() -> impl Strategy<Value = Seq<u8>> {
        proptest::collection::vec(0u8..20, 0..12).prop_map(Seq::from)
    }

    proptest! {
        /// ⊕ is associative.
        #[test]
        fn concat_associative(a in arb_seq(), b in arb_seq(), c in arb_seq()) {
            prop_assert_eq!(a.concat(&b).concat(&c), a.concat(&b.concat(&c)));
        }

        /// ε is the identity of ⊕.
        #[test]
        fn concat_identity(a in arb_seq()) {
            let e = Seq::new();
            prop_assert_eq!(a.concat(&e), a.clone());
            prop_assert_eq!(e.concat(&a), a);
        }

        /// `a ⊖ a = ε` and `a ⊖ ε = a`.
        #[test]
        fn subtract_identities(a in arb_seq()) {
            prop_assert_eq!(a.subtract(&a), Seq::new());
            prop_assert_eq!(a.subtract(&Seq::new()), a);
        }

        /// Elements of `a ⊖ b` are exactly the elements of `a` not in `b`,
        /// in `a`'s order.
        #[test]
        fn subtract_semantics(a in arb_seq(), b in arb_seq()) {
            let d = a.subtract(&b);
            for m in d.iter() {
                prop_assert!(a.contains(m));
                prop_assert!(!b.contains(m));
            }
            // order preserved: d is a subsequence of a
            let mut idx = 0usize;
            for m in a.iter() {
                if idx < d.len() && m == &d[idx] {
                    idx += 1;
                }
            }
            prop_assert_eq!(idx, d.len());
        }

        /// ⊓ returns a prefix of both arguments, and it is the longest one.
        #[test]
        fn common_prefix_is_longest_prefix(a in arb_seq(), b in arb_seq()) {
            let p = a.common_prefix(&b);
            prop_assert!(p.is_prefix_of(&a));
            prop_assert!(p.is_prefix_of(&b));
            // maximality: the next elements differ or one sequence ends
            if p.len() < a.len() && p.len() < b.len() {
                prop_assert_ne!(&a[p.len()], &b[p.len()]);
            }
        }

        /// ⊓ is commutative and idempotent.
        #[test]
        fn common_prefix_commutative_idempotent(a in arb_seq(), b in arb_seq()) {
            prop_assert_eq!(a.common_prefix(&b), b.common_prefix(&a));
            prop_assert_eq!(a.common_prefix(&a), a.clone());
        }

        /// ⊎ removes duplicates and preserves first-occurrence order.
        #[test]
        fn dedup_append_no_duplicates(seqs in proptest::collection::vec(arb_seq(), 0..5)) {
            let out = dedup_append(seqs.clone());
            // no duplicates
            for (i, x) in out.iter().enumerate() {
                for (j, y) in out.iter().enumerate() {
                    if i != j {
                        prop_assert_ne!(x, y);
                    }
                }
            }
            // every element of every input appears
            for s in &seqs {
                for m in s.iter() {
                    prop_assert!(out.contains(m));
                }
            }
            // every output element comes from some input
            for m in out.iter() {
                prop_assert!(seqs.iter().any(|s| s.contains(m)));
            }
        }

        /// ⊎ matches its recursive definition for two sequences.
        #[test]
        fn dedup_append_recursive_def(a in arb_seq(), b in arb_seq()) {
            let a = a.dedup_keep_first();
            let b = b.dedup_keep_first();
            prop_assert_eq!(dedup_append([a.clone(), b.clone()]), a.concat(&b.subtract(&a)));
        }

        /// The undo-legality identity used by the paper:
        /// `(a ⊖ suffix) ⊕ suffix = a` when `suffix` is a suffix of `a`
        /// and `a` has no duplicates.
        #[test]
        fn subtract_then_concat_suffix(a in arb_seq(), cut in 0usize..12) {
            let a = a.dedup_keep_first();
            let cut = cut.min(a.len());
            let suffix = a.suffix_from(cut);
            prop_assert_eq!(a.subtract(&suffix).concat(&suffix), a);
        }

        /// `is_prefix_of` agrees with `common_prefix`.
        #[test]
        fn prefix_agrees_with_common_prefix(a in arb_seq(), b in arb_seq()) {
            prop_assert_eq!(a.is_prefix_of(&b), a.common_prefix(&b) == a);
        }

        /// `longest` returns a sequence at least as long as every input.
        #[test]
        fn longest_is_maximal(seqs in proptest::collection::vec(arb_seq(), 1..6)) {
            let l = longest(seqs.iter()).unwrap();
            for s in &seqs {
                prop_assert!(l.len() >= s.len());
            }
        }
    }
}

#[cfg(test)]
mod differential_proptests {
    //! Every indexed operation must agree exactly with the naive O(n·m)
    //! reference implementation in [`naive`], including on inputs with
    //! duplicates. This is the safety net for the indexed representation.

    use super::*;
    use proptest::prelude::*;

    /// Small alphabet so duplicates and collisions are frequent.
    fn arb_vec() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(0u8..10, 0..16)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn subtract_matches_naive(a in arb_vec(), b in arb_vec()) {
            let indexed = Seq::from(a.clone()).subtract(&Seq::from(b.clone()));
            prop_assert_eq!(indexed.as_slice(), naive::subtract(&a, &b).as_slice());
        }

        #[test]
        fn intersection_matches_naive(a in arb_vec(), b in arb_vec()) {
            let indexed = Seq::from(a.clone()).intersection(&Seq::from(b.clone()));
            prop_assert_eq!(indexed.as_slice(), naive::intersection(&a, &b).as_slice());
        }

        #[test]
        fn union_set_matches_naive(a in arb_vec(), b in arb_vec()) {
            let indexed = Seq::from(a.clone()).union_set(&Seq::from(b.clone()));
            prop_assert_eq!(indexed.as_slice(), naive::union_set(&a, &b).as_slice());
        }

        #[test]
        fn is_disjoint_matches_naive(a in arb_vec(), b in arb_vec()) {
            prop_assert_eq!(
                Seq::from(a.clone()).is_disjoint(&Seq::from(b.clone())),
                naive::is_disjoint(&a, &b)
            );
        }

        #[test]
        fn dedup_append_matches_naive(seqs in proptest::collection::vec(arb_vec(), 0..5)) {
            let indexed = dedup_append(seqs.iter().cloned().map(Seq::from));
            prop_assert_eq!(indexed.as_slice(), naive::dedup_append(&seqs).as_slice());
        }

        #[test]
        fn dedup_keep_first_matches_naive(a in arb_vec()) {
            let indexed = Seq::from(a.clone()).dedup_keep_first();
            prop_assert_eq!(indexed.as_slice(), naive::dedup_keep_first(&a).as_slice());
        }

        #[test]
        fn common_prefix_matches_naive(a in arb_vec(), b in arb_vec()) {
            let indexed = Seq::from(a.clone()).common_prefix(&Seq::from(b.clone()));
            prop_assert_eq!(indexed.as_slice(), naive::common_prefix(&a, &b).as_slice());
        }

        #[test]
        fn contains_and_position_match_naive(a in arb_vec(), probe in 0u8..12) {
            let seq = Seq::from(a.clone());
            prop_assert_eq!(seq.contains(&probe), naive::contains(&a, &probe));
            prop_assert_eq!(seq.position(&probe), naive::position(&a, &probe));
        }

        /// `common_prefix_all` equals repeated pairwise naive common_prefix.
        #[test]
        fn common_prefix_all_matches_naive(seqs in proptest::collection::vec(arb_vec(), 1..5)) {
            let indexed = common_prefix_all(
                seqs.iter().cloned().map(Seq::from).collect::<Vec<_>>().iter()
            );
            let mut expected = seqs[0].clone();
            for s in &seqs[1..] {
                expected = naive::common_prefix(&expected, s);
            }
            prop_assert_eq!(indexed.as_slice(), expected.as_slice());
        }

        /// The index survives mixed mutation: push / extend / split_prefix /
        /// clear keep `contains`/`position` consistent with a naive scan.
        #[test]
        fn index_stays_consistent_under_mutation(
            a in arb_vec(),
            b in arb_vec(),
            cut in 0usize..20,
            probe in 0u8..12,
        ) {
            let mut seq = Seq::from(a.clone());
            seq.extend(b.clone());
            let mut model: Vec<u8> = a;
            model.extend(b);
            let prefix = seq.split_prefix(cut.min(model.len()));
            let model_prefix: Vec<u8> = model.drain(..cut.min(model.len())).collect();
            prop_assert_eq!(prefix.as_slice(), model_prefix.as_slice());
            prop_assert_eq!(seq.as_slice(), model.as_slice());
            prop_assert_eq!(seq.position(&probe), naive::position(&model, &probe));
            prop_assert_eq!(prefix.position(&probe), naive::position(&model_prefix, &probe));
        }
    }
}
