//! Network state: link overrides, partitions, per-link FIFO clocks.

use std::collections::HashMap;

use crate::config::{LinkConfig, NetConfig};
use crate::process::ProcessId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// The state of the simulated network: which links have custom behaviour,
/// which partition (if any) is installed, and the per-link FIFO delivery
/// horizon used to keep channels FIFO.
#[derive(Clone, Debug)]
pub struct Network {
    config: NetConfig,
    link_overrides: HashMap<(ProcessId, ProcessId), LinkConfig>,
    /// `partition_of[p]` = group index of process `p`, or `None` if no
    /// partition is installed.
    partition_of: Option<HashMap<ProcessId, usize>>,
    /// Earliest time the next message on each ordered link may be delivered
    /// (enforces FIFO when `config.fifo_links` is set).
    fifo_horizon: HashMap<(ProcessId, ProcessId), SimTime>,
}

/// The decision the network takes for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Deliver after the given latency.
    Deliver(SimDuration),
    /// Deliver twice (duplicate), after the two given latencies.
    DeliverDuplicated(SimDuration, SimDuration),
    /// Drop because of random loss.
    DropLoss,
    /// Hold until the partition heals (DeliverOnHeal mode).
    HoldForHeal,
    /// Drop because of the partition (Drop mode).
    DropPartitioned,
}

impl Network {
    /// Creates the network from its configuration.
    pub fn new(config: NetConfig) -> Self {
        Network {
            config,
            link_overrides: HashMap::new(),
            partition_of: None,
            fifo_horizon: HashMap::new(),
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Overrides the behaviour of the ordered link `from → to`.
    pub fn set_link(&mut self, from: ProcessId, to: ProcessId, link: LinkConfig) {
        self.link_overrides.insert((from, to), link);
    }

    /// Overrides the behaviour of both directions between `a` and `b`.
    pub fn set_link_bidirectional(&mut self, a: ProcessId, b: ProcessId, link: LinkConfig) {
        self.set_link(a, b, link);
        self.set_link(b, a, link);
    }

    /// Removes all link overrides.
    pub fn clear_link_overrides(&mut self) {
        self.link_overrides.clear();
    }

    /// Installs a partition: processes can only communicate within their
    /// group. Processes not listed in any group form an implicit extra group.
    pub fn install_partition(&mut self, groups: &[Vec<ProcessId>]) {
        let mut map = HashMap::new();
        for (idx, group) in groups.iter().enumerate() {
            for &p in group {
                map.insert(p, idx);
            }
        }
        self.partition_of = Some(map);
    }

    /// Removes any installed partition.
    pub fn heal_partition(&mut self) {
        self.partition_of = None;
    }

    /// Returns `true` if a partition is currently installed.
    pub fn is_partitioned(&self) -> bool {
        self.partition_of.is_some()
    }

    /// Returns `true` if `from` and `to` can currently communicate.
    pub fn connected(&self, from: ProcessId, to: ProcessId) -> bool {
        match &self.partition_of {
            None => true,
            Some(map) => {
                if from == to {
                    return true;
                }
                let unlisted = usize::MAX;
                let gf = map.get(&from).copied().unwrap_or(unlisted);
                let gt = map.get(&to).copied().unwrap_or(unlisted);
                gf == gt
            }
        }
    }

    fn link(&self, from: ProcessId, to: ProcessId) -> LinkConfig {
        self.link_overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.config.default_link)
    }

    /// Samples the one-way latency of the `from → to` link.
    pub fn sample_latency(&self, from: ProcessId, to: ProcessId, rng: &mut SimRng) -> SimDuration {
        if from == to {
            self.config.local_latency
        } else {
            self.link(from, to).latency.sample(rng)
        }
    }

    /// Decides what happens to a message sent at `now` on `from → to`.
    pub fn route(
        &mut self,
        now: SimTime,
        from: ProcessId,
        to: ProcessId,
        rng: &mut SimRng,
    ) -> Routing {
        use crate::config::PartitionMode;

        if !self.connected(from, to) {
            return match self.config.partition_mode {
                PartitionMode::Drop => Routing::DropPartitioned,
                PartitionMode::DeliverOnHeal => Routing::HoldForHeal,
            };
        }
        let link = self.link(from, to);
        if from != to && rng.chance(link.drop_probability) {
            return Routing::DropLoss;
        }
        let latency = self.fifo_adjust(now, from, to, self.sample_latency(from, to, rng));
        if from != to && rng.chance(link.duplicate_probability) {
            let second = self.fifo_adjust(now, from, to, self.sample_latency(from, to, rng));
            return Routing::DeliverDuplicated(latency, second);
        }
        Routing::Deliver(latency)
    }

    /// Adjusts a sampled latency so that deliveries on a FIFO link never
    /// overtake earlier deliveries, and advances the link's FIFO horizon.
    fn fifo_adjust(
        &mut self,
        now: SimTime,
        from: ProcessId,
        to: ProcessId,
        latency: SimDuration,
    ) -> SimDuration {
        if !self.config.fifo_links {
            return latency;
        }
        let arrival = now + latency;
        let horizon = self.fifo_horizon.entry((from, to)).or_insert(SimTime::ZERO);
        let arrival = arrival.max(*horizon);
        *horizon = arrival;
        arrival - now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LatencyModel, PartitionMode};

    fn net(fifo: bool) -> Network {
        let mut cfg = NetConfig::lan();
        cfg.fifo_links = fifo;
        Network::new(cfg)
    }

    #[test]
    fn connected_without_partition() {
        let n = net(true);
        assert!(n.connected(ProcessId(0), ProcessId(1)));
        assert!(!n.is_partitioned());
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut n = net(true);
        n.install_partition(&[vec![ProcessId(0)], vec![ProcessId(1), ProcessId(2)]]);
        assert!(n.is_partitioned());
        assert!(!n.connected(ProcessId(0), ProcessId(1)));
        assert!(n.connected(ProcessId(1), ProcessId(2)));
        assert!(n.connected(ProcessId(0), ProcessId(0)));
        // unlisted processes form their own implicit group
        assert!(n.connected(ProcessId(7), ProcessId(8)));
        assert!(!n.connected(ProcessId(7), ProcessId(0)));
        n.heal_partition();
        assert!(n.connected(ProcessId(0), ProcessId(1)));
    }

    #[test]
    fn routing_respects_partition_mode() {
        let mut cfg = NetConfig::lan();
        cfg.partition_mode = PartitionMode::Drop;
        let mut n = Network::new(cfg);
        n.install_partition(&[vec![ProcessId(0)], vec![ProcessId(1)]]);
        let mut rng = SimRng::new(1);
        assert_eq!(
            n.route(SimTime::ZERO, ProcessId(0), ProcessId(1), &mut rng),
            Routing::DropPartitioned
        );

        let mut cfg = NetConfig::lan();
        cfg.partition_mode = PartitionMode::DeliverOnHeal;
        let mut n = Network::new(cfg);
        n.install_partition(&[vec![ProcessId(0)], vec![ProcessId(1)]]);
        assert_eq!(
            n.route(SimTime::ZERO, ProcessId(0), ProcessId(1), &mut rng),
            Routing::HoldForHeal
        );
    }

    #[test]
    fn lossy_link_drops_messages() {
        let mut cfg = NetConfig::lan();
        cfg.default_link.drop_probability = 1.0;
        let mut n = Network::new(cfg);
        let mut rng = SimRng::new(2);
        assert_eq!(
            n.route(SimTime::ZERO, ProcessId(0), ProcessId(1), &mut rng),
            Routing::DropLoss
        );
        // self-messages are never dropped
        assert!(matches!(
            n.route(SimTime::ZERO, ProcessId(0), ProcessId(0), &mut rng),
            Routing::Deliver(_)
        ));
    }

    #[test]
    fn fifo_links_never_reorder() {
        let mut cfg = NetConfig::lan();
        cfg.default_link.latency = LatencyModel::Uniform {
            min: SimDuration::from_micros(10),
            max: SimDuration::from_micros(1_000),
        };
        cfg.fifo_links = true;
        let mut n = Network::new(cfg);
        let mut rng = SimRng::new(3);
        let mut last_arrival = SimTime::ZERO;
        for i in 0..200u64 {
            let now = SimTime::from_micros(i * 5);
            if let Routing::Deliver(lat) = n.route(now, ProcessId(0), ProcessId(1), &mut rng) {
                let arrival = now + lat;
                assert!(arrival >= last_arrival, "FIFO violated at message {i}");
                last_arrival = arrival;
            } else {
                panic!("expected delivery");
            }
        }
    }

    #[test]
    fn link_override_changes_latency() {
        let mut cfg = NetConfig::constant(SimDuration::from_micros(100));
        cfg.fifo_links = false;
        let mut n = Network::new(cfg);
        n.set_link_bidirectional(
            ProcessId(0),
            ProcessId(1),
            LinkConfig::reliable(LatencyModel::Constant(SimDuration::from_millis(5))),
        );
        let mut rng = SimRng::new(4);
        assert_eq!(
            n.route(SimTime::ZERO, ProcessId(0), ProcessId(1), &mut rng),
            Routing::Deliver(SimDuration::from_millis(5))
        );
        assert_eq!(
            n.route(SimTime::ZERO, ProcessId(1), ProcessId(0), &mut rng),
            Routing::Deliver(SimDuration::from_millis(5))
        );
        assert_eq!(
            n.route(SimTime::ZERO, ProcessId(0), ProcessId(2), &mut rng),
            Routing::Deliver(SimDuration::from_micros(100))
        );
        n.clear_link_overrides();
        assert_eq!(
            n.route(SimTime::ZERO, ProcessId(0), ProcessId(1), &mut rng),
            Routing::Deliver(SimDuration::from_micros(100))
        );
    }

    #[test]
    fn duplication_returns_two_latencies() {
        let mut cfg = NetConfig::constant(SimDuration::from_micros(100));
        cfg.default_link.duplicate_probability = 1.0;
        cfg.fifo_links = false;
        let mut n = Network::new(cfg);
        let mut rng = SimRng::new(5);
        match n.route(SimTime::ZERO, ProcessId(0), ProcessId(1), &mut rng) {
            Routing::DeliverDuplicated(a, b) => {
                assert_eq!(a, SimDuration::from_micros(100));
                assert_eq!(b, SimDuration::from_micros(100));
            }
            other => panic!("expected duplication, got {other:?}"),
        }
    }
}
