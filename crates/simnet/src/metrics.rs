//! Small statistics helpers used by the experiment harness.

use crate::time::SimDuration;

/// An online collection of samples with summary statistics.
///
/// Samples are stored (as `f64`) so that exact percentiles can be computed;
/// the experiment harness deals with at most a few hundred thousand samples
/// per run, which keeps this trivially cheap.
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Samples { values: Vec::new() }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Records a duration sample, in milliseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Minimum sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.min(v),
            })
        })
    }

    /// Maximum sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using nearest-rank on the sorted samples,
    /// or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let q = q.clamp(0.0, 1.0);
        let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(sorted[rank])
    }

    /// Convenience: median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Population standard deviation, or `None` if empty.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.values.len() as f64;
        Some(var.sqrt())
    }

    /// Produces a compact summary of the distribution.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.len(),
            mean: self.mean().unwrap_or(0.0),
            min: self.min().unwrap_or(0.0),
            p50: self.quantile(0.5).unwrap_or(0.0),
            p95: self.quantile(0.95).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
            std_dev: self.std_dev().unwrap_or(0.0),
        }
    }
}

impl Extend<f64> for Samples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Samples {
            values: iter.into_iter().collect(),
        }
    }
}

/// A current/peak gauge for an integer quantity (queue depths, map sizes…).
///
/// Embeddable in `Copy` stats structs; [`PeakGauge::record`] updates the
/// current value and keeps the high-water mark, which is what the experiment
/// harness reports for bounded-memory claims (e.g. the size of the OAR
/// servers' payload map under the epoch-watermark garbage collector).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeakGauge {
    current: u64,
    peak: u64,
}

impl PeakGauge {
    /// Sets the current value, raising the peak if exceeded.
    pub fn record(&mut self, value: u64) {
        self.current = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// The most recently recorded value.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// The highest value ever recorded.
    pub fn peak(&self) -> u64 {
        self.peak
    }
}

/// A power-of-two bucketed histogram of an integer quantity (batch sizes,
/// queue depths…).
///
/// Like [`PeakGauge`] it is `Copy`, so it can live inside by-value stats
/// structs. Bucket `i` counts samples in `[2^i, 2^(i+1))` — bucket 0 holds
/// size-1 samples, bucket 1 sizes 2–3, and so on; the last bucket absorbs
/// everything larger. The total and sum are kept alongside so the mean is
/// available without reconstructing it from the buckets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BucketHistogram {
    counts: [u64; BucketHistogram::BUCKETS],
    total: u64,
    sum: u64,
}

impl BucketHistogram {
    /// Number of power-of-two buckets (the last one is open-ended).
    pub const BUCKETS: usize = 12;

    /// Records one sample. Zero-valued samples land in bucket 0.
    pub fn record(&mut self, value: u64) {
        let idx = (63 - value.max(1).leading_zeros() as usize).min(Self::BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Per-bucket sample counts (bucket `i` covers `[2^i, 2^(i+1))`).
    pub fn counts(&self) -> &[u64; Self::BUCKETS] {
        &self.counts
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean of the samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }
}

/// A compact distribution summary, serialisable for the experiment harness.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples() {
        let s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.median(), None);
        assert_eq!(s.std_dev(), None);
        assert_eq!(s.summary().count, 0);
    }

    #[test]
    fn basic_statistics() {
        let s: Samples = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.median(), Some(3.0));
        assert!((s.std_dev().unwrap() - std::f64::consts::SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let s: Samples = (1..=100).map(|v| v as f64).collect();
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        let p95 = s.quantile(0.95).unwrap();
        assert!((94.0..=96.0).contains(&p95));
        // out-of-range quantiles are clamped
        assert_eq!(s.quantile(2.0), Some(100.0));
        assert_eq!(s.quantile(-1.0), Some(1.0));
    }

    #[test]
    fn record_duration_in_millis() {
        let mut s = Samples::new();
        s.record_duration(SimDuration::from_micros(2_500));
        assert_eq!(s.mean(), Some(2.5));
    }

    #[test]
    fn summary_display() {
        let s: Samples = [1.0, 2.0].into_iter().collect();
        let text = format!("{}", s.summary());
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=1.500"));
    }

    #[test]
    fn extend_appends() {
        let mut s = Samples::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn bucket_histogram_places_samples_by_power_of_two() {
        let mut h = BucketHistogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1 << 20] {
            h.record(v);
        }
        // 0 and 1 → bucket 0; 2 and 3 → bucket 1; 4 and 7 → bucket 2;
        // 8 → bucket 3; the huge sample → the open-ended last bucket.
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[2], 2);
        assert_eq!(h.counts()[3], 1);
        assert_eq!(h.counts()[BucketHistogram::BUCKETS - 1], 1);
        assert_eq!(h.total(), 8);
        assert_eq!(h.sum(), 25 + (1 << 20));
    }

    #[test]
    fn bucket_histogram_mean() {
        let mut h = BucketHistogram::default();
        assert_eq!(h.mean(), None);
        h.record(2);
        h.record(4);
        assert_eq!(h.mean(), Some(3.0));
    }
}
