//! Deterministic random number generation for simulations.
//!
//! All randomness in a simulation (link latencies, drop decisions, tie-breaking
//! inside protocol components) flows through a single seeded [`SimRng`], so a
//! run is fully reproducible from `(configuration, seed)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// A seeded random number generator owned by the simulation [`World`].
///
/// [`World`]: crate::World
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns a uniformly distributed value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Returns a uniformly distributed integer in `[lo, hi]` (inclusive).
    pub fn int_in(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            lo
        } else {
            self.inner.gen_range(lo..=hi)
        }
    }

    /// Returns a uniformly distributed duration in `[lo, hi]` (inclusive).
    pub fn duration_in(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration::from_micros(self.int_in(lo.as_micros(), hi.as_micros()))
    }

    /// Samples an exponentially distributed duration with the given mean,
    /// truncated at `10 × mean` to keep the event horizon bounded.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        let mean_us = mean.as_micros() as f64;
        if mean_us <= 0.0 {
            return SimDuration::ZERO;
        }
        let u: f64 = 1.0 - self.unit();
        let sample = -mean_us * u.ln();
        let capped = sample.min(mean_us * 10.0).max(0.0);
        SimDuration::from_micros(capped as u64)
    }

    /// Returns a reference to the underlying `rand` generator, for callers that
    /// need the full `Rng` API.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }

    /// Derives a new, independent generator (used to give each process its own
    /// stream so that adding a process does not perturb the others).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.int_in(0, 1_000_000), b.int_in(0, 1_000_000));
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64)
            .filter(|_| a.int_in(0, u64::MAX) == b.int_in(0, u64::MAX))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(9);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn int_in_respects_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.int_in(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(r.int_in(5, 5), 5);
        assert_eq!(r.int_in(9, 3), 9);
    }

    #[test]
    fn duration_in_respects_bounds() {
        let mut r = SimRng::new(4);
        let lo = SimDuration::from_micros(100);
        let hi = SimDuration::from_micros(200);
        for _ in 0..100 {
            let d = r.duration_in(lo, hi);
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(5);
        let mean = SimDuration::from_micros(1_000);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| r.exponential(mean).as_micros()).sum();
        let observed = total as f64 / n as f64;
        assert!(
            (800.0..1200.0).contains(&observed),
            "observed mean {observed}"
        );
    }

    #[test]
    fn exponential_zero_mean() {
        let mut r = SimRng::new(6);
        assert_eq!(r.exponential(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::new(11);
        let mut b = SimRng::new(11);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.int_in(0, 1000), fb.int_in(0, 1000));
    }
}
