//! Simulated time.
//!
//! The simulator measures time in microseconds since the start of the run.
//! [`SimTime`] is an absolute instant, [`SimDuration`] a span between instants.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant of simulated time, in microseconds since the start of
/// the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a number of microseconds since the start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from a number of milliseconds since the start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant from a number of seconds since the start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// The number of whole microseconds since the start of the simulation.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The time since the start, expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The elapsed duration since `earlier`, saturating at zero.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// The duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Returns `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert!((SimTime::from_micros(1_500).as_millis_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!(t + d, SimTime::from_millis(15));
        assert_eq!(SimTime::from_millis(15) - t, d);
        assert_eq!(t - SimTime::from_millis(20), SimDuration::ZERO);
        assert_eq!(d + d, SimDuration::from_millis(10));
        assert_eq!(d.saturating_mul(3), SimDuration::from_millis(15));
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(b.duration_since(a), SimDuration::from_millis(1));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(format!("{}", SimTime::from_micros(1500)), "1.500ms");
        assert_eq!(format!("{:?}", SimDuration::from_micros(7)), "7µs");
    }
}
