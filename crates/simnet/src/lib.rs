//! # oar-simnet — deterministic simulation of an asynchronous system
//!
//! This crate is the substrate on which the Optimistic Active Replication (OAR)
//! protocol and its baselines are implemented and evaluated. It models the
//! system of the paper's §3: an **asynchronous message-passing system** of
//! processes that fail only by crashing, connected by (configurably) reliable
//! FIFO channels.
//!
//! The simulator is a classic discrete-event engine:
//!
//! * every protocol participant is a [`Process`] — a non-blocking, event-driven
//!   state machine reacting to `on_start` / `on_message` / `on_timer`;
//! * processes interact with the world only through the [`Runtime`] trait
//!   (send a message, set a timer, annotate the trace), whose simulator
//!   implementation is the action-buffering [`Context`]. The same trait is
//!   implemented by the real-clock threaded backend (`oar-rtnet`), so
//!   protocol code is runtime-agnostic;
//! * the [`World`] owns the event queue, the [`Network`] (latency models,
//!   message loss, partitions) and a seeded RNG, so that every run is exactly
//!   reproducible from `(configuration, seed)`.
//!
//! Fault injection — crashes, partitions, link loss — is part of the substrate
//! because the OAR paper's interesting behaviours (Figures 3 and 4, the
//! external-inconsistency scenario of Figure 1b) only appear under failures and
//! wrong suspicions.
//!
//! ```
//! use oar_simnet::{NetConfig, Process, ProcessId, Runtime, SimTime, World};
//!
//! struct Counter { seen: usize }
//! impl Process<&'static str> for Counter {
//!     fn on_message(&mut self, _rt: &mut dyn Runtime<&'static str>, _from: ProcessId, _msg: &'static str) {
//!         self.seen += 1;
//!     }
//! }
//!
//! let mut world: World<&'static str> = World::new(NetConfig::lan(), 1);
//! let a = world.add_process(Counter { seen: 0 });
//! let b = world.add_process(Counter { seen: 0 });
//! world.send_external(a, b, "hello");
//! world.run_until_quiescent(SimTime::from_secs(1));
//! assert_eq!(world.process_ref::<Counter>(b).seen, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod metrics;
pub mod network;
pub mod process;
pub mod rng;
pub mod runtime;
pub mod time;
pub mod trace;
pub mod world;

pub use config::{LatencyModel, LinkConfig, NetConfig, PartitionMode};
pub use context::{Action, Context, Payload};
pub use metrics::{BucketHistogram, PeakGauge, Samples, Summary};
pub use network::{Network, Routing};
pub use process::{AsAny, GroupId, Process, ProcessId, Timer, TimerId};
pub use rng::SimRng;
pub use runtime::{Runtime, TimerTag};
pub use time::{SimDuration, SimTime};
pub use trace::{DropReason, NetStats, TraceEvent, TraceKind, Tracer};
pub use world::{
    horizon_for, ForkError, PendingEvent, PendingEventInfo, ProcessCall, ProcessFactory,
    RunOutcome, StopReason, World, DEFAULT_HORIZON,
};
