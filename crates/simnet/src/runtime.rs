//! The runtime boundary: the [`Runtime`] trait is everything a process may
//! ask of whatever is driving it.
//!
//! Protocol code (servers, clients, baselines) is written against this trait
//! only — never against a concrete backend — so the *same* process logic runs
//! on two very different substrates:
//!
//! * [`Context`](crate::Context): the deterministic discrete-event simulator.
//!   Callbacks record actions that the single-threaded [`World`](crate::World)
//!   applies after the callback returns; time is simulated, runs are
//!   reproducible from `(config, seed)` and the correctness propositions are
//!   checked here.
//! * `rtnet::RtContext` (the `oar-rtnet` crate): a real-clock backend with one
//!   OS thread per process, in-process channels and monotonic [`std::time::Instant`]
//!   time. Nothing is deterministic, but the numbers are genuine wall-clock.
//!
//! The trait is **object-safe** on purpose: processes are stored as
//! `Box<dyn Process<M>>` by both backends, so callbacks receive
//! `&mut dyn Runtime<M>` and neither the process trait nor the process
//! objects grow a backend type parameter.

use crate::process::{ProcessId, TimerId};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Typed timer tags: why a timer was set, shared by every process of the OAR
/// stack so both runtimes dispatch timers without magic numbers.
///
/// The tag travels verbatim from [`Runtime::set_timer`] to
/// [`Process::on_timer`](crate::Process::on_timer); a process multiplexing
/// several timer purposes branches on it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimerTag {
    /// A periodic maintenance tick (heartbeats, suspicion checks, sequencer
    /// batching, baseline resends).
    Tick,
    /// The sequencer's partial-batch flush deadline.
    Flush,
    /// A rejoining replica's catch-up retry/backoff timer.
    CatchUp,
    /// A client's think-time / start-delay timer before submitting the next
    /// request (also used by the transactional client between transactions).
    NextRequest,
    /// An open-loop load generator's next scheduled arrival.
    Arrival,
    /// An uninterpreted tag for tests and ad-hoc processes.
    Custom(u32),
}

/// Everything a process may ask of the runtime driving it: the clock, its own
/// identity, randomness, message sends, timers and trace annotations.
///
/// Implementations must uphold the contract process code relies on:
///
/// * callbacks of one process run in mutual exclusion ("tasks execute in
///   mutual exclusion" in the paper's words), so `&mut self` state never
///   races;
/// * [`now`](Runtime::now) is monotone within a process;
/// * messages between two processes arrive in FIFO order (both backends
///   deliver over order-preserving links; reordering is the job of the
///   simulated network's *loss*, not of the transport);
/// * timer callbacks fire no earlier than their delay, tagged as armed.
pub trait Runtime<M> {
    /// The current time. Simulated time on the simnet backend, monotonic
    /// real time (µs since the run started) on the real-clock backend.
    fn now(&self) -> SimTime;

    /// The identifier of the process running this callback.
    fn id(&self) -> ProcessId;

    /// A per-process deterministic random number generator. On the simnet
    /// backend this is the world's seeded RNG (replays identically); on the
    /// real-clock backend each process owns one seeded from `(seed, id)`, so
    /// *command generation* stays reproducible even though interleaving is
    /// not.
    fn rng(&mut self) -> &mut SimRng;

    /// Sends `msg` to `to`. Sending to oneself is allowed and delivered like
    /// any other message.
    fn send(&mut self, to: ProcessId, msg: M);

    /// Sends `msg` to every process in `targets` (including the sender if it
    /// is listed). Backends share one payload allocation across recipients
    /// where possible.
    fn send_all(&mut self, targets: &[ProcessId], msg: M);

    /// Arms a timer that fires after `delay`; the returned [`TimerId`] can be
    /// used to cancel it. `tag` is returned verbatim in `on_timer`.
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId;

    /// Cancels a previously armed timer. Cancelling a timer that already
    /// fired or was already cancelled is a no-op.
    fn cancel_timer(&mut self, id: TimerId);

    /// Records a protocol-level annotation (e.g. "Opt-deliver(m3)") in the
    /// runtime's trace. The simnet tracer stores these; the real-clock
    /// backend discards them (they are debugging aid, not protocol state).
    fn annotate(&mut self, text: String);
}
