//! The simulation engine: a deterministic discrete-event executor for a set of
//! [`Process`]es connected by a simulated [`Network`].

use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BinaryHeap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::config::NetConfig;
use crate::context::{Action, Context, Payload};
use crate::network::{Network, Routing};
use crate::process::{GroupId, Process, ProcessId, Timer, TimerId};
use crate::rng::SimRng;
use crate::runtime::TimerTag;
use crate::time::{SimDuration, SimTime};
use crate::trace::{DropReason, NetStats, TraceKind, Tracer};

/// A closure scheduled to run against a specific process at a specific time,
/// used by tests and experiment drivers to inject external stimuli.
pub type ProcessCall<M> = Box<dyn FnOnce(&mut dyn Process<M>, &mut Context<'_, M>)>;

/// A deferred constructor for the fresh process image installed by a
/// scheduled restart ([`World::schedule_restart`]).
pub type ProcessFactory<M> = Box<dyn FnOnce() -> Box<dyn Process<M>>>;

enum EventKind<M> {
    Deliver {
        from: ProcessId,
        to: ProcessId,
        /// Owned for unicast; shared for multicast, in which case the
        /// recipients all point at the same allocation and a private copy is
        /// made only when the message is actually handed to `on_message`
        /// (none for the last recipient).
        msg: Payload<M>,
        /// Destination incarnation at send time: a message in flight across a
        /// crash/restart boundary is addressed to the *old* incarnation and
        /// is dropped at delivery time (a restarted process starts with fresh
        /// state and an empty inbox).
        incarnation: u64,
    },
    Timer {
        at: ProcessId,
        id: TimerId,
        tag: TimerTag,
        /// Owner incarnation when the timer was armed: timers armed before a
        /// crash never fire into the restarted process.
        incarnation: u64,
    },
    Crash {
        at: ProcessId,
    },
    Restart {
        at: ProcessId,
        make: ProcessFactory<M>,
    },
    InstallPartition {
        groups: Vec<Vec<ProcessId>>,
    },
    HealPartition,
    Call {
        at: ProcessId,
        f: ProcessCall<M>,
    },
}

struct QueuedEvent<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    /// Events are totally ordered by `(time, seq)`. `seq` is the per-world
    /// push counter, so same-timestamp events dispatch in the order they were
    /// scheduled — this is the **stable tie-breaking key** that makes runs
    /// replayable: a trace that names events by `seq` (as the `oar-mc` model
    /// checker does) identifies each pending event unambiguously, and a plain
    /// run over the same pushes dispatches them in exactly this order.
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Why a [`World::run_until_quiescent`] loop stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained completely: nothing will ever happen again.
    Quiescent,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event limit ([`World::set_event_limit`]) was hit with events still
    /// pending.
    EventLimitReached,
}

/// Result of [`World::run_until_quiescent`]: the simulated time reached plus
/// whether the run actually quiesced or was cut off by a budget. A model
/// checker needs the distinction to tell a genuine deadlock (quiescent but
/// goal not reached) from an exploration cutoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Simulated time when the loop stopped.
    pub time: SimTime,
    /// Why the loop stopped.
    pub reason: StopReason,
}

impl RunOutcome {
    /// `true` when the run drained every pending event.
    pub fn is_quiescent(self) -> bool {
        self.reason == StopReason::Quiescent
    }
}

/// What a pending event will do when dispatched — the model-checking view of
/// one queue entry, with the message payload elided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PendingEventInfo {
    /// A message delivery.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
    },
    /// A timer firing.
    Timer {
        /// The process whose timer fires.
        at: ProcessId,
        /// The tag the timer was armed with.
        tag: TimerTag,
    },
    /// A scheduled crash ([`World::schedule_crash`]).
    Crash {
        /// The process that will crash.
        at: ProcessId,
    },
    /// A scheduled restart ([`World::schedule_restart`]).
    Restart {
        /// The process that will be revived.
        at: ProcessId,
    },
    /// A scheduled partition install.
    Partition,
    /// A scheduled partition heal.
    Heal,
    /// A scheduled external call ([`World::schedule_call`]).
    Call {
        /// The process the call targets.
        at: ProcessId,
    },
}

/// One pending event of the queue, as exposed to a model checker by
/// [`World::pending_events`] / [`World::enabled_events`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingEvent {
    /// Stable per-world sequence number — the replayable identity of the
    /// event (see the `QueuedEvent` ordering: ties on `time` break by
    /// `seq`, so naming events by `seq` makes traces replayable).
    pub seq: u64,
    /// Scheduled dispatch time (a lower bound under key-directed dispatch).
    pub time: SimTime,
    /// What the event will do.
    pub info: PendingEventInfo,
    /// `true` when dispatching the event cannot affect any process or network
    /// state in the *current* world (delivery to a crashed or restarted
    /// destination, cancelled or stale timer, crash of an already-crashed
    /// process, …): a checker drains these without branching.
    pub noop: bool,
}

/// Why [`World::fork`] could not copy the world.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForkError {
    /// A process did not implement [`Process::fork`].
    UnforkableProcess(ProcessId),
    /// A pending scheduled restart or call holds a one-shot closure that
    /// cannot be cloned; inject faults through immediate operations
    /// ([`World::crash_now`], [`World::restart_now`]) instead.
    UnforkableEvent(u64),
}

impl std::fmt::Display for ForkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForkError::UnforkableProcess(p) => {
                write!(f, "process {p} does not implement Process::fork")
            }
            ForkError::UnforkableEvent(seq) => write!(
                f,
                "pending event seq {seq} holds a non-clonable closure (scheduled restart/call)"
            ),
        }
    }
}

impl std::error::Error for ForkError {}

struct Slot<M> {
    process: Box<dyn Process<M>>,
    crashed: bool,
    started: bool,
    /// Bumped on every restart; events addressed to an older incarnation are
    /// dropped at dispatch time.
    incarnation: u64,
}

struct HeldMessage<M> {
    from: ProcessId,
    to: ProcessId,
    msg: Payload<M>,
    incarnation: u64,
}

/// A deterministic discrete-event simulation of a set of processes exchanging
/// messages over a configurable network.
///
/// The same `(configuration, seed, process set)` always produces the same run.
///
/// # Examples
///
/// ```
/// use oar_simnet::{NetConfig, Process, ProcessId, Runtime, SimTime, World};
///
/// struct Echo;
/// impl Process<u32> for Echo {
///     fn on_message(&mut self, ctx: &mut dyn Runtime<u32>, from: ProcessId, msg: u32) {
///         if msg < 3 {
///             ctx.send(from, msg + 1);
///         }
///     }
/// }
///
/// let mut world: World<u32> = World::new(NetConfig::lan(), 42);
/// let a = world.add_process(Echo);
/// let b = world.add_process(Echo);
/// world.send_external(a, b, 0);
/// world.run_until_quiescent(SimTime::from_secs(1));
/// assert!(world.stats().delivered >= 4);
/// ```
pub struct World<M> {
    slots: Vec<Slot<M>>,
    net: Network,
    queue: BinaryHeap<QueuedEvent<M>>,
    held: Vec<HeldMessage<M>>,
    now: SimTime,
    seq: u64,
    rng: SimRng,
    tracer: Tracer,
    next_timer_id: u64,
    cancelled_timers: HashSet<TimerId>,
    events_processed: u64,
    event_limit: Option<u64>,
}

impl<M: Clone + 'static> World<M> {
    /// Creates a world with the given network configuration and RNG seed.
    pub fn new(config: NetConfig, seed: u64) -> Self {
        World {
            slots: Vec::new(),
            net: Network::new(config),
            queue: BinaryHeap::new(),
            held: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: SimRng::new(seed),
            tracer: Tracer::new(false),
            next_timer_id: 0,
            cancelled_timers: HashSet::new(),
            events_processed: 0,
            event_limit: None,
        }
    }

    /// Enables or disables recording of per-message network trace events
    /// (annotations and crash/partition events are always recorded). Resets
    /// the recorded events and statistics; group assignments are kept.
    pub fn record_network_events(&mut self, enabled: bool) {
        let mut tracer = Tracer::new(enabled);
        for id in self.process_ids() {
            if let Some(g) = self.tracer.group_of(id) {
                tracer.assign_group(id, g);
            }
        }
        self.tracer = tracer;
    }

    /// Declares `process` a member of replication group `group`. Sharded
    /// deployments call this for every server and client so the tracer
    /// splits [`NetStats`] per group ([`World::group_stats`]); single-group
    /// deployments can ignore groups entirely.
    pub fn assign_group(&mut self, process: ProcessId, group: GroupId) {
        self.tracer.assign_group(process, group);
    }

    /// The group `process` was assigned to, if any.
    pub fn group_of(&self, process: ProcessId) -> Option<GroupId> {
        self.tracer.group_of(process)
    }

    /// Network statistics attributed to one group (sender's group for
    /// message events, owner's group for timers).
    pub fn group_stats(&self, group: GroupId) -> NetStats {
        self.tracer.group_stats(group)
    }

    /// Limits the total number of events processed; exceeding the limit makes
    /// `run*` return early. Useful as a livelock guard in property tests.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = Some(limit);
    }

    /// Adds a process and returns its identifier. Identifiers are dense and
    /// assigned in insertion order.
    pub fn add_process<P: Process<M> + 'static>(&mut self, process: P) -> ProcessId {
        let id = ProcessId(self.slots.len());
        self.slots.push(Slot {
            process: Box::new(process),
            crashed: false,
            started: false,
            incarnation: 0,
        });
        id
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The number of processes in the world (crashed or not).
    pub fn num_processes(&self) -> usize {
        self.slots.len()
    }

    /// Identifiers of all processes, in insertion order.
    pub fn process_ids(&self) -> Vec<ProcessId> {
        (0..self.slots.len()).map(ProcessId).collect()
    }

    /// Returns `true` if the given process has crashed.
    pub fn is_crashed(&self, id: ProcessId) -> bool {
        self.slots[id.0].crashed
    }

    /// Aggregate network statistics for the run so far.
    pub fn stats(&self) -> NetStats {
        self.tracer.stats()
    }

    /// The trace recorded so far.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the network (link overrides etc.).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Downcasts process `id` to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the process is not of type `P`.
    pub fn process_ref<P: 'static>(&self, id: ProcessId) -> &P {
        let process: &dyn Process<M> = self.slots[id.0].process.as_ref();
        crate::process::AsAny::as_any(process)
            .downcast_ref::<P>()
            .expect("process has a different concrete type")
    }

    /// Mutable variant of [`World::process_ref`].
    ///
    /// # Panics
    ///
    /// Panics if the process is not of type `P`.
    pub fn process_mut<P: 'static>(&mut self, id: ProcessId) -> &mut P {
        let process: &mut dyn Process<M> = self.slots[id.0].process.as_mut();
        crate::process::AsAny::as_any_mut(process)
            .downcast_mut::<P>()
            .expect("process has a different concrete type")
    }

    /// Injects a message "from the outside": it is routed through the network
    /// like a message sent by `from`. Useful for tests that drive a protocol
    /// without modelling the sender as a process.
    pub fn send_external(&mut self, from: ProcessId, to: ProcessId, msg: M) {
        self.route_send(from, to, Payload::Owned(msg));
    }

    /// Schedules `process` to crash at time `at` (crash-stop: it never
    /// recovers and receives no further events).
    pub fn schedule_crash(&mut self, process: ProcessId, at: SimTime) {
        self.push_event(at, EventKind::Crash { at: process });
    }

    /// Crashes `process` immediately.
    pub fn crash_now(&mut self, process: ProcessId) {
        self.apply_crash(process);
    }

    /// Revives a crashed process immediately, installing `fresh` as its new
    /// in-memory state and invoking its `on_start` hook right away.
    ///
    /// Crash-recovery semantics: everything the old incarnation held in
    /// memory is gone, messages sent while it was down (or still in flight
    /// across the restart) stay lost, and timers armed before the crash never
    /// fire into the new incarnation. Restarting a process that is not
    /// crashed is a no-op.
    pub fn restart_now<P: Process<M> + 'static>(&mut self, process: ProcessId, fresh: P) {
        self.apply_restart(process, Box::new(fresh));
    }

    /// Schedules `process` to be revived at time `at` with the process image
    /// produced by `make` — the scriptable half of a crash/restart fault
    /// schedule (pair with [`World::schedule_crash`]).
    pub fn schedule_restart(
        &mut self,
        at: SimTime,
        process: ProcessId,
        make: impl FnOnce() -> Box<dyn Process<M>> + 'static,
    ) {
        self.push_event(
            at,
            EventKind::Restart {
                at: process,
                make: Box::new(make),
            },
        );
    }

    /// How many times `process` has been restarted.
    pub fn incarnation_of(&self, process: ProcessId) -> u64 {
        self.slots[process.0].incarnation
    }

    /// Schedules a partition to be installed at time `at`.
    pub fn schedule_partition(&mut self, at: SimTime, groups: Vec<Vec<ProcessId>>) {
        self.push_event(at, EventKind::InstallPartition { groups });
    }

    /// Installs a partition immediately.
    pub fn partition_now(&mut self, groups: Vec<Vec<ProcessId>>) {
        self.net.install_partition(&groups);
        self.tracer.record(self.now, TraceKind::PartitionStarted);
    }

    /// Schedules all partitions to heal at time `at`.
    pub fn schedule_heal(&mut self, at: SimTime) {
        self.push_event(at, EventKind::HealPartition);
    }

    /// Heals all partitions immediately, releasing held messages.
    pub fn heal_now(&mut self) {
        self.apply_heal();
    }

    /// Schedules `f` to run against process `process` at time `at`, with a
    /// full [`Context`] (so it can send messages, set timers, …).
    pub fn schedule_call(
        &mut self,
        at: SimTime,
        process: ProcessId,
        f: impl FnOnce(&mut dyn Process<M>, &mut Context<'_, M>) + 'static,
    ) {
        self.push_event(
            at,
            EventKind::Call {
                at: process,
                f: Box::new(f),
            },
        );
    }

    /// Runs `f` against process `process` immediately (at the current time).
    pub fn invoke_now(
        &mut self,
        process: ProcessId,
        f: impl FnOnce(&mut dyn Process<M>, &mut Context<'_, M>),
    ) {
        if self.slots[process.0].crashed {
            return;
        }
        let mut actions: Vec<Action<M>> = Vec::new();
        {
            let slot = &mut self.slots[process.0];
            let mut ctx = Context::new(
                self.now,
                process,
                &mut self.rng,
                &mut actions,
                &mut self.next_timer_id,
            );
            f(slot.process.as_mut(), &mut ctx);
        }
        self.apply_actions(process, actions);
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        if let Some(limit) = self.event_limit {
            if self.events_processed >= limit {
                return false;
            }
        }
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.time >= self.now, "time must be monotonic");
        self.now = event.time;
        self.events_processed += 1;
        self.dispatch(event.kind);
        true
    }

    /// Runs until the queue is empty or the next event is after `until`.
    /// Returns the simulated time reached.
    pub fn run_until(&mut self, until: SimTime) -> SimTime {
        self.ensure_started();
        loop {
            if let Some(limit) = self.event_limit {
                if self.events_processed >= limit {
                    break;
                }
            }
            match self.queue.peek() {
                Some(e) if e.time <= until => {
                    let event = self.queue.pop().expect("peeked event");
                    self.now = event.time;
                    self.events_processed += 1;
                    self.dispatch(event.kind);
                }
                _ => break,
            }
        }
        if self.now < until {
            self.now = until;
        }
        self.now
    }

    /// Runs until no events remain or the horizon `max` is reached.
    ///
    /// The returned [`RunOutcome`] distinguishes a *genuinely quiescent*
    /// system (the queue drained — nothing will ever happen again) from a
    /// run cut off by a budget (the time horizon, or the event limit set via
    /// [`World::set_event_limit`]). Callers that only want the time reached
    /// can keep ignoring the return value; callers probing for deadlocks —
    /// like the `oar-mc` model checker — must check
    /// [`RunOutcome::is_quiescent`] instead of assuming the run finished.
    pub fn run_until_quiescent(&mut self, max: SimTime) -> RunOutcome {
        self.ensure_started();
        while self.step() {
            if self.now >= max {
                break;
            }
        }
        let reason = if self.queue.is_empty() {
            StopReason::Quiescent
        } else if self
            .event_limit
            .is_some_and(|limit| self.events_processed >= limit)
        {
            StopReason::EventLimitReached
        } else {
            StopReason::HorizonReached
        };
        RunOutcome {
            time: self.now,
            reason,
        }
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Returns `true` if no events are pending.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    // ------------------------------------------------------------------
    // model-checking hooks (used by the `oar-mc` crate)
    // ------------------------------------------------------------------

    /// Runs every not-yet-started process's `on_start` hook without
    /// dispatching any event. A model checker calls this once on the root
    /// world so the initial pending-event set is complete before the first
    /// scheduling choice.
    pub fn start(&mut self) {
        self.ensure_started();
    }

    /// All pending events, sorted by the dispatch order key `(time, seq)`,
    /// with their no-op status evaluated against the current world state.
    pub fn pending_events(&self) -> Vec<PendingEvent> {
        let mut pending: Vec<PendingEvent> = self
            .queue
            .iter()
            .map(|e| PendingEvent {
                seq: e.seq,
                time: e.time,
                info: Self::event_info(&e.kind),
                noop: self.event_noop(&e.kind),
            })
            .collect();
        pending.sort_by_key(|e| (e.time, e.seq));
        pending
    }

    /// The scheduling choices a model checker may take next: pending events
    /// at or before `horizon`, minus no-ops, restricted to those whose
    /// dispatch order is *not* already forced by the system model:
    ///
    /// * on FIFO links, only the earliest `(time, seq)` delivery per ordered
    ///   link `(from, to)` is enabled — later messages on the same channel
    ///   can never overtake it in any real run;
    /// * per process, only the earliest pending timer is enabled — timer
    ///   deadlines are local clock reads, totally ordered at one process.
    ///
    /// Everything else (deliveries on different links, timers at different
    /// processes, faults) is concurrent: dispatching them in either order is
    /// realisable by some latency assignment, so each is a separate branch.
    pub fn enabled_events(&self, horizon: SimTime) -> Vec<PendingEvent> {
        let fifo = self.net.config().fifo_links;
        let mut first_on_link: HashSet<(ProcessId, ProcessId)> = HashSet::new();
        let mut first_timer_at: HashSet<ProcessId> = HashSet::new();
        let mut enabled = Vec::new();
        for e in self.pending_events() {
            if e.time > horizon || e.noop {
                continue;
            }
            match e.info {
                PendingEventInfo::Deliver { from, to } if fifo => {
                    if first_on_link.insert((from, to)) {
                        enabled.push(e);
                    }
                }
                PendingEventInfo::Timer { at, .. } => {
                    if first_timer_at.insert(at) {
                        enabled.push(e);
                    }
                }
                _ => enabled.push(e),
            }
        }
        enabled
    }

    /// Dispatches the pending event with sequence number `seq`, regardless of
    /// its position in the time order — the key-directed dispatch a model
    /// checker uses to explore interleavings. Returns `false` (and does
    /// nothing) when no pending event has that `seq`.
    ///
    /// Time handling is *abstract*: the clock only moves forward
    /// (`now = max(now, event.time)`), so dispatching an event out of time
    /// order treats the times of the remaining events as lower bounds. This
    /// is sound for configurations whose behaviour does not read the clock
    /// value itself (constant-latency, no-loss networks and timer-free
    /// protocol settings — see the `oar-mc` crate docs).
    pub fn dispatch_key(&mut self, seq: u64) -> bool {
        self.ensure_started();
        let mut events = std::mem::take(&mut self.queue).into_vec();
        let Some(pos) = events.iter().position(|e| e.seq == seq) else {
            self.queue = BinaryHeap::from(events);
            return false;
        };
        let event = events.swap_remove(pos);
        self.queue = BinaryHeap::from(events);
        self.now = self.now.max(event.time);
        self.events_processed += 1;
        self.dispatch(event.kind);
        true
    }

    /// A content digest of one pending event (kind, participants, payload
    /// digest — no times, no seq), or `None` when no pending event has that
    /// `seq`. Model checkers mix these into sleep-set hashes so that sets
    /// keyed by `seq` compare equal across forks.
    pub fn event_signature(&self, seq: u64, msg_digest: &dyn Fn(&M) -> u64) -> Option<u64> {
        let event = self.queue.iter().find(|e| e.seq == seq)?;
        let mut h = DefaultHasher::new();
        Self::hash_event_content(&event.kind, msg_digest, &mut h);
        Some(h.finish())
    }

    /// A digest of the whole world state for model-checker deduplication:
    /// per-process state digests, crash/incarnation flags, the partition
    /// flag, held messages, and the *content* of pending in-horizon non-noop
    /// events (per-link deliveries in FIFO order, per-process timers in
    /// deadline order) — with event **times excluded**, matching the abstract
    /// clock of [`World::dispatch_key`].
    ///
    /// Returns `None` when any live process lacks a
    /// [`Process::state_digest`], which disables deduplication.
    ///
    /// Only sound for configurations where the RNG cannot influence
    /// behaviour (constant latency, zero loss/duplication): the RNG state is
    /// deliberately not hashed.
    pub fn fingerprint(&self, horizon: SimTime, msg_digest: &dyn Fn(&M) -> u64) -> Option<u64> {
        let mut h = DefaultHasher::new();
        self.net.is_partitioned().hash(&mut h);
        for held in &self.held {
            (held.from, held.to, held.incarnation).hash(&mut h);
            Self::hash_payload(&held.msg, msg_digest, &mut h);
        }
        for (idx, slot) in self.slots.iter().enumerate() {
            (idx, slot.crashed, slot.incarnation).hash(&mut h);
            if !slot.crashed {
                slot.process.state_digest()?.hash(&mut h);
            }
        }
        // Pending events: group per "channel" so the hash captures the
        // *order-relevant* content. BTreeMaps give a canonical iteration
        // order; within one channel events are pushed in (time, seq) order.
        let mut events: Vec<&QueuedEvent<M>> = self.queue.iter().collect();
        events.sort_by_key(|e| (e.time, e.seq));
        let mut delivers: BTreeMap<(ProcessId, ProcessId), Vec<u64>> = BTreeMap::new();
        let mut timers: BTreeMap<ProcessId, Vec<TimerTag>> = BTreeMap::new();
        let mut other: Vec<(u8, Option<ProcessId>)> = Vec::new();
        for e in events {
            if e.time > horizon || self.event_noop(&e.kind) {
                continue;
            }
            match &e.kind {
                EventKind::Deliver { from, to, msg, .. } => {
                    let mut eh = DefaultHasher::new();
                    Self::hash_payload(msg, msg_digest, &mut eh);
                    delivers.entry((*from, *to)).or_default().push(eh.finish());
                }
                EventKind::Timer { at, tag, .. } => {
                    timers.entry(*at).or_default().push(*tag);
                }
                EventKind::Crash { at } => other.push((2, Some(*at))),
                EventKind::Restart { at, .. } => other.push((3, Some(*at))),
                EventKind::InstallPartition { .. } => other.push((4, None)),
                EventKind::HealPartition => other.push((5, None)),
                EventKind::Call { at, .. } => other.push((6, Some(*at))),
            }
        }
        delivers.hash(&mut h);
        timers.hash(&mut h);
        other.hash(&mut h);
        Some(h.finish())
    }

    /// Deep-copies the world so a model checker can branch: every process is
    /// copied through [`Process::fork`], the pending queue keeps its `(time,
    /// seq)` keys (so traces recorded in one branch replay in another), and
    /// network, tracer, RNG and clock state come along unchanged.
    pub fn fork(&self) -> Result<World<M>, ForkError> {
        let mut slots = Vec::with_capacity(self.slots.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            let process = slot
                .process
                .fork()
                .ok_or(ForkError::UnforkableProcess(ProcessId(idx)))?;
            slots.push(Slot {
                process,
                crashed: slot.crashed,
                started: slot.started,
                incarnation: slot.incarnation,
            });
        }
        let mut queue = BinaryHeap::with_capacity(self.queue.len());
        for e in self.queue.iter() {
            let kind = match &e.kind {
                EventKind::Deliver {
                    from,
                    to,
                    msg,
                    incarnation,
                } => EventKind::Deliver {
                    from: *from,
                    to: *to,
                    msg: Self::clone_payload(msg),
                    incarnation: *incarnation,
                },
                EventKind::Timer {
                    at,
                    id,
                    tag,
                    incarnation,
                } => EventKind::Timer {
                    at: *at,
                    id: *id,
                    tag: *tag,
                    incarnation: *incarnation,
                },
                EventKind::Crash { at } => EventKind::Crash { at: *at },
                EventKind::InstallPartition { groups } => EventKind::InstallPartition {
                    groups: groups.clone(),
                },
                EventKind::HealPartition => EventKind::HealPartition,
                EventKind::Restart { .. } | EventKind::Call { .. } => {
                    return Err(ForkError::UnforkableEvent(e.seq));
                }
            };
            queue.push(QueuedEvent {
                time: e.time,
                seq: e.seq,
                kind,
            });
        }
        let held = self
            .held
            .iter()
            .map(|held| HeldMessage {
                from: held.from,
                to: held.to,
                msg: Self::clone_payload(&held.msg),
                incarnation: held.incarnation,
            })
            .collect();
        Ok(World {
            slots,
            net: self.net.clone(),
            queue,
            held,
            now: self.now,
            seq: self.seq,
            rng: self.rng.clone(),
            tracer: self.tracer.clone(),
            next_timer_id: self.next_timer_id,
            cancelled_timers: self.cancelled_timers.clone(),
            events_processed: self.events_processed,
            event_limit: self.event_limit,
        })
    }

    fn clone_payload(msg: &Payload<M>) -> Payload<M> {
        match msg {
            Payload::Owned(m) => Payload::Owned(m.clone()),
            Payload::Shared(m) => Payload::Shared(Arc::clone(m)),
        }
    }

    fn hash_payload(msg: &Payload<M>, msg_digest: &dyn Fn(&M) -> u64, h: &mut DefaultHasher) {
        match msg {
            Payload::Owned(m) => msg_digest(m).hash(h),
            Payload::Shared(m) => msg_digest(m).hash(h),
        }
    }

    fn hash_event_content(
        kind: &EventKind<M>,
        msg_digest: &dyn Fn(&M) -> u64,
        h: &mut DefaultHasher,
    ) {
        match kind {
            EventKind::Deliver { from, to, msg, .. } => {
                (0u8, *from, *to).hash(h);
                Self::hash_payload(msg, msg_digest, h);
            }
            EventKind::Timer { at, tag, .. } => (1u8, *at, *tag).hash(h),
            EventKind::Crash { at } => (2u8, *at).hash(h),
            EventKind::Restart { at, .. } => (3u8, *at).hash(h),
            EventKind::InstallPartition { .. } => 4u8.hash(h),
            EventKind::HealPartition => 5u8.hash(h),
            EventKind::Call { at, .. } => (6u8, *at).hash(h),
        }
    }

    fn event_info(kind: &EventKind<M>) -> PendingEventInfo {
        match kind {
            EventKind::Deliver { from, to, .. } => PendingEventInfo::Deliver {
                from: *from,
                to: *to,
            },
            EventKind::Timer { at, tag, .. } => PendingEventInfo::Timer { at: *at, tag: *tag },
            EventKind::Crash { at } => PendingEventInfo::Crash { at: *at },
            EventKind::Restart { at, .. } => PendingEventInfo::Restart { at: *at },
            EventKind::InstallPartition { .. } => PendingEventInfo::Partition,
            EventKind::HealPartition => PendingEventInfo::Heal,
            EventKind::Call { at, .. } => PendingEventInfo::Call { at: *at },
        }
    }

    /// Whether dispatching `kind` in the current world state would change
    /// nothing (mirrors the guards at the top of [`World::dispatch`]).
    fn event_noop(&self, kind: &EventKind<M>) -> bool {
        match kind {
            EventKind::Deliver {
                to, incarnation, ..
            } => self.slots[to.0].crashed || self.slots[to.0].incarnation != *incarnation,
            EventKind::Timer {
                at,
                id,
                incarnation,
                ..
            } => {
                self.cancelled_timers.contains(id)
                    || self.slots[at.0].crashed
                    || self.slots[at.0].incarnation != *incarnation
            }
            EventKind::Crash { at } => self.slots[at.0].crashed,
            EventKind::Restart { at, .. } => !self.slots[at.0].crashed,
            EventKind::Call { at, .. } => self.slots[at.0].crashed,
            EventKind::InstallPartition { .. } | EventKind::HealPartition => false,
        }
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn ensure_started(&mut self) {
        for idx in 0..self.slots.len() {
            if self.slots[idx].started || self.slots[idx].crashed {
                continue;
            }
            self.slots[idx].started = true;
            let pid = ProcessId(idx);
            let mut actions: Vec<Action<M>> = Vec::new();
            {
                let slot = &mut self.slots[idx];
                let mut ctx = Context::new(
                    self.now,
                    pid,
                    &mut self.rng,
                    &mut actions,
                    &mut self.next_timer_id,
                );
                slot.process.on_start(&mut ctx);
            }
            self.apply_actions(pid, actions);
        }
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind<M>) {
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueuedEvent { time, seq, kind });
    }

    fn dispatch(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Deliver {
                from,
                to,
                msg,
                incarnation,
            } => {
                if self.slots[to.0].crashed {
                    self.tracer.record(
                        self.now,
                        TraceKind::MessageDropped {
                            from,
                            to,
                            reason: DropReason::DestinationCrashed,
                        },
                    );
                    return;
                }
                if self.slots[to.0].incarnation != incarnation {
                    // In flight across a crash/restart boundary: the message
                    // was addressed to the old incarnation and stays lost.
                    self.tracer.record(
                        self.now,
                        TraceKind::MessageDropped {
                            from,
                            to,
                            reason: DropReason::DestinationRestarted,
                        },
                    );
                    return;
                }
                self.tracer
                    .record(self.now, TraceKind::MessageDelivered { from, to });
                // Materialise the payload: free for owned messages and for
                // the last reference of a shared one, one clone otherwise.
                let msg = msg.materialize();
                let mut actions: Vec<Action<M>> = Vec::new();
                {
                    let slot = &mut self.slots[to.0];
                    let mut ctx = Context::new(
                        self.now,
                        to,
                        &mut self.rng,
                        &mut actions,
                        &mut self.next_timer_id,
                    );
                    slot.process.on_message(&mut ctx, from, msg);
                }
                self.apply_actions(to, actions);
            }
            EventKind::Timer {
                at,
                id,
                tag,
                incarnation,
            } => {
                if self.cancelled_timers.remove(&id)
                    || self.slots[at.0].crashed
                    || self.slots[at.0].incarnation != incarnation
                {
                    return;
                }
                self.tracer.record(self.now, TraceKind::TimerFired { at });
                let mut actions: Vec<Action<M>> = Vec::new();
                {
                    let slot = &mut self.slots[at.0];
                    let mut ctx = Context::new(
                        self.now,
                        at,
                        &mut self.rng,
                        &mut actions,
                        &mut self.next_timer_id,
                    );
                    slot.process.on_timer(&mut ctx, Timer { id, tag });
                }
                self.apply_actions(at, actions);
            }
            EventKind::Crash { at } => self.apply_crash(at),
            EventKind::Restart { at, make } => self.apply_restart(at, make()),
            EventKind::InstallPartition { groups } => {
                self.net.install_partition(&groups);
                self.tracer.record(self.now, TraceKind::PartitionStarted);
            }
            EventKind::HealPartition => self.apply_heal(),
            EventKind::Call { at, f } => {
                if self.slots[at.0].crashed {
                    return;
                }
                let mut actions: Vec<Action<M>> = Vec::new();
                {
                    let slot = &mut self.slots[at.0];
                    let mut ctx = Context::new(
                        self.now,
                        at,
                        &mut self.rng,
                        &mut actions,
                        &mut self.next_timer_id,
                    );
                    f(slot.process.as_mut(), &mut ctx);
                }
                self.apply_actions(at, actions);
            }
        }
    }

    fn apply_crash(&mut self, process: ProcessId) {
        let slot = &mut self.slots[process.0];
        if slot.crashed {
            return;
        }
        slot.crashed = true;
        slot.process.on_crash();
        self.tracer.record(self.now, TraceKind::Crashed { process });
    }

    fn apply_restart(&mut self, process: ProcessId, fresh: Box<dyn Process<M>>) {
        {
            let slot = &mut self.slots[process.0];
            if !slot.crashed {
                return;
            }
            slot.process = fresh;
            slot.crashed = false;
            slot.started = true;
            slot.incarnation += 1;
        }
        self.tracer
            .record(self.now, TraceKind::Restarted { process });
        // Boot the fresh incarnation immediately: the same `on_start` hook a
        // process gets when the world first runs.
        let mut actions: Vec<Action<M>> = Vec::new();
        {
            let slot = &mut self.slots[process.0];
            let mut ctx = Context::new(
                self.now,
                process,
                &mut self.rng,
                &mut actions,
                &mut self.next_timer_id,
            );
            slot.process.on_start(&mut ctx);
        }
        self.apply_actions(process, actions);
    }

    fn apply_heal(&mut self) {
        self.net.heal_partition();
        self.tracer.record(self.now, TraceKind::PartitionHealed);
        let held = std::mem::take(&mut self.held);
        for h in held {
            if self.slots[h.to.0].incarnation != h.incarnation {
                // The destination restarted while the partition held the
                // message: it was addressed to the old incarnation.
                self.tracer.record(
                    self.now,
                    TraceKind::MessageDropped {
                        from: h.from,
                        to: h.to,
                        reason: DropReason::DestinationRestarted,
                    },
                );
                continue;
            }
            self.route_send(h.from, h.to, h.msg);
        }
    }

    fn apply_actions(&mut self, from: ProcessId, actions: Vec<Action<M>>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    if self.slots[from.0].crashed {
                        self.tracer.record(
                            self.now,
                            TraceKind::MessageDropped {
                                from,
                                to,
                                reason: DropReason::SenderCrashed,
                            },
                        );
                        continue;
                    }
                    self.route_send(from, to, msg);
                }
                Action::SetTimer { id, delay, tag } => {
                    let incarnation = self.slots[from.0].incarnation;
                    self.push_event(
                        self.now + delay,
                        EventKind::Timer {
                            at: from,
                            id,
                            tag,
                            incarnation,
                        },
                    );
                }
                Action::CancelTimer { id } => {
                    self.cancelled_timers.insert(id);
                }
                Action::Annotate(text) => {
                    self.tracer.record(
                        self.now,
                        TraceKind::Annotation {
                            process: from,
                            text,
                        },
                    );
                }
            }
        }
    }

    fn route_send(&mut self, from: ProcessId, to: ProcessId, msg: Payload<M>) {
        self.tracer
            .record(self.now, TraceKind::MessageSent { from, to });
        if to.0 >= self.slots.len() {
            self.tracer.record(
                self.now,
                TraceKind::MessageDropped {
                    from,
                    to,
                    reason: DropReason::DestinationCrashed,
                },
            );
            return;
        }
        let incarnation = self.slots[to.0].incarnation;
        match self.net.route(self.now, from, to, &mut self.rng) {
            Routing::Deliver(latency) => {
                self.push_event(
                    self.now + latency,
                    EventKind::Deliver {
                        from,
                        to,
                        msg,
                        incarnation,
                    },
                );
            }
            Routing::DeliverDuplicated(a, b) => {
                let shared = msg.into_shared();
                self.push_event(
                    self.now + a,
                    EventKind::Deliver {
                        from,
                        to,
                        msg: Payload::Shared(Arc::clone(&shared)),
                        incarnation,
                    },
                );
                self.push_event(
                    self.now + b,
                    EventKind::Deliver {
                        from,
                        to,
                        msg: Payload::Shared(shared),
                        incarnation,
                    },
                );
            }
            Routing::DropLoss => {
                self.tracer.record(
                    self.now,
                    TraceKind::MessageDropped {
                        from,
                        to,
                        reason: DropReason::RandomLoss,
                    },
                );
            }
            Routing::DropPartitioned => {
                self.tracer.record(
                    self.now,
                    TraceKind::MessageDropped {
                        from,
                        to,
                        reason: DropReason::Partitioned,
                    },
                );
            }
            Routing::HoldForHeal => {
                self.held.push(HeldMessage {
                    from,
                    to,
                    msg,
                    incarnation,
                });
            }
        }
    }
}

/// Convenience: the default duration for "run until quiescent" horizons in
/// tests (one simulated minute).
pub const DEFAULT_HORIZON: SimTime = SimTime::from_secs(60);

/// A helper that computes a reasonable quiescence horizon from a base value
/// and a message count, used by experiment drivers.
pub fn horizon_for(base: SimTime, per_message: SimDuration, messages: u64) -> SimTime {
    base + per_message.saturating_mul(messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitionMode;
    use crate::runtime::Runtime;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    /// A process that replies to pings and counts pongs.
    #[derive(Clone)]
    struct PingPong {
        peers: Vec<ProcessId>,
        pings_to_send: u32,
        pongs_received: u32,
        deliveries: Vec<(ProcessId, Msg)>,
    }

    impl PingPong {
        fn new(peers: Vec<ProcessId>, pings_to_send: u32) -> Self {
            PingPong {
                peers,
                pings_to_send,
                pongs_received: 0,
                deliveries: Vec::new(),
            }
        }
    }

    impl Process<Msg> for PingPong {
        fn on_start(&mut self, ctx: &mut dyn Runtime<Msg>) {
            for i in 0..self.pings_to_send {
                for &peer in &self.peers {
                    ctx.send(peer, Msg::Ping(i));
                }
            }
        }

        fn on_message(&mut self, ctx: &mut dyn Runtime<Msg>, from: ProcessId, msg: Msg) {
            self.deliveries.push((from, msg.clone()));
            match msg {
                Msg::Ping(i) => {
                    ctx.annotate(format!("ping {i}"));
                    ctx.send(from, Msg::Pong(i));
                }
                Msg::Pong(_) => self.pongs_received += 1,
            }
        }

        fn fork(&self) -> Option<Box<dyn Process<Msg>>> {
            Some(Box::new(self.clone()))
        }

        fn state_digest(&self) -> Option<u64> {
            let mut h = DefaultHasher::new();
            self.pongs_received.hash(&mut h);
            for (from, msg) in &self.deliveries {
                (from, format!("{msg:?}")).hash(&mut h);
            }
            Some(h.finish())
        }
    }

    fn msg_digest(m: &Msg) -> u64 {
        let mut h = DefaultHasher::new();
        format!("{m:?}").hash(&mut h);
        h.finish()
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut world: World<Msg> = World::new(NetConfig::lan(), 1);
        let a = world.add_process(PingPong::new(vec![ProcessId(1)], 3));
        let _b = world.add_process(PingPong::new(vec![], 0));
        let outcome = world.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(outcome.reason, StopReason::Quiescent);
        assert!(outcome.is_quiescent());
        assert_eq!(outcome.time, world.now());
        assert_eq!(world.process_ref::<PingPong>(a).pongs_received, 3);
        assert_eq!(world.stats().delivered, 6);
        assert!(world.is_quiescent());
    }

    #[test]
    fn group_stats_split_traffic_by_sender_group() {
        let mut world: World<Msg> = World::new(NetConfig::lan(), 2);
        let a = world.add_process(PingPong::new(vec![ProcessId(1)], 3));
        let b = world.add_process(PingPong::new(vec![], 0));
        world.assign_group(a, GroupId(0));
        world.assign_group(b, GroupId(1));
        assert_eq!(world.group_of(a), Some(GroupId(0)));
        world.run_until_quiescent(SimTime::from_secs(1));
        // a sends 3 pings, b answers with 3 pongs; groups survive the
        // tracer reset of record_network_events.
        assert_eq!(world.group_stats(GroupId(0)).sent, 3);
        assert_eq!(world.group_stats(GroupId(1)).sent, 3);
        world.record_network_events(true);
        assert_eq!(world.group_of(b), Some(GroupId(1)));
        assert_eq!(world.group_stats(GroupId(1)).sent, 0);
    }

    #[test]
    fn determinism_same_seed_same_run() {
        let run = |seed: u64| {
            let mut world: World<Msg> = World::new(NetConfig::lan(), seed);
            world.record_network_events(true);
            let _a = world.add_process(PingPong::new(vec![ProcessId(1)], 5));
            let _b = world.add_process(PingPong::new(vec![ProcessId(0)], 5));
            world.run_until_quiescent(SimTime::from_secs(1));
            (world.now(), world.stats(), world.tracer().events().to_vec())
        };
        let (t1, s1, e1) = run(7);
        let (t2, s2, e2) = run(7);
        assert_eq!(t1, t2);
        assert_eq!(s1, s2);
        assert_eq!(e1, e2);
        let (_, s3, _) = run(8);
        // different seed: statistics identical in count but trace timing differs
        assert_eq!(s1.delivered, s3.delivered);
    }

    #[test]
    fn fifo_delivery_order_is_send_order() {
        let mut world: World<Msg> = World::new(NetConfig::lan(), 3);
        let a = world.add_process(PingPong::new(vec![ProcessId(1)], 20));
        let b = world.add_process(PingPong::new(vec![], 0));
        world.run_until_quiescent(SimTime::from_secs(1));
        let b_ref = world.process_ref::<PingPong>(b);
        let pings: Vec<u32> = b_ref
            .deliveries
            .iter()
            .filter_map(|(_, m)| match m {
                Msg::Ping(i) => Some(*i),
                _ => None,
            })
            .collect();
        assert_eq!(pings, (0..20).collect::<Vec<_>>());
        let _ = a;
    }

    #[test]
    fn crashed_process_receives_nothing() {
        let mut world: World<Msg> = World::new(NetConfig::lan(), 4);
        let _a = world.add_process(PingPong::new(vec![ProcessId(1)], 10));
        let b = world.add_process(PingPong::new(vec![], 0));
        world.crash_now(b);
        world.run_until_quiescent(SimTime::from_secs(1));
        assert!(world.is_crashed(b));
        assert!(world.process_ref::<PingPong>(b).deliveries.is_empty());
        assert_eq!(world.stats().delivered, 0);
        assert!(world.stats().dropped >= 10);
    }

    #[test]
    fn scheduled_crash_takes_effect_mid_run() {
        let mut world: World<Msg> = World::new(NetConfig::constant(SimDuration::from_millis(1)), 5);
        let a = world.add_process(PingPong::new(vec![ProcessId(1)], 1));
        let b = world.add_process(PingPong::new(vec![], 0));
        // b crashes before the ping arrives
        world.schedule_crash(b, SimTime::from_micros(500));
        world.run_until_quiescent(SimTime::from_secs(1));
        assert!(world.is_crashed(b));
        assert_eq!(world.process_ref::<PingPong>(a).pongs_received, 0);
    }

    #[test]
    fn restart_revives_a_crashed_process_with_fresh_state() {
        let mut world: World<Msg> =
            World::new(NetConfig::constant(SimDuration::from_millis(1)), 21);
        let a = world.add_process(PingPong::new(vec![ProcessId(1)], 1));
        let b = world.add_process(PingPong::new(vec![], 0));
        world.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(world.process_ref::<PingPong>(b).deliveries.len(), 1);

        world.crash_now(b);
        assert!(world.is_crashed(b));
        world.restart_now(b, PingPong::new(vec![], 0));
        assert!(!world.is_crashed(b));
        assert_eq!(world.incarnation_of(b), 1);
        // Fresh in-memory state: the pre-crash delivery log is gone.
        assert!(world.process_ref::<PingPong>(b).deliveries.is_empty());

        // The revived process receives new traffic normally.
        world.invoke_now(a, |_p, ctx| ctx.send(ProcessId(1), Msg::Ping(9)));
        world.run_until_quiescent(SimTime::from_secs(2));
        assert_eq!(world.process_ref::<PingPong>(b).deliveries.len(), 1);
        assert!(world
            .tracer()
            .events()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Restarted { process } if process == b)));
    }

    #[test]
    fn messages_in_flight_across_a_restart_stay_lost() {
        let mut world: World<Msg> =
            World::new(NetConfig::constant(SimDuration::from_millis(1)), 22);
        let a = world.add_process(PingPong::new(vec![ProcessId(1)], 1));
        let b = world.add_process(PingPong::new(vec![], 0));
        // The ping leaves a at t=0 and would arrive at t=1ms; b crashes at
        // 200us and is already back at 400us — but the message was addressed
        // to the old incarnation.
        world.schedule_crash(b, SimTime::from_micros(200));
        world.schedule_restart(SimTime::from_micros(400), b, || {
            Box::new(PingPong::new(vec![], 0))
        });
        world.run_until_quiescent(SimTime::from_secs(1));
        assert!(!world.is_crashed(b));
        assert!(world.process_ref::<PingPong>(b).deliveries.is_empty());
        assert_eq!(world.process_ref::<PingPong>(a).pongs_received, 0);
        assert_eq!(world.stats().dropped, 1);
    }

    #[test]
    fn timers_armed_before_a_crash_never_fire_into_the_new_incarnation() {
        struct TickProc {
            period: SimDuration,
            fired: Vec<TimerTag>,
        }
        impl Process<Msg> for TickProc {
            fn on_start(&mut self, ctx: &mut dyn Runtime<Msg>) {
                ctx.set_timer(self.period, TimerTag::Custom(7));
            }
            fn on_message(&mut self, _ctx: &mut dyn Runtime<Msg>, _from: ProcessId, _msg: Msg) {}
            fn on_timer(&mut self, ctx: &mut dyn Runtime<Msg>, timer: Timer) {
                self.fired.push(timer.tag);
                ctx.set_timer(self.period, TimerTag::Custom(7));
            }
        }
        let mut world: World<Msg> = World::new(NetConfig::lan(), 23);
        let p = world.add_process(TickProc {
            period: SimDuration::from_millis(10),
            fired: Vec::new(),
        });
        // Crash at 5ms: the 10ms timer of incarnation 0 is still queued.
        world.schedule_crash(p, SimTime::from_millis(5));
        // Restart at 6ms with a much slower period; the only timer that may
        // fire before t=50ms is the new incarnation's own (at 46ms).
        world.schedule_restart(SimTime::from_millis(6), p, || {
            Box::new(TickProc {
                period: SimDuration::from_millis(40),
                fired: Vec::new(),
            })
        });
        world.run_until(SimTime::from_millis(50));
        assert_eq!(
            world.process_ref::<TickProc>(p).fired,
            vec![TimerTag::Custom(7)]
        );
        assert!(world.now() >= SimTime::from_millis(46));
    }

    #[test]
    fn restarting_a_live_process_is_a_noop() {
        let mut world: World<Msg> = World::new(NetConfig::lan(), 24);
        let a = world.add_process(PingPong::new(vec![ProcessId(1)], 2));
        let b = world.add_process(PingPong::new(vec![], 0));
        world.run_until_quiescent(SimTime::from_secs(1));
        let before = world.process_ref::<PingPong>(b).deliveries.len();
        world.restart_now(b, PingPong::new(vec![], 0));
        assert_eq!(world.incarnation_of(b), 0);
        assert_eq!(world.process_ref::<PingPong>(b).deliveries.len(), before);
        let _ = a;
    }

    #[test]
    fn held_partition_messages_for_a_restarted_process_are_dropped() {
        let mut cfg = NetConfig::constant(SimDuration::from_millis(1));
        cfg.partition_mode = PartitionMode::DeliverOnHeal;
        let mut world: World<Msg> = World::new(cfg, 25);
        let a = world.add_process(PingPong::new(vec![ProcessId(1)], 1));
        let b = world.add_process(PingPong::new(vec![], 0));
        world.partition_now(vec![vec![a], vec![b]]);
        world.run_until(SimTime::from_millis(10));
        // While the ping is held for heal, b crashes and restarts.
        world.crash_now(b);
        world.restart_now(b, PingPong::new(vec![], 0));
        world.heal_now();
        world.run_until_quiescent(SimTime::from_secs(1));
        assert!(world.process_ref::<PingPong>(b).deliveries.is_empty());
        assert_eq!(world.process_ref::<PingPong>(a).pongs_received, 0);
    }

    #[test]
    fn partition_holds_messages_until_heal() {
        let mut cfg = NetConfig::constant(SimDuration::from_millis(1));
        cfg.partition_mode = PartitionMode::DeliverOnHeal;
        let mut world: World<Msg> = World::new(cfg, 6);
        let a = world.add_process(PingPong::new(vec![ProcessId(1)], 1));
        let b = world.add_process(PingPong::new(vec![], 0));
        world.partition_now(vec![vec![a], vec![b]]);
        world.run_until(SimTime::from_millis(10));
        assert!(world.process_ref::<PingPong>(b).deliveries.is_empty());
        world.heal_now();
        world.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(world.process_ref::<PingPong>(b).deliveries.len(), 1);
        assert_eq!(world.process_ref::<PingPong>(a).pongs_received, 1);
    }

    #[test]
    fn partition_drop_mode_loses_messages() {
        let mut cfg = NetConfig::constant(SimDuration::from_millis(1));
        cfg.partition_mode = PartitionMode::Drop;
        let mut world: World<Msg> = World::new(cfg, 6);
        let a = world.add_process(PingPong::new(vec![ProcessId(1)], 1));
        let b = world.add_process(PingPong::new(vec![], 0));
        world.partition_now(vec![vec![a], vec![b]]);
        world.run_until_quiescent(SimTime::from_secs(1));
        world.heal_now();
        world.run_until_quiescent(SimTime::from_secs(2));
        assert!(world.process_ref::<PingPong>(b).deliveries.is_empty());
        assert_eq!(world.stats().dropped, 1);
    }

    #[test]
    fn scheduled_partition_and_heal() {
        let mut world: World<Msg> = World::new(NetConfig::constant(SimDuration::from_millis(1)), 9);
        let a = world.add_process(PingPong::new(vec![], 0));
        let b = world.add_process(PingPong::new(vec![], 0));
        world.schedule_partition(SimTime::from_millis(5), vec![vec![a], vec![b]]);
        world.schedule_heal(SimTime::from_millis(20));
        // a sends a message at t=10ms (inside the partition window)
        world.schedule_call(SimTime::from_millis(10), a, move |_p, ctx| {
            ctx.send(ProcessId(1), Msg::Ping(42));
        });
        world.run_until(SimTime::from_millis(15));
        assert!(world.process_ref::<PingPong>(b).deliveries.is_empty());
        world.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(world.process_ref::<PingPong>(b).deliveries.len(), 1);
    }

    #[test]
    fn timers_fire_and_can_be_cancelled() {
        struct TimerProc {
            fired: Vec<TimerTag>,
        }
        impl Process<Msg> for TimerProc {
            fn on_start(&mut self, ctx: &mut dyn Runtime<Msg>) {
                let _keep = ctx.set_timer(SimDuration::from_millis(1), TimerTag::Custom(1));
                let cancel = ctx.set_timer(SimDuration::from_millis(2), TimerTag::Custom(2));
                ctx.cancel_timer(cancel);
                let _keep2 = ctx.set_timer(SimDuration::from_millis(3), TimerTag::Custom(3));
            }
            fn on_message(&mut self, _ctx: &mut dyn Runtime<Msg>, _from: ProcessId, _msg: Msg) {}
            fn on_timer(&mut self, _ctx: &mut dyn Runtime<Msg>, timer: Timer) {
                self.fired.push(timer.tag);
            }
        }
        let mut world: World<Msg> = World::new(NetConfig::lan(), 10);
        let p = world.add_process(TimerProc { fired: Vec::new() });
        world.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(
            world.process_ref::<TimerProc>(p).fired,
            vec![TimerTag::Custom(1), TimerTag::Custom(3)]
        );
    }

    #[test]
    fn event_limit_stops_run() {
        // Two processes ping-ponging forever.
        struct Forever;
        impl Process<Msg> for Forever {
            fn on_start(&mut self, ctx: &mut dyn Runtime<Msg>) {
                if ctx.id() == ProcessId(0) {
                    ctx.send(ProcessId(1), Msg::Ping(0));
                }
            }
            fn on_message(&mut self, ctx: &mut dyn Runtime<Msg>, from: ProcessId, _msg: Msg) {
                ctx.send(from, Msg::Ping(0));
            }
        }
        let mut world: World<Msg> = World::new(NetConfig::lan(), 11);
        world.add_process(Forever);
        world.add_process(Forever);
        world.set_event_limit(100);
        let outcome = world.run_until_quiescent(SimTime::MAX);
        assert_eq!(world.events_processed(), 100);
        assert_eq!(outcome.reason, StopReason::EventLimitReached);
        assert!(!outcome.is_quiescent());
    }

    #[test]
    fn horizon_cutoff_is_distinguishable_from_quiescence() {
        // Same endless ping-pong, but stopped by the time horizon.
        struct Forever;
        impl Process<Msg> for Forever {
            fn on_start(&mut self, ctx: &mut dyn Runtime<Msg>) {
                if ctx.id() == ProcessId(0) {
                    ctx.send(ProcessId(1), Msg::Ping(0));
                }
            }
            fn on_message(&mut self, ctx: &mut dyn Runtime<Msg>, from: ProcessId, _msg: Msg) {
                ctx.send(from, Msg::Ping(0));
            }
        }
        let mut world: World<Msg> =
            World::new(NetConfig::constant(SimDuration::from_millis(1)), 16);
        world.add_process(Forever);
        world.add_process(Forever);
        let outcome = world.run_until_quiescent(SimTime::from_millis(10));
        assert_eq!(outcome.reason, StopReason::HorizonReached);
        assert!(!outcome.is_quiescent());
        assert!(!world.is_quiescent());
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut world: World<Msg> = World::new(NetConfig::lan(), 12);
        world.add_process(PingPong::new(vec![], 0));
        let t = world.run_until(SimTime::from_millis(50));
        assert_eq!(t, SimTime::from_millis(50));
        assert_eq!(world.now(), SimTime::from_millis(50));
    }

    #[test]
    fn invoke_now_applies_actions() {
        let mut world: World<Msg> =
            World::new(NetConfig::constant(SimDuration::from_millis(1)), 13);
        let a = world.add_process(PingPong::new(vec![], 0));
        let b = world.add_process(PingPong::new(vec![], 0));
        world.invoke_now(a, |_p, ctx| ctx.send(ProcessId(1), Msg::Ping(7)));
        world.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(world.process_ref::<PingPong>(b).deliveries.len(), 1);
        let _ = a;
    }

    #[test]
    fn annotations_recorded_in_trace() {
        let mut world: World<Msg> = World::new(NetConfig::lan(), 14);
        let _a = world.add_process(PingPong::new(vec![ProcessId(1)], 1));
        let b = world.add_process(PingPong::new(vec![], 0));
        world.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(world.tracer().annotations_of(b), vec!["ping 0"]);
    }

    #[test]
    fn send_to_unknown_process_is_dropped() {
        let mut world: World<Msg> = World::new(NetConfig::lan(), 15);
        let a = world.add_process(PingPong::new(vec![ProcessId(9)], 1));
        world.run_until_quiescent(SimTime::from_secs(1));
        assert_eq!(world.stats().dropped, 1);
        let _ = a;
    }

    #[test]
    fn horizon_helper() {
        let h = horizon_for(SimTime::from_secs(1), SimDuration::from_millis(2), 500);
        assert_eq!(h, SimTime::from_secs(2));
    }

    #[test]
    fn enabled_events_expose_only_the_head_of_each_fifo_link() {
        // a sends 3 pings to b: one FIFO link, so only the earliest delivery
        // is a scheduling choice; the other two are forced to follow.
        let mut world: World<Msg> =
            World::new(NetConfig::constant(SimDuration::from_millis(1)), 30);
        let _a = world.add_process(PingPong::new(vec![ProcessId(1)], 3));
        let _b = world.add_process(PingPong::new(vec![], 0));
        world.start();
        let pending = world.pending_events();
        assert_eq!(pending.len(), 3);
        assert!(pending.iter().all(|e| !e.noop));
        assert!(pending
            .windows(2)
            .all(|w| (w[0].time, w[0].seq) <= (w[1].time, w[1].seq)));
        let enabled = world.enabled_events(DEFAULT_HORIZON);
        assert_eq!(enabled.len(), 1);
        assert_eq!(enabled[0].seq, pending[0].seq);
        // Beyond-horizon events are not enabled.
        assert!(world.enabled_events(SimTime::ZERO).is_empty());
    }

    #[test]
    fn enabled_events_expose_one_timer_per_process_and_all_links() {
        struct TwoTimers;
        impl Process<Msg> for TwoTimers {
            fn on_start(&mut self, ctx: &mut dyn Runtime<Msg>) {
                ctx.set_timer(SimDuration::from_millis(1), TimerTag::Custom(1));
                ctx.set_timer(SimDuration::from_millis(2), TimerTag::Custom(2));
                ctx.send(ProcessId(1), Msg::Ping(0));
            }
            fn on_message(&mut self, _ctx: &mut dyn Runtime<Msg>, _from: ProcessId, _msg: Msg) {}
            fn fork(&self) -> Option<Box<dyn Process<Msg>>> {
                Some(Box::new(TwoTimers))
            }
        }
        let mut world: World<Msg> =
            World::new(NetConfig::constant(SimDuration::from_millis(5)), 31);
        let _a = world.add_process(TwoTimers);
        let _b = world.add_process(PingPong::new(vec![], 0));
        world.start();
        // Pending: two timers at p0 plus one delivery p0→p1. Enabled: the
        // earlier timer (per-process head) and the delivery (its own link).
        let enabled = world.enabled_events(DEFAULT_HORIZON);
        assert_eq!(enabled.len(), 2);
        assert!(enabled.iter().any(|e| matches!(
            e.info,
            PendingEventInfo::Timer {
                tag: TimerTag::Custom(1),
                ..
            }
        )));
        assert!(enabled
            .iter()
            .any(|e| matches!(e.info, PendingEventInfo::Deliver { .. })));
    }

    #[test]
    fn dispatch_key_explores_an_order_the_heap_would_not_take() {
        // Two senders, one receiver: deliveries on different links commute,
        // and dispatch_key can run the later-scheduled one first.
        let mut world: World<Msg> =
            World::new(NetConfig::constant(SimDuration::from_millis(1)), 32);
        let _a = world.add_process(PingPong::new(vec![ProcessId(2)], 1));
        let _b = world.add_process(PingPong::new(vec![ProcessId(2)], 1));
        let c = world.add_process(PingPong::new(vec![], 0));
        world.start();
        let enabled = world.enabled_events(DEFAULT_HORIZON);
        assert_eq!(enabled.len(), 2);
        let later = enabled[1].seq;
        assert!(world.dispatch_key(later));
        assert!(!world.dispatch_key(later), "event must fire at most once");
        assert_eq!(world.process_ref::<PingPong>(c).deliveries.len(), 1);
        // The remaining delivery is still pending and dispatchable.
        let enabled = world.enabled_events(DEFAULT_HORIZON);
        assert!(!enabled.is_empty());
        assert!(world.dispatch_key(enabled[0].seq));
        assert_eq!(world.process_ref::<PingPong>(c).deliveries.len(), 2);
    }

    #[test]
    fn fork_branches_diverge_independently() {
        let mut world: World<Msg> =
            World::new(NetConfig::constant(SimDuration::from_millis(1)), 33);
        let _a = world.add_process(PingPong::new(vec![ProcessId(2)], 1));
        let _b = world.add_process(PingPong::new(vec![ProcessId(2)], 1));
        let c = world.add_process(PingPong::new(vec![], 0));
        world.start();
        let enabled = world.enabled_events(DEFAULT_HORIZON);
        assert_eq!(enabled.len(), 2);

        let mut branch1 = world.fork().expect("forkable");
        let mut branch2 = world.fork().expect("forkable");
        // Same seq keys exist in both forks (stable replay identity).
        branch1.dispatch_key(enabled[0].seq);
        branch2.dispatch_key(enabled[1].seq);
        let from1 = branch1.process_ref::<PingPong>(c).deliveries[0].0;
        let from2 = branch2.process_ref::<PingPong>(c).deliveries[0].0;
        assert_ne!(from1, from2);
        // The original world is untouched.
        assert!(world.process_ref::<PingPong>(c).deliveries.is_empty());

        // Both branches run to completion; their final states differ only in
        // the order c observed the two pings (which PingPong's digest
        // deliberately records).
        assert!(branch1.run_until_quiescent(DEFAULT_HORIZON).is_quiescent());
        assert!(branch2.run_until_quiescent(DEFAULT_HORIZON).is_quiescent());
        assert_eq!(branch1.process_ref::<PingPong>(c).deliveries.len(), 2);
        assert_eq!(branch2.process_ref::<PingPong>(c).deliveries.len(), 2);
        assert_ne!(
            branch1.fingerprint(DEFAULT_HORIZON, &msg_digest),
            branch2.fingerprint(DEFAULT_HORIZON, &msg_digest)
        );
    }

    #[test]
    fn fork_fails_on_unforkable_process_or_scheduled_closure() {
        struct NoFork;
        impl Process<Msg> for NoFork {
            fn on_message(&mut self, _ctx: &mut dyn Runtime<Msg>, _from: ProcessId, _msg: Msg) {}
        }
        let mut world: World<Msg> = World::new(NetConfig::lan(), 34);
        let p = world.add_process(NoFork);
        let err = world.fork().err().expect("fork must fail");
        assert_eq!(err, ForkError::UnforkableProcess(p));

        let mut world: World<Msg> = World::new(NetConfig::lan(), 35);
        let a = world.add_process(PingPong::new(vec![], 0));
        world.schedule_call(SimTime::from_millis(1), a, |_p, _ctx| {});
        let err = world.fork().err().expect("fork must fail");
        assert!(matches!(err, ForkError::UnforkableEvent(_)));
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes_states() {
        let build = |seed: u64| {
            let mut world: World<Msg> =
                World::new(NetConfig::constant(SimDuration::from_millis(1)), seed);
            let _a = world.add_process(PingPong::new(vec![ProcessId(1)], 2));
            let _b = world.add_process(PingPong::new(vec![], 0));
            world.start();
            world
        };
        // Same construction → same fingerprint, regardless of RNG seed
        // (constant latency: the RNG is invisible).
        let w1 = build(1);
        let w2 = build(99);
        let fp1 = w1.fingerprint(DEFAULT_HORIZON, &msg_digest);
        assert!(fp1.is_some());
        assert_eq!(fp1, w2.fingerprint(DEFAULT_HORIZON, &msg_digest));
        // Dispatching an event changes the fingerprint.
        let mut w3 = build(1);
        let head = w3.enabled_events(DEFAULT_HORIZON)[0].seq;
        w3.dispatch_key(head);
        assert_ne!(fp1, w3.fingerprint(DEFAULT_HORIZON, &msg_digest));
        // Event signatures hash content, not times or seq numbers.
        let sig = w1.event_signature(0, &msg_digest);
        assert!(sig.is_some());
        assert_eq!(sig, w2.event_signature(0, &msg_digest));
        assert_eq!(w1.event_signature(999, &msg_digest), None);
    }

    #[test]
    fn noop_events_are_flagged_and_excluded_from_enabled() {
        let mut world: World<Msg> =
            World::new(NetConfig::constant(SimDuration::from_millis(1)), 36);
        let _a = world.add_process(PingPong::new(vec![ProcessId(1)], 1));
        let b = world.add_process(PingPong::new(vec![], 0));
        world.start();
        world.crash_now(b);
        let pending = world.pending_events();
        assert_eq!(pending.len(), 1);
        assert!(pending[0].noop, "delivery to a crashed process is a noop");
        assert!(world.enabled_events(DEFAULT_HORIZON).is_empty());
        // Draining the noop by key works and changes nothing observable.
        assert!(world.dispatch_key(pending[0].seq));
        assert!(world.is_quiescent());
    }
}
