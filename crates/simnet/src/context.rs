//! The [`Context`] handed to a process during a callback.
//!
//! A process never talks to the network or the clock directly: it records
//! *actions* (send, set timer, …) in its context, and the simulator applies
//! them after the callback returns. This keeps process code purely
//! deterministic and easy to test in isolation.

use crate::process::{ProcessId, TimerId};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// An action emitted by a process during a callback.
#[derive(Debug)]
pub enum Action<M> {
    /// Send `msg` to process `to`.
    Send {
        /// Destination process.
        to: ProcessId,
        /// Message payload.
        msg: M,
    },
    /// Arm a timer that fires after `delay`.
    SetTimer {
        /// Identifier returned to the caller.
        id: TimerId,
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Caller-chosen tag.
        tag: u64,
    },
    /// Cancel a previously armed timer.
    CancelTimer {
        /// The timer to cancel.
        id: TimerId,
    },
    /// Record a protocol-level trace annotation (e.g. "Opt-deliver(m3)").
    Annotate(String),
}

/// Execution context of one callback of one process.
///
/// Provides the current simulated time, the process identity, a deterministic
/// RNG and the action buffer.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: ProcessId,
    rng: &'a mut SimRng,
    actions: &'a mut Vec<Action<M>>,
    next_timer_id: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context. Only the simulator (and protocol test drivers) need
    /// to call this.
    pub fn new(
        now: SimTime,
        self_id: ProcessId,
        rng: &'a mut SimRng,
        actions: &'a mut Vec<Action<M>>,
        next_timer_id: &'a mut u64,
    ) -> Self {
        Context {
            now,
            self_id,
            rng,
            actions,
            next_timer_id,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The identifier of the process running this callback.
    pub fn id(&self) -> ProcessId {
        self.self_id
    }

    /// The simulation's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends `msg` to `to`. Sending to oneself is allowed and delivered through
    /// the network like any other message (after `local_latency`).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Sends a clone of `msg` to every process in `targets` (including the
    /// sender if it is listed).
    pub fn send_all(&mut self, targets: &[ProcessId], msg: M)
    where
        M: Clone,
    {
        for &to in targets {
            self.send(to, msg.clone());
        }
    }

    /// Arms a timer that fires after `delay`; the returned [`TimerId`] can be
    /// used to cancel it. `tag` is returned verbatim in `on_timer` and lets a
    /// process multiplex several timer purposes.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.actions.push(Action::SetTimer { id, delay, tag });
        id
    }

    /// Cancels a previously armed timer. Cancelling a timer that already fired
    /// or was already cancelled is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer { id });
    }

    /// Records a protocol-level annotation in the simulation trace.
    pub fn annotate(&mut self, text: impl Into<String>) {
        self.actions.push(Action::Annotate(text.into()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_buffers_actions() {
        let mut rng = SimRng::new(1);
        let mut actions: Vec<Action<u32>> = Vec::new();
        let mut next_timer = 0u64;
        let mut ctx = Context::new(
            SimTime::from_millis(5),
            ProcessId(2),
            &mut rng,
            &mut actions,
            &mut next_timer,
        );
        assert_eq!(ctx.now(), SimTime::from_millis(5));
        assert_eq!(ctx.id(), ProcessId(2));

        ctx.send(ProcessId(0), 10);
        ctx.send_all(&[ProcessId(0), ProcessId(1)], 11);
        let t = ctx.set_timer(SimDuration::from_millis(1), 99);
        ctx.cancel_timer(t);
        ctx.annotate("hello");
        let _ = ctx.rng().unit();

        assert_eq!(actions.len(), 6);
        assert!(matches!(actions[0], Action::Send { to: ProcessId(0), msg: 10 }));
        assert!(matches!(actions[1], Action::Send { to: ProcessId(0), msg: 11 }));
        assert!(matches!(actions[2], Action::Send { to: ProcessId(1), msg: 11 }));
        assert!(matches!(
            actions[3],
            Action::SetTimer { id: TimerId(0), tag: 99, .. }
        ));
        assert!(matches!(actions[4], Action::CancelTimer { id: TimerId(0) }));
        assert!(matches!(&actions[5], Action::Annotate(s) if s == "hello"));
        assert_eq!(next_timer, 1);
    }

    #[test]
    fn timer_ids_are_unique() {
        let mut rng = SimRng::new(1);
        let mut actions: Vec<Action<u32>> = Vec::new();
        let mut next_timer = 0u64;
        let mut ctx = Context::new(
            SimTime::ZERO,
            ProcessId(0),
            &mut rng,
            &mut actions,
            &mut next_timer,
        );
        let a = ctx.set_timer(SimDuration::from_millis(1), 0);
        let b = ctx.set_timer(SimDuration::from_millis(1), 0);
        assert_ne!(a, b);
    }
}
