//! The [`Context`] handed to a process during a callback.
//!
//! A process never talks to the network or the clock directly: it records
//! *actions* (send, set timer, …) in its context, and the simulator applies
//! them after the callback returns. This keeps process code purely
//! deterministic and easy to test in isolation.
//!
//! Multicast payloads are reference-counted from the moment they are
//! recorded: [`Runtime::send_all`] shares **one** allocation of the payload
//! across all recipients instead of cloning it per destination, and the
//! simulator only materialises a private copy at actual delivery (see
//! `world.rs`). For broadcast-heavy protocols — e.g. a sequencer shipping a
//! batched ordering message to the whole group — this removes the
//! per-recipient payload clone from the hot path entirely. Unicast sends
//! ([`Runtime::send`]) keep the payload owned, so they stay allocation-free.

use std::sync::Arc;

use crate::process::{ProcessId, TimerId};
use crate::rng::SimRng;
use crate::runtime::{Runtime, TimerTag};
use crate::time::{SimDuration, SimTime};

/// A message payload travelling through the simulator: owned for unicast
/// (no extra allocation), reference-counted for multicast (one allocation
/// shared by every recipient).
#[derive(Debug)]
pub enum Payload<M> {
    /// Exclusively owned — the unicast case.
    Owned(M),
    /// Shared across the recipients of one multicast.
    Shared(Arc<M>),
}

impl<M: Clone> Payload<M> {
    /// Takes the message out of the payload: free for owned payloads and for
    /// the last reference of a shared one, a single clone otherwise.
    pub fn materialize(self) -> M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(shared) => Arc::try_unwrap(shared).unwrap_or_else(|s| (*s).clone()),
        }
    }

    /// Converts into the shared form (used when the network duplicates a
    /// message).
    pub fn into_shared(self) -> Arc<M> {
        match self {
            Payload::Owned(m) => Arc::new(m),
            Payload::Shared(shared) => shared,
        }
    }
}

/// An action emitted by a process during a callback.
#[derive(Debug)]
pub enum Action<M> {
    /// Send `msg` to process `to`.
    Send {
        /// Destination process.
        to: ProcessId,
        /// Message payload (owned for unicast, shared for multicast).
        msg: Payload<M>,
    },
    /// Arm a timer that fires after `delay`.
    SetTimer {
        /// Identifier returned to the caller.
        id: TimerId,
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Caller-chosen tag.
        tag: TimerTag,
    },
    /// Cancel a previously armed timer.
    CancelTimer {
        /// The timer to cancel.
        id: TimerId,
    },
    /// Record a protocol-level trace annotation (e.g. "Opt-deliver(m3)").
    Annotate(String),
}

/// Execution context of one callback of one process.
///
/// Provides the current simulated time, the process identity, a deterministic
/// RNG and the action buffer.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: ProcessId,
    rng: &'a mut SimRng,
    actions: &'a mut Vec<Action<M>>,
    next_timer_id: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context. Only the simulator (and protocol test drivers) need
    /// to call this.
    pub fn new(
        now: SimTime,
        self_id: ProcessId,
        rng: &'a mut SimRng,
        actions: &'a mut Vec<Action<M>>,
        next_timer_id: &'a mut u64,
    ) -> Self {
        Context {
            now,
            self_id,
            rng,
            actions,
            next_timer_id,
        }
    }
}

/// The simulator's implementation of the runtime boundary: every operation is
/// buffered as an [`Action`] and applied by the [`World`](crate::World) after
/// the callback returns, which keeps process callbacks pure and replayable.
impl<M> Runtime<M> for Context<'_, M> {
    /// The current simulated time.
    fn now(&self) -> SimTime {
        self.now
    }

    /// The identifier of the process running this callback.
    fn id(&self) -> ProcessId {
        self.self_id
    }

    /// The simulation's deterministic random number generator.
    fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends `msg` to `to`. Sending to oneself is allowed and delivered through
    /// the network like any other message (after `local_latency`). The payload
    /// stays owned end to end — no extra allocation.
    fn send(&mut self, to: ProcessId, msg: M) {
        self.actions.push(Action::Send {
            to,
            msg: Payload::Owned(msg),
        });
    }

    /// Sends `msg` to every process in `targets` (including the sender if it
    /// is listed). The payload is allocated **once** and shared by reference
    /// count across all recipients; the simulator clones it only at delivery
    /// (and not at all for the last recipient, or for messages that are
    /// dropped by the network).
    fn send_all(&mut self, targets: &[ProcessId], msg: M) {
        let shared = Arc::new(msg);
        for &to in targets {
            self.actions.push(Action::Send {
                to,
                msg: Payload::Shared(Arc::clone(&shared)),
            });
        }
    }

    /// Arms a timer that fires after `delay`; the returned [`TimerId`] can be
    /// used to cancel it. `tag` is returned verbatim in `on_timer` and lets a
    /// process multiplex several timer purposes.
    fn set_timer(&mut self, delay: SimDuration, tag: TimerTag) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.actions.push(Action::SetTimer { id, delay, tag });
        id
    }

    /// Cancels a previously armed timer. Cancelling a timer that already fired
    /// or was already cancelled is a no-op.
    fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer { id });
    }

    /// Records a protocol-level annotation in the simulation trace.
    fn annotate(&mut self, text: String) {
        self.actions.push(Action::Annotate(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_buffers_actions() {
        let mut rng = SimRng::new(1);
        let mut actions: Vec<Action<u32>> = Vec::new();
        let mut next_timer = 0u64;
        let mut ctx = Context::new(
            SimTime::from_millis(5),
            ProcessId(2),
            &mut rng,
            &mut actions,
            &mut next_timer,
        );
        assert_eq!(ctx.now(), SimTime::from_millis(5));
        assert_eq!(ctx.id(), ProcessId(2));

        ctx.send(ProcessId(0), 10);
        ctx.send_all(&[ProcessId(0), ProcessId(1)], 11);
        let t = ctx.set_timer(SimDuration::from_millis(1), TimerTag::Custom(99));
        ctx.cancel_timer(t);
        ctx.annotate("hello".to_string());
        let _ = ctx.rng().unit();

        assert_eq!(actions.len(), 6);
        // Unicast stays owned; multicast is shared.
        assert!(matches!(
            &actions[0],
            Action::Send {
                to: ProcessId(0),
                msg: Payload::Owned(10)
            }
        ));
        assert!(matches!(
            &actions[1],
            Action::Send { to: ProcessId(0), msg: Payload::Shared(m) } if **m == 11
        ));
        assert!(matches!(
            &actions[2],
            Action::Send { to: ProcessId(1), msg: Payload::Shared(m) } if **m == 11
        ));
        assert!(matches!(
            actions[3],
            Action::SetTimer {
                id: TimerId(0),
                tag: TimerTag::Custom(99),
                ..
            }
        ));
        assert!(matches!(actions[4], Action::CancelTimer { id: TimerId(0) }));
        assert!(matches!(&actions[5], Action::Annotate(s) if s == "hello"));
        assert_eq!(next_timer, 1);
    }

    #[test]
    fn send_all_shares_one_allocation() {
        let mut rng = SimRng::new(1);
        let mut actions: Vec<Action<u32>> = Vec::new();
        let mut next_timer = 0u64;
        let mut ctx = Context::new(
            SimTime::ZERO,
            ProcessId(0),
            &mut rng,
            &mut actions,
            &mut next_timer,
        );
        ctx.send_all(&[ProcessId(1), ProcessId(2), ProcessId(3)], 7u32);
        let arcs: Vec<&Arc<u32>> = actions
            .iter()
            .map(|a| match a {
                Action::Send {
                    msg: Payload::Shared(shared),
                    ..
                } => shared,
                other => panic!("unexpected action {other:?}"),
            })
            .collect();
        assert_eq!(arcs.len(), 3);
        assert!(Arc::ptr_eq(arcs[0], arcs[1]));
        assert!(Arc::ptr_eq(arcs[1], arcs[2]));
    }

    #[test]
    fn payload_materialize_and_share() {
        assert_eq!(Payload::Owned(5u32).materialize(), 5);
        let shared = Arc::new(6u32);
        assert_eq!(Payload::Shared(Arc::clone(&shared)).materialize(), 6);
        // last reference: materialize unwraps without cloning
        drop(shared);
        let only = Payload::Shared(Arc::new(String::from("x")));
        assert_eq!(only.materialize(), "x");
        assert_eq!(*Payload::Owned(7u32).into_shared(), 7);
    }

    #[test]
    fn timer_ids_are_unique() {
        let mut rng = SimRng::new(1);
        let mut actions: Vec<Action<u32>> = Vec::new();
        let mut next_timer = 0u64;
        let mut ctx = Context::new(
            SimTime::ZERO,
            ProcessId(0),
            &mut rng,
            &mut actions,
            &mut next_timer,
        );
        let a = ctx.set_timer(SimDuration::from_millis(1), TimerTag::Custom(0));
        let b = ctx.set_timer(SimDuration::from_millis(1), TimerTag::Custom(0));
        assert_ne!(a, b);
    }
}
