//! Network configuration: latency models, link behaviour, partition handling.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// How the one-way latency of a link is sampled for each message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Uniformly distributed between `min` and `max` (inclusive).
    Uniform {
        /// Minimum one-way latency.
        min: SimDuration,
        /// Maximum one-way latency.
        max: SimDuration,
    },
    /// `base` plus an exponentially distributed tail with the given mean.
    /// Models a lightly loaded LAN with occasional queueing.
    BasePlusExponential {
        /// Deterministic part of the latency.
        base: SimDuration,
        /// Mean of the exponential tail.
        tail_mean: SimDuration,
    },
}

impl LatencyModel {
    /// Samples one latency value.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => rng.duration_in(min, max),
            LatencyModel::BasePlusExponential { base, tail_mean } => {
                base + rng.exponential(tail_mean)
            }
        }
    }

    /// A typical switched-LAN latency: 50µs–200µs, mildly variable.
    pub fn lan() -> Self {
        LatencyModel::Uniform {
            min: SimDuration::from_micros(50),
            max: SimDuration::from_micros(200),
        }
    }

    /// A wide-area latency: 5ms base plus an exponential tail of mean 2ms.
    pub fn wan() -> Self {
        LatencyModel::BasePlusExponential {
            base: SimDuration::from_millis(5),
            tail_mean: SimDuration::from_millis(2),
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::lan()
    }
}

/// What happens to a message sent across an active partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionMode {
    /// The message is silently dropped. Reliable delivery (if required) must be
    /// provided by a retransmission layer such as `oar-channels`.
    Drop,
    /// The message is held by the network and delivered after the partition
    /// heals. This gives "reliable channel" semantics directly, matching the
    /// paper's system model (§3) without a retransmission layer.
    DeliverOnHeal,
}

/// Per-link behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// Latency model for messages on this link.
    pub latency: LatencyModel,
    /// Probability (0..=1) that a message is lost. The paper's model assumes
    /// reliable channels, so this defaults to zero; it is used to exercise the
    /// retransmission layer and for fault-injection tests.
    pub drop_probability: f64,
    /// Probability (0..=1) that a delivered message is delivered twice.
    pub duplicate_probability: f64,
}

impl LinkConfig {
    /// A perfectly reliable link with the given latency model.
    pub fn reliable(latency: LatencyModel) -> Self {
        LinkConfig {
            latency,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
        }
    }

    /// A lossy link: given latency model and drop probability.
    pub fn lossy(latency: LatencyModel, drop_probability: f64) -> Self {
        LinkConfig {
            latency,
            drop_probability,
            duplicate_probability: 0.0,
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::reliable(LatencyModel::default())
    }
}

/// Whole-network configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct NetConfig {
    /// Default link behaviour for every ordered pair of processes.
    pub default_link: LinkConfig,
    /// Latency of a message a process sends to itself (usually negligible).
    pub local_latency: SimDuration,
    /// What happens to messages crossing a partition.
    pub partition_mode: PartitionMode,
    /// If `true`, message deliveries on a link preserve send order (FIFO
    /// channels, as assumed by the paper §3). If `false`, each message gets an
    /// independent latency sample and may be reordered.
    pub fifo_links: bool,
}

impl NetConfig {
    /// A reliable FIFO LAN — the paper's system model.
    pub fn lan() -> Self {
        NetConfig {
            default_link: LinkConfig::reliable(LatencyModel::lan()),
            local_latency: SimDuration::from_micros(5),
            partition_mode: PartitionMode::DeliverOnHeal,
            fifo_links: true,
        }
    }

    /// A reliable FIFO WAN.
    pub fn wan() -> Self {
        NetConfig {
            default_link: LinkConfig::reliable(LatencyModel::wan()),
            ..NetConfig::lan()
        }
    }

    /// A LAN with constant latency — convenient for tests that assert exact
    /// delivery times.
    pub fn constant(latency: SimDuration) -> Self {
        NetConfig {
            default_link: LinkConfig::reliable(LatencyModel::Constant(latency)),
            local_latency: SimDuration::ZERO,
            partition_mode: PartitionMode::DeliverOnHeal,
            fifo_links: true,
        }
    }

    /// A lossy, reordering network used to exercise the reliable-channel layer.
    pub fn lossy_lan(drop_probability: f64) -> Self {
        NetConfig {
            default_link: LinkConfig::lossy(LatencyModel::lan(), drop_probability),
            local_latency: SimDuration::from_micros(5),
            partition_mode: PartitionMode::Drop,
            fifo_links: false,
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_latency_is_exact() {
        let mut rng = SimRng::new(1);
        let m = LatencyModel::Constant(SimDuration::from_micros(500));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_micros(500));
        }
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let mut rng = SimRng::new(2);
        let m = LatencyModel::Uniform {
            min: SimDuration::from_micros(100),
            max: SimDuration::from_micros(300),
        };
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_micros(100) && d <= SimDuration::from_micros(300));
        }
    }

    #[test]
    fn base_plus_exponential_at_least_base() {
        let mut rng = SimRng::new(3);
        let m = LatencyModel::BasePlusExponential {
            base: SimDuration::from_millis(5),
            tail_mean: SimDuration::from_millis(1),
        };
        for _ in 0..100 {
            assert!(m.sample(&mut rng) >= SimDuration::from_millis(5));
        }
    }

    #[test]
    fn presets_are_sane() {
        let lan = NetConfig::lan();
        assert_eq!(lan.partition_mode, PartitionMode::DeliverOnHeal);
        assert!(lan.fifo_links);
        assert_eq!(lan.default_link.drop_probability, 0.0);

        let lossy = NetConfig::lossy_lan(0.1);
        assert_eq!(lossy.partition_mode, PartitionMode::Drop);
        assert!(!lossy.fifo_links);
        assert!((lossy.default_link.drop_probability - 0.1).abs() < 1e-12);

        let c = NetConfig::constant(SimDuration::from_millis(1));
        assert_eq!(
            c.default_link.latency,
            LatencyModel::Constant(SimDuration::from_millis(1))
        );
    }
}
