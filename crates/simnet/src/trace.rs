//! Simulation traces.
//!
//! The tracer records network-level events (sends, deliveries, drops, crashes,
//! partitions) and protocol-level annotations emitted by processes via
//! [`Runtime::annotate`]. Traces are the raw material for the figure
//! reproductions (Figures 1–4 of the paper) and for the experiment harness.
//!
//! [`Runtime::annotate`]: crate::Runtime::annotate

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::process::{GroupId, ProcessId};
use crate::time::SimTime;

/// What happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A process handed a message to the network.
    MessageSent {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
    },
    /// The network delivered a message.
    MessageDelivered {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
    },
    /// The network dropped a message.
    MessageDropped {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A timer fired at a process.
    TimerFired {
        /// The process whose timer fired.
        at: ProcessId,
    },
    /// A process crashed.
    Crashed {
        /// The crashed process.
        process: ProcessId,
    },
    /// A crashed process was restarted with fresh in-memory state.
    Restarted {
        /// The restarted process.
        process: ProcessId,
    },
    /// A partition was installed.
    PartitionStarted,
    /// All partitions were healed.
    PartitionHealed,
    /// A protocol-level annotation emitted by a process.
    Annotation {
        /// The annotating process.
        process: ProcessId,
        /// Free-form annotation text (e.g. `"Opt-deliver(m3)"`).
        text: String,
    },
}

/// Why a message was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Random loss according to the link's drop probability.
    RandomLoss,
    /// Sender and destination are in different partitions (in
    /// [`PartitionMode::Drop`](crate::PartitionMode::Drop)).
    Partitioned,
    /// The destination process has crashed.
    DestinationCrashed,
    /// The destination restarted while the message was in flight: it was
    /// addressed to the previous incarnation and stays lost.
    DestinationRestarted,
    /// The sender had crashed before the send was applied.
    SenderCrashed,
}

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TraceKind::MessageSent { from, to } => {
                write!(f, "[{}] {from} -> {to} send", self.time)
            }
            TraceKind::MessageDelivered { from, to } => {
                write!(f, "[{}] {from} -> {to} deliver", self.time)
            }
            TraceKind::MessageDropped { from, to, reason } => {
                write!(f, "[{}] {from} -> {to} DROP ({reason:?})", self.time)
            }
            TraceKind::TimerFired { at } => write!(f, "[{}] {at} timer", self.time),
            TraceKind::Crashed { process } => write!(f, "[{}] {process} CRASH", self.time),
            TraceKind::Restarted { process } => write!(f, "[{}] {process} RESTART", self.time),
            TraceKind::PartitionStarted => write!(f, "[{}] partition installed", self.time),
            TraceKind::PartitionHealed => write!(f, "[{}] partition healed", self.time),
            TraceKind::Annotation { process, text } => {
                write!(f, "[{}] {process}: {text}", self.time)
            }
        }
    }
}

/// Aggregate network statistics, cheap to keep even when full tracing is off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered to a process.
    pub delivered: u64,
    /// Messages dropped (loss, partition, crash).
    pub dropped: u64,
    /// Timers fired.
    pub timers_fired: u64,
}

/// Records trace events and aggregate statistics for one simulation run.
///
/// `Clone` so a forked [`World`](crate::World) (model checking) carries the
/// trace prefix of the path that led to it.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    stats: NetStats,
    /// Group membership, for the per-group statistics of sharded deployments.
    /// Processes without a group are counted only in the aggregate.
    group_of: HashMap<ProcessId, GroupId>,
    /// Per-group statistics, attributed to the *sender's* group (timers to
    /// the owning process's group).
    group_stats: BTreeMap<GroupId, NetStats>,
    /// When `false`, only statistics and annotations are kept (long runs).
    record_network_events: bool,
}

impl Tracer {
    /// Creates a tracer. If `record_network_events` is false, per-message
    /// events are not stored (annotations still are), which keeps memory flat
    /// for long benchmark runs.
    pub fn new(record_network_events: bool) -> Self {
        Tracer {
            events: Vec::new(),
            stats: NetStats::default(),
            group_of: HashMap::new(),
            group_stats: BTreeMap::new(),
            record_network_events,
        }
    }

    /// Declares `process` a member of `group` for per-group statistics.
    pub fn assign_group(&mut self, process: ProcessId, group: GroupId) {
        self.group_of.insert(process, group);
    }

    /// The group `process` was assigned to, if any.
    pub fn group_of(&self, process: ProcessId) -> Option<GroupId> {
        self.group_of.get(&process).copied()
    }

    /// Statistics of one group (zeros if the group never appeared).
    pub fn group_stats(&self, group: GroupId) -> NetStats {
        self.group_stats.get(&group).copied().unwrap_or_default()
    }

    /// All per-group statistics recorded so far, ordered by group id.
    pub fn all_group_stats(&self) -> Vec<(GroupId, NetStats)> {
        self.group_stats.iter().map(|(&g, &s)| (g, s)).collect()
    }

    /// The process a network event is attributed to: the sender for message
    /// events, the owner for timers.
    fn attribution(kind: &TraceKind) -> Option<ProcessId> {
        match kind {
            TraceKind::MessageSent { from, .. }
            | TraceKind::MessageDelivered { from, .. }
            | TraceKind::MessageDropped { from, .. } => Some(*from),
            TraceKind::TimerFired { at } => Some(*at),
            _ => None,
        }
    }

    fn bump(stats: &mut NetStats, kind: &TraceKind) {
        match kind {
            TraceKind::MessageSent { .. } => stats.sent += 1,
            TraceKind::MessageDelivered { .. } => stats.delivered += 1,
            TraceKind::MessageDropped { .. } => stats.dropped += 1,
            TraceKind::TimerFired { .. } => stats.timers_fired += 1,
            _ => {}
        }
    }

    /// Records an event, updating statistics.
    pub fn record(&mut self, time: SimTime, kind: TraceKind) {
        Self::bump(&mut self.stats, &kind);
        if let Some(g) = Self::attribution(&kind).and_then(|p| self.group_of.get(&p).copied()) {
            Self::bump(self.group_stats.entry(g).or_default(), &kind);
        }
        let keep = self.record_network_events
            || matches!(
                kind,
                TraceKind::Annotation { .. }
                    | TraceKind::Crashed { .. }
                    | TraceKind::Restarted { .. }
                    | TraceKind::PartitionStarted
                    | TraceKind::PartitionHealed
            );
        if keep {
            self.events.push(TraceEvent { time, kind });
        }
    }

    /// All recorded events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Aggregate statistics for the run.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// All annotations emitted by `process`, in order.
    pub fn annotations_of(&self, process: ProcessId) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::Annotation { process: p, text } if *p == process => Some(text.as_str()),
                _ => None,
            })
            .collect()
    }

    /// All annotations containing `needle`, as `(time, process, text)` tuples.
    pub fn annotations_matching(&self, needle: &str) -> Vec<(SimTime, ProcessId, &str)> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::Annotation { process, text } if text.contains(needle) => {
                    Some((e.time, *process, text.as_str()))
                }
                _ => None,
            })
            .collect()
    }

    /// Renders the annotation timeline as a human-readable multi-line string,
    /// one line per annotation — the textual equivalent of the paper's
    /// space-time diagrams.
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            if matches!(
                event.kind,
                TraceKind::Annotation { .. }
                    | TraceKind::Crashed { .. }
                    | TraceKind::Restarted { .. }
                    | TraceKind::PartitionStarted
                    | TraceKind::PartitionHealed
            ) {
                out.push_str(&event.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Drops all recorded events (statistics are kept).
    pub fn clear_events(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_updated() {
        let mut t = Tracer::new(true);
        t.record(
            SimTime::ZERO,
            TraceKind::MessageSent {
                from: ProcessId(0),
                to: ProcessId(1),
            },
        );
        t.record(
            SimTime::from_millis(1),
            TraceKind::MessageDelivered {
                from: ProcessId(0),
                to: ProcessId(1),
            },
        );
        t.record(
            SimTime::from_millis(2),
            TraceKind::MessageDropped {
                from: ProcessId(0),
                to: ProcessId(2),
                reason: DropReason::RandomLoss,
            },
        );
        t.record(
            SimTime::from_millis(3),
            TraceKind::TimerFired { at: ProcessId(1) },
        );
        let s = t.stats();
        assert_eq!(s.sent, 1);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.timers_fired, 1);
        assert_eq!(t.events().len(), 4);
    }

    #[test]
    fn group_stats_attribute_to_the_sender_group() {
        let mut t = Tracer::new(false);
        t.assign_group(ProcessId(0), GroupId(0));
        t.assign_group(ProcessId(1), GroupId(1));
        assert_eq!(t.group_of(ProcessId(0)), Some(GroupId(0)));
        assert_eq!(t.group_of(ProcessId(7)), None);
        t.record(
            SimTime::ZERO,
            TraceKind::MessageSent {
                from: ProcessId(0),
                to: ProcessId(1),
            },
        );
        t.record(
            SimTime::ZERO,
            TraceKind::MessageDelivered {
                from: ProcessId(1),
                to: ProcessId(0),
            },
        );
        // A process with no group counts only in the aggregate.
        t.record(
            SimTime::ZERO,
            TraceKind::MessageSent {
                from: ProcessId(7),
                to: ProcessId(0),
            },
        );
        assert_eq!(t.stats().sent, 2);
        assert_eq!(t.group_stats(GroupId(0)).sent, 1);
        assert_eq!(t.group_stats(GroupId(0)).delivered, 0);
        assert_eq!(t.group_stats(GroupId(1)).delivered, 1);
        assert_eq!(t.group_stats(GroupId(9)), NetStats::default());
        assert_eq!(t.all_group_stats().len(), 2);
    }

    #[test]
    fn network_events_can_be_suppressed() {
        let mut t = Tracer::new(false);
        t.record(
            SimTime::ZERO,
            TraceKind::MessageSent {
                from: ProcessId(0),
                to: ProcessId(1),
            },
        );
        t.record(
            SimTime::ZERO,
            TraceKind::Annotation {
                process: ProcessId(0),
                text: "x".into(),
            },
        );
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.stats().sent, 1);
    }

    #[test]
    fn annotation_queries() {
        let mut t = Tracer::new(true);
        t.record(
            SimTime::ZERO,
            TraceKind::Annotation {
                process: ProcessId(0),
                text: "Opt-deliver(m1)".into(),
            },
        );
        t.record(
            SimTime::from_millis(1),
            TraceKind::Annotation {
                process: ProcessId(1),
                text: "A-deliver(m1)".into(),
            },
        );
        assert_eq!(t.annotations_of(ProcessId(0)), vec!["Opt-deliver(m1)"]);
        assert_eq!(t.annotations_matching("deliver").len(), 2);
        assert_eq!(t.annotations_matching("A-deliver").len(), 1);
        let timeline = t.render_timeline();
        assert!(timeline.contains("Opt-deliver(m1)"));
        assert!(timeline.contains("p1"));
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent {
            time: SimTime::from_millis(1),
            kind: TraceKind::Crashed {
                process: ProcessId(3),
            },
        };
        assert_eq!(format!("{e}"), "[1.000ms] p3 CRASH");
    }
}
